"""Analytical models (Eq. 1, Fig. 5b), memory-utilization analysis, and
the buffer-pool cache simulator behind the Fig. 10b mechanism."""

from .cache import (
    CacheReport,
    LruPageCache,
    lookup_trace,
    simulate_lookup_cache,
)
from .memory import (
    MemoryBreakdown,
    OccupancyHistogram,
    memory_breakdown,
    occupancy_histogram,
    space_reduction,
)
from .model import (
    crossover_k,
    expected_ingest_speedup,
    fast_fraction_from_counts,
    ideal_fast_fraction,
    lil_expected_fast_fraction,
    simulate_lil_fast_fraction,
    tail_expected_fast_fraction,
)

__all__ = [
    "lil_expected_fast_fraction",
    "ideal_fast_fraction",
    "tail_expected_fast_fraction",
    "simulate_lil_fast_fraction",
    "expected_ingest_speedup",
    "fast_fraction_from_counts",
    "crossover_k",
    "occupancy_histogram",
    "OccupancyHistogram",
    "space_reduction",
    "memory_breakdown",
    "MemoryBreakdown",
    "CacheReport",
    "LruPageCache",
    "lookup_trace",
    "simulate_lookup_cache",
]
