"""Memory-utilization analysis (Fig. 10a, Fig. 11c-d, Table 2).

Footprints follow the paged model of
:meth:`repro.core.bptree.BPlusTree.memory_bytes`: every node occupies a
full page, so memory is proportional to node count and Table 2's "space
reduction" is the node-count ratio between the baseline B+-tree and QuIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.bptree import BPlusTree


@dataclass
class OccupancyHistogram:
    """Distribution of leaf fill fractions.

    Attributes:
        edges: bucket upper bounds (fractions of capacity).
        counts: leaves per bucket.
    """

    edges: list[float] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Total leaves across all buckets."""
        return sum(self.counts)


def occupancy_histogram(
    tree: BPlusTree, n_buckets: int = 10
) -> OccupancyHistogram:
    """Histogram of leaf occupancy fractions over ``n_buckets`` equal
    buckets of [0, 1]."""
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
    edges = [(i + 1) / n_buckets for i in range(n_buckets)]
    counts = [0] * n_buckets
    cap = tree.config.leaf_capacity
    for leaf in tree.leaves():
        frac = leaf.size / cap
        bucket = min(int(frac * n_buckets), n_buckets - 1)
        counts[bucket] += 1
    return OccupancyHistogram(edges=edges, counts=counts)


def space_reduction(baseline: BPlusTree, contender: BPlusTree) -> float:
    """Table 2's metric: ``baseline_bytes / contender_bytes`` (>1 means
    the contender is smaller)."""
    if len(contender) == 0:
        raise ValueError("contender tree is empty")
    return baseline.memory_bytes() / contender.memory_bytes()


@dataclass(frozen=True)
class MemoryBreakdown:
    """Byte-level footprint decomposition of an index."""

    leaf_bytes: int
    internal_bytes: int
    auxiliary_bytes: int = 0

    @property
    def total(self) -> int:
        """Whole-index footprint in bytes."""
        return self.leaf_bytes + self.internal_bytes + self.auxiliary_bytes


def memory_breakdown(tree: BPlusTree) -> MemoryBreakdown:
    """Per-level footprint of a tree (paged model)."""
    from ..core.config import (
        ENTRY_BYTES,
        NODE_HEADER_BYTES,
        PIVOT_BYTES,
    )

    occ = tree.occupancy()
    leaf_page = NODE_HEADER_BYTES + tree.config.leaf_capacity * ENTRY_BYTES
    internal_page = (
        NODE_HEADER_BYTES + tree.config.internal_capacity * PIVOT_BYTES
    )
    return MemoryBreakdown(
        leaf_bytes=occ.leaf_count * leaf_page,
        internal_bytes=occ.internal_count * internal_page,
    )
