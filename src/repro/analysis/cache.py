"""Buffer-pool / cache simulation for node accesses.

The paper explains QuIT's small point-lookup advantage (Fig. 10b) by
cache residency: better leaf packing makes the whole index smaller, so a
larger fraction of its nodes stays cached.  This module makes that
mechanism measurable in the reproduction: an LRU page cache is replayed
against the exact node-access sequence a query workload produces, and
the hit rate / simulated I/O count quantify the effect at any cache
size.

The simulator is storage-agnostic: it charges one page per tree node
(the paged model of ``memory_bytes``) and knows nothing about Python
object layout.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..core.bptree import BPlusTree
from ..core.node import InternalNode, Key, Node


@dataclass
class CacheReport:
    """Outcome of replaying an access trace through the cache."""

    accesses: int = 0
    hits: int = 0
    evictions: int = 0
    capacity_pages: int = 0
    distinct_pages: int = 0

    @property
    def misses(self) -> int:
        """Accesses not served from the cache (simulated I/O)."""
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache."""
        return self.hits / self.accesses if self.accesses else 0.0


class LruPageCache:
    """A fixed-capacity LRU cache of page (node) ids."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError(
                f"capacity_pages must be >= 1, got {capacity_pages}"
            )
        self.capacity = capacity_pages
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.report = CacheReport(capacity_pages=capacity_pages)

    def access(self, page_id: int) -> bool:
        """Touch ``page_id``; returns True on a hit."""
        report = self.report
        report.accesses += 1
        pages = self._pages
        if page_id in pages:
            pages.move_to_end(page_id)
            report.hits += 1
            return True
        pages[page_id] = None
        report.distinct_pages = max(report.distinct_pages, len(pages))
        if len(pages) > self.capacity:
            pages.popitem(last=False)
            report.evictions += 1
        return False

    def access_many(self, page_ids: Iterable[int]) -> None:
        """Replay a whole trace."""
        for page_id in page_ids:
            self.access(page_id)


def lookup_trace(
    tree: BPlusTree, targets: Sequence[Key]
) -> Iterable[int]:
    """Node-id sequence of the root-to-leaf descents for ``targets``.

    This replays exactly the node accesses the tree's point-lookup path
    performs, without mutating the tree's stats.
    """
    root = tree.root
    for key in targets:
        node: Node = root
        yield node.node_id
        while not node.is_leaf:
            internal: InternalNode = node  # type: ignore[assignment]
            node = internal.children[internal.child_index_for(key)]
            yield node.node_id


def simulate_lookup_cache(
    tree: BPlusTree,
    targets: Sequence[Key],
    cache_pages: Optional[int] = None,
    cache_fraction: Optional[float] = None,
) -> CacheReport:
    """Replay a point-lookup workload through an LRU page cache.

    Exactly one of ``cache_pages`` / ``cache_fraction`` sizes the cache;
    ``cache_fraction`` is relative to the tree's *own* node count, which
    is how the Fig. 10b mechanism manifests: at the same absolute cache
    size, the smaller (QuIT) tree gets the larger effective fraction.
    """
    if (cache_pages is None) == (cache_fraction is None):
        raise ValueError(
            "size the cache with exactly one of cache_pages or "
            "cache_fraction"
        )
    node_count = tree.occupancy().node_count
    if cache_pages is None:
        cache_pages = max(1, int(node_count * cache_fraction))
    cache = LruPageCache(cache_pages)
    cache.access_many(lookup_trace(tree, targets))
    return cache.report
