"""Analytical models from §3 of the paper (Eq. 1 and Fig. 5b).

``lil`` fast-inserts exactly when two consecutive entries are in order,
giving Eq. 1: ``FI(k) = (1 - k)^2``.  The ideal sortedness-aware index
top-inserts only the out-of-order entries (``FI = 1 - k``); the tail-leaf
optimization collapses to ~0 fast-inserts as soon as a leaf's worth of
forward outliers accumulates.
"""

from __future__ import annotations

import random
from typing import Sequence


def lil_expected_fast_fraction(k: float) -> float:
    """Eq. 1: expected lil fast-insert fraction at out-of-order rate ``k``.

    Derivation: with ``y = n(1-k)`` in-order entries, the probability two
    consecutive entries are both in order is ``(y/n)((y-1)/(n-1))`` which
    approaches ``(1-k)^2`` for large n.
    """
    if not 0.0 <= k <= 1.0:
        raise ValueError(f"k must be in [0, 1], got {k}")
    return (1.0 - k) ** 2


def ideal_fast_fraction(k: float) -> float:
    """The optimal sortedness-aware index: one top-insert per out-of-order
    entry (§3, "Optimal sortedness-awareness")."""
    if not 0.0 <= k <= 1.0:
        raise ValueError(f"k must be in [0, 1], got {k}")
    return 1.0 - k


def tail_expected_fast_fraction(
    k: float, n: int, leaf_capacity: int
) -> float:
    """Heuristic expectation for the tail-leaf fast path (Fig. 3 / 5b).

    The tail path survives until roughly a few leaves' worth of forward
    outliers have accumulated above the in-order frontier; past that the
    tail's lower bound outruns the stream permanently.  We model the
    surviving fraction as the portion of the stream ingested before
    ~5 leaves of outliers exist: ``min(1, 5 * cap / (k/2 * n))``.
    """
    if not 0.0 <= k <= 1.0:
        raise ValueError(f"k must be in [0, 1], got {k}")
    if k == 0.0:
        return 1.0
    forward_outliers = k * n / 2.0
    survive = min(1.0, (5.0 * leaf_capacity) / max(forward_outliers, 1e-9))
    return survive * (1.0 - k)


def simulate_lil_fast_fraction(
    k: float, n: int = 100_000, seed: int = 42
) -> float:
    """Monte-Carlo simulation of lil's success process (Fig. 5b).

    Draws a Bernoulli in-order/out-of-order sequence and counts pairs of
    consecutive in-order entries — the event in which lil fast-inserts.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    rng = random.Random(seed)
    fast = 0
    prev_in_order = True
    for _ in range(n):
        in_order = rng.random() >= k
        if in_order and prev_in_order:
            fast += 1
        prev_in_order = in_order
    return fast / n


def expected_ingest_speedup(
    fast_fraction: float,
    top_to_fast_cost_ratio: float = 3.5,
) -> float:
    """Expected ingest speedup over a top-insert-only B+-tree.

    A top-insert costs ``top_to_fast_cost_ratio`` fast-inserts (the paper
    cites 3-4x depending on tree height).  The baseline pays the top cost
    for every entry; a fast-path index pays it only for misses.
    """
    if not 0.0 <= fast_fraction <= 1.0:
        raise ValueError(
            f"fast_fraction must be in [0, 1], got {fast_fraction}"
        )
    if top_to_fast_cost_ratio <= 0:
        raise ValueError("top_to_fast_cost_ratio must be positive")
    r = top_to_fast_cost_ratio
    blended = fast_fraction * 1.0 + (1.0 - fast_fraction) * r
    return r / blended


def fast_fraction_from_counts(fast: int, top: int) -> float:
    """Fast-insert fraction from raw counters."""
    total = fast + top
    return fast / total if total else 0.0


def crossover_k(
    curve_a: Sequence[tuple[float, float]],
    curve_b: Sequence[tuple[float, float]],
) -> float | None:
    """First ``k`` at which curve ``a`` stops beating curve ``b``.

    Curves are ``(k, value)`` points on a shared, ascending k-grid.
    Returns None when ``a`` dominates everywhere.
    """
    for (ka, va), (kb, vb) in zip(curve_a, curve_b):
        if abs(ka - kb) > 1e-12:
            raise ValueError("curves must share their k-grid")
        if va <= vb:
            return ka
    return None
