"""Search routines for sorted buffer pages.

SWARE answers point lookups on *sorted* buffer pages with interpolation
search (Van Sandt et al., SIGMOD 2019 — cited by the paper as the reason
fully-sorted data queries the SWARE buffer so efficiently, §5.4).
Interpolation search probes where the key *should* sit assuming a locally
uniform key distribution, reaching O(log log n) expected probes, and falls
back to binary search when the distribution defeats it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

from ..core.node import Key

#: Probe budget before falling back to binary search: interpolation
#: search converges in O(log log n) on uniform data, so a handful of
#: probes suffices; skewed data gets handed to bisect.
_MAX_PROBES = 8


def interpolation_search(keys: Sequence[Key], key: Key) -> Optional[int]:
    """Index of ``key`` in sorted ``keys``, or None when absent.

    Keys must support arithmetic (ints/floats).  Falls back to binary
    search after ``_MAX_PROBES`` interpolation probes, and immediately
    for ranges too small to benefit.
    """
    lo = 0
    hi = len(keys) - 1
    if hi < 0:
        return None
    probes = 0
    while lo <= hi:
        lo_key = keys[lo]
        hi_key = keys[hi]
        if key < lo_key or key > hi_key:
            return None
        if lo_key == hi_key:
            return lo if keys[lo] == key else None
        if hi - lo < 8 or probes >= _MAX_PROBES:
            idx = bisect_left(keys, key, lo, hi + 1)
            if idx <= hi and keys[idx] == key:
                return idx
            return None
        # Probe proportionally to the key's position in the range.
        pos = lo + int(
            (hi - lo) * (key - lo_key) / (hi_key - lo_key)
        )
        pos = min(max(pos, lo), hi)
        probed = keys[pos]
        if probed == key:
            return pos
        if probed < key:
            lo = pos + 1
        else:
            hi = pos - 1
        probes += 1
    return None


def interpolation_search_leftmost(
    keys: Sequence[Key], key: Key
) -> int:
    """Leftmost insertion point of ``key`` in sorted ``keys``.

    Same contract as ``bisect.bisect_left`` but using interpolation
    probes to narrow the range first.
    """
    lo = 0
    hi = len(keys)
    probes = 0
    while hi - lo > 8 and probes < _MAX_PROBES:
        lo_key = keys[lo]
        hi_key = keys[hi - 1]
        if key <= lo_key:
            return bisect_left(keys, key, lo, hi)
        if key > hi_key:
            return hi
        if lo_key == hi_key:
            break
        pos = lo + int((hi - 1 - lo) * (key - lo_key) / (hi_key - lo_key))
        pos = min(max(pos, lo), hi - 1)
        if keys[pos] < key:
            lo = pos + 1
        else:
            hi = pos + 1 if keys[pos] == key else pos + 1
            # Narrow the right edge; bisect resolves ties below.
            hi = min(hi, len(keys))
        probes += 1
    return bisect_left(keys, key, lo, hi)
