"""The SA-B+-tree: SWARE's sortedness-aware buffering applied to a
B+-tree (§2, §5.4).

Inserts land in an in-memory :class:`~repro.sware.buffer.SortednessBuffer`
(sized at 1% of the expected data by the paper's default).  When the
buffer fills, its content is drained sorted and *opportunistically bulk
loaded*: the maximal sorted run above the tree's current maximum key is
appended as packed leaves, while the remainder is top-inserted.  Queries
probe the buffer (global Bloom → zonemaps → page Bloom → page search)
before the underlying tree — the read penalty the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..core.bptree import BPlusTree
from ..core.config import TreeConfig
from ..core.node import Key
from .buffer import BufferStats, SortednessBuffer


@dataclass
class FlushStats:
    """Counters for flush-time work.

    ``segments`` is the number of descents the opportunistic bulk load
    performed; ``bulk_loaded / segments`` is the average run length — high
    for near-sorted streams, approaching 1 for scrambled ones (where SWARE
    degenerates to per-entry tree inserts, §2).
    """

    flushes: int = 0
    bulk_loaded: int = 0
    segments: int = 0

    @property
    def avg_segment_length(self) -> float:
        """Mean entries placed per descent (1.0 ≈ B+-tree behaviour)."""
        return self.bulk_loaded / self.segments if self.segments else 0.0


class SABPlusTree:
    """SWARE-paradigm sortedness-aware B+-tree.

    Args:
        config: configuration for the underlying B+-tree.
        buffer_capacity: entries buffered before a flush; the paper's
            default is 1% of the total data size.
        page_capacity: buffer page size in entries.
        flush_fill_factor: leaf fill used when bulk loading sorted runs.
    """

    name = "SWARE"

    def __init__(
        self,
        config: Optional[TreeConfig] = None,
        buffer_capacity: int = 1024,
        page_capacity: int = 128,
        flush_fill_factor: float = 1.0,
        use_interpolation: bool = False,
        crack_on_read: bool = False,
    ) -> None:
        self.tree = BPlusTree(config)
        self.buffer = SortednessBuffer(
            buffer_capacity,
            page_capacity=page_capacity,
            use_interpolation=use_interpolation,
            crack_on_read=crack_on_read,
        )
        self.flush_fill_factor = flush_fill_factor
        self.flush_stats = FlushStats()

    @property
    def layout(self) -> str:
        """Leaf storage layout of the wrapped tree."""
        return self.tree.config.layout

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, key: Key, value: Any = None) -> None:
        """Buffered insert; flushes first when the buffer is full."""
        if self.buffer.is_full:
            self.flush()
        self.buffer.append(key, value)

    def insert_many(self, items) -> int:
        """Batched upsert: drain the buffer, then run-apply the batch
        straight into the tree.

        The sortedness buffer exists to batch *per-key* arrivals into
        sorted runs before they hit the tree; a caller that already holds
        a batch has done that batching, so the entries skip the per-key
        buffer bookkeeping (zonemap updates, Bloom indexing) entirely.
        The preceding flush preserves read semantics: nothing older stays
        in the buffer to shadow the batch's fresher values.  Returns the
        number of new keys added to the tree.
        """
        batch = items if isinstance(items, list) else list(items)
        if not batch:
            return 0
        self.flush()
        return self.tree.insert_many(batch)

    def flush(self) -> None:
        """Drain the buffer into the tree.

        The drained entries form one globally sorted run (duplicates
        collapse to the latest write), which the tree applies through the
        shared run-apply primitive — one descent per pivot-bounded
        segment, packed-leaf rebuilds on overflow (SWARE's opportunistic
        on-the-fly bulk loading).  Out-of-order zones degrade gracefully
        to shorter segments, approaching per-entry top-insert cost.
        """
        drained = self.buffer.drain()
        if not drained:
            return
        self.flush_stats.flushes += 1
        segments_before = self.tree.stats.bulk_splice_segments
        self.tree.bulk_insert_run(
            drained, fill_factor=self.flush_fill_factor
        )
        self.flush_stats.bulk_loaded += len(drained)
        self.flush_stats.segments += (
            self.tree.stats.bulk_splice_segments - segments_before
        )

    def delete(self, key: Key) -> bool:
        """Delete ``key`` from the buffer and/or the tree."""
        in_buffer = self.buffer.remove(key)
        in_tree = self.tree.delete(key)
        return in_buffer or in_tree

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        """Point lookup: buffer first (it holds the freshest write for a
        key), then the underlying tree."""
        found, value = self.buffer.get(key)
        if found:
            return value
        return self.tree.get(key, default)

    def get_many(self, keys, default: Any = None) -> list[Any]:
        """Batched point lookups aligned with ``keys``.

        The whole batch goes through the buffer's batched probe first —
        one global-Bloom pass, probes zonemap-partitioned across pages —
        and only the buffer misses fall through to the tree's batched
        read path, preserving buffer-shadows-tree semantics per key.
        """
        key_list = keys if isinstance(keys, list) else list(keys)
        buffered = self.buffer.get_many(key_list)
        misses = [
            key
            for key, (found, _) in zip(key_list, buffered)
            if not found
        ]
        from_tree = iter(self.tree.get_many(misses, default))
        return [
            value if found else next(from_tree)
            for found, value in buffered
        ]

    def __contains__(self, key: Key) -> bool:
        found, _ = self.buffer.get(key)
        if found:
            return True
        return key in self.tree

    def range_iter(self, start: Key, end: Key) -> Iterator[tuple[Key, Any]]:
        """Lazily yield entries in ``[start, end)`` merged across buffer
        and tree, in key order, buffered values shadowing tree values.

        The buffered overlap is materialized (it is bounded by the
        buffer's capacity); the tree side streams through
        ``tree.range_iter``, so callers can abandon the scan early.
        """
        shadow: dict[Key, Any] = {}
        for k, v in self.buffer.range_items(start, end):
            shadow[k] = v  # sorted + arrival-stable: latest write wins
        pending = list(shadow.items())  # insertion order == key order
        i = 0
        m = len(pending)
        for k, v in self.tree.range_iter(start, end):
            while i < m and pending[i][0] < k:
                yield pending[i]
                i += 1
            if i < m and pending[i][0] == k:
                yield pending[i]
                i += 1
            else:
                yield k, v
        while i < m:
            yield pending[i]
            i += 1

    def range_query(self, start: Key, end: Key) -> list[tuple[Key, Any]]:
        """Entries in ``[start, end)`` merged across buffer and tree.

        Buffered values shadow tree values for duplicate keys.
        """
        return list(self.range_iter(start, end))

    def count_range(self, start: Key, end: Key) -> int:
        """Number of distinct keys in ``[start, end)`` across buffer and
        tree, without materializing the merged entries."""
        buffered = {k for k, _ in self.buffer.range_items(start, end)}
        total = len(buffered)
        for k, _ in self.tree.range_iter(start, end):
            if k not in buffered:
                total += 1
        return total

    def items(self) -> Iterator[tuple[Key, Any]]:
        """All entries in key order, without flushing."""
        buffered = dict(self.buffer.items())
        order = sorted(buffered)
        i = 0
        for key, value in self.tree.items():
            while i < len(order) and order[i] < key:
                yield order[i], buffered[order[i]]
                i += 1
            if i < len(order) and order[i] == key:
                yield key, buffered[key]
                i += 1
            else:
                yield key, value
        while i < len(order):
            yield order[i], buffered[order[i]]
            i += 1

    def __len__(self) -> int:
        """Exact number of distinct keys across buffer and tree."""
        overlap = 0
        seen: set[Key] = set()
        for key, _ in self.buffer.items():
            if key in seen:
                continue
            seen.add(key)
            leaf = self.tree._find_leaf(key, count=False)
            if leaf.find(key) is not None:
                overlap += 1
        return len(self.tree) + len(seen) - overlap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self):
        """Underlying tree stats (traversal counters)."""
        return self.tree.stats

    @property
    def buffer_stats(self) -> BufferStats:
        """Buffer-side work counters."""
        return self.buffer.stats

    def memory_bytes(self) -> int:
        """Tree pages + buffer + auxiliary structures (Fig. 1b point:
        SWARE's footprint includes the buffer and its metadata)."""
        return self.tree.memory_bytes() + self.buffer.memory_bytes

    def validate(self) -> None:
        """Validate the underlying tree's structural invariants."""
        self.tree.validate(check_min_fill=False)

    def check(self, check_min_fill: bool = False) -> list[str]:
        """Non-raising validation of the underlying tree.  Buffered
        entries are staged, not structural — they are not flushed here,
        so a check is read-only like the other variants'."""
        return self.tree.check(check_min_fill=check_min_fill)

    def scrub(self):
        """Scrub the underlying tree's derived state (chain endpoints,
        fast-path pointers); see
        :meth:`repro.core.bptree.BPlusTree.scrub`."""
        return self.tree.scrub()
