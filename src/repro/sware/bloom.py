"""Bloom filter (Bloom, 1970) — the membership sketch SWARE layers over
its buffer to dodge buffer scans on point lookups (§2).

A standard partitioned-free Bloom filter over a Python ``bytearray`` with
double hashing: two independent 64-bit hashes are combined as
``h1 + i * h2`` to derive the ``k`` probe positions (Kirsch-Mitzenmacher).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

_MASK64 = (1 << 64) - 1


def _hash_pair(item: Any) -> tuple[int, int]:
    """Two independent 64-bit hashes of ``item``.

    A multiplicative (Fibonacci) mix of the builtin hash keeps this a
    handful of integer ops — cheap enough to sit on SWARE's per-insert
    path — while decorrelating the dense integer keys the workloads use.
    """
    h = (hash(item) * 0x9E3779B97F4A7C15) & _MASK64
    h ^= h >> 29
    # The second hash must be odd so probe sequences cover the bit array.
    return h, (h >> 17) | 1


class BloomFilter:
    """Fixed-size Bloom filter.

    Args:
        capacity: expected number of inserted items.
        fp_rate: target false-positive probability at ``capacity`` items.

    The filter never yields false negatives; `might_contain` returning
    False is definitive.
    """

    def __init__(
        self,
        capacity: int,
        fp_rate: float = 0.01,
        n_hashes: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
        self.capacity = capacity
        self.fp_rate = fp_rate
        n_bits = max(8, int(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        self._n_bits = n_bits
        self._bits = bytearray((n_bits + 7) // 8)
        if n_hashes is None:
            n_hashes = max(1, round(n_bits / capacity * math.log(2)))
        elif n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {n_hashes}")
        self.n_hashes = n_hashes
        self.count = 0

    def add(self, item: Any) -> None:
        """Insert ``item``."""
        h1, h2 = _hash_pair(item)
        self.add_hashed(h1, h2)

    def add_hashed(self, h1: int, h2: int) -> None:
        """Insert an item from its precomputed hash pair.

        SWARE's buffer indexes every insert in two filter levels; hashing
        once and feeding both filters halves the per-insert hash cost.
        """
        n_bits = self._n_bits
        bits = self._bits
        for i in range(self.n_hashes):
            pos = (h1 + i * h2) % n_bits
            bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def might_contain(self, item: Any) -> bool:
        """True when ``item`` may be present; False is definitive."""
        h1, h2 = _hash_pair(item)
        return self.might_contain_hashed(h1, h2)

    def might_contain_hashed(self, h1: int, h2: int) -> bool:
        """Membership probe from a precomputed hash pair."""
        n_bits = self._n_bits
        bits = self._bits
        for i in range(self.n_hashes):
            pos = (h1 + i * h2) % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def __contains__(self, item: Any) -> bool:
        return self.might_contain(item)

    def update(self, items: Iterable[Any]) -> None:
        """Insert every item (used when re-calibrating after a flush)."""
        for item in items:
            self.add(item)

    def clear(self) -> None:
        """Reset to empty."""
        self._bits = bytearray(len(self._bits))
        self.count = 0

    @property
    def bit_size(self) -> int:
        """Number of bits in the filter."""
        return self._n_bits

    @property
    def memory_bytes(self) -> int:
        """Approximate footprint in bytes."""
        return len(self._bits)

    def estimated_fp_rate(self) -> float:
        """Expected false-positive rate at the current load."""
        if self.count == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.n_hashes * self.count / self._n_bits)
        return fill ** self.n_hashes
