"""SWARE baseline: sortedness-aware buffering over a B+-tree (SA-B+-tree),
with zonemaps and Bloom filters (Raman et al., ICDE 2023)."""

from . import bloom, buffer, sa_btree, search, zonemap  # noqa: F401
from .bloom import BloomFilter
from .buffer import BufferStats, SortednessBuffer
from .sa_btree import FlushStats, SABPlusTree
from .search import interpolation_search, interpolation_search_leftmost
from .zonemap import ZoneMap, ZoneMapIndex

__all__ = [
    "BloomFilter",
    "SortednessBuffer",
    "BufferStats",
    "SABPlusTree",
    "FlushStats",
    "ZoneMap",
    "ZoneMapIndex",
    "interpolation_search",
    "interpolation_search_leftmost",
]
