"""Zonemaps (small materialized aggregates, Moerkotte 1998).

SWARE keeps one zonemap per buffer page — the page's min and max key —
so that an out-of-order insert or a point lookup only scans pages whose
key range overlaps the probe (§2).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.node import Key


class ZoneMap:
    """Min/max summary of one buffer page."""

    __slots__ = ("min_key", "max_key", "count")

    def __init__(self) -> None:
        self.min_key: Optional[Key] = None
        self.max_key: Optional[Key] = None
        self.count = 0

    def observe(self, key: Key) -> None:
        """Extend the zone to cover ``key``."""
        if self.min_key is None or key < self.min_key:
            self.min_key = key
        if self.max_key is None or key > self.max_key:
            self.max_key = key
        self.count += 1

    def contains(self, key: Key) -> bool:
        """True when ``key`` falls inside the zone's [min, max] range."""
        if self.min_key is None:
            return False
        return self.min_key <= key <= self.max_key

    def overlaps(self, start: Key, end: Key) -> bool:
        """True when the zone intersects the half-open range [start, end)."""
        if self.min_key is None:
            return False
        return self.min_key < end and self.max_key >= start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Zone [{self.min_key}, {self.max_key}] n={self.count}>"


class ZoneMapIndex:
    """The ordered collection of per-page zonemaps for a buffer."""

    def __init__(self) -> None:
        self._zones: list[ZoneMap] = []

    def __len__(self) -> int:
        return len(self._zones)

    def zone(self, page_no: int) -> ZoneMap:
        """Zonemap of ``page_no``, growing the index as pages appear."""
        while page_no >= len(self._zones):
            self._zones.append(ZoneMap())
        return self._zones[page_no]

    def pages_containing(self, key: Key) -> Iterator[int]:
        """Page numbers whose zone may contain ``key`` (linear scan, as in
        SWARE — this scan is part of the design's insert/query cost)."""
        for page_no, zone in enumerate(self._zones):
            if zone.contains(key):
                yield page_no

    def pages_overlapping(self, start: Key, end: Key) -> Iterator[int]:
        """Page numbers whose zone intersects [start, end)."""
        for page_no, zone in enumerate(self._zones):
            if zone.overlaps(start, end):
                yield page_no

    def clear(self) -> None:
        """Drop all zones (buffer flush)."""
        self._zones.clear()

    @property
    def memory_bytes(self) -> int:
        """Approximate footprint: two keys + a count per zone."""
        return len(self._zones) * 12
