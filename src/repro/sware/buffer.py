"""SWARE's in-memory sortedness buffer (§2).

Incoming entries are appended to fixed-size pages.  Each page carries a
zonemap and a Bloom filter; a global Bloom filter covers the whole buffer.
Inserts that arrive out of order relative to their predecessor trigger the
zonemap scan the paper describes (that work is the heart of SWARE's insert
overhead).  Pages that received only in-order appends stay sorted and are
binary-searchable; pages polluted by out-of-order arrivals fall back to a
per-page Bloom probe plus linear scan.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Iterator, Optional

from ..core.node import Key
from .bloom import _MASK64, BloomFilter, _hash_pair
from .search import interpolation_search
from .zonemap import ZoneMapIndex


@dataclass
class BufferStats:
    """Counters for the buffer's internal work."""

    appends: int = 0
    out_of_order_appends: int = 0
    zonemap_scans: int = 0
    zonemap_pages_touched: int = 0
    bloom_negative: int = 0
    page_probes: int = 0
    pages_cracked: int = 0
    flushes: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for reporting)."""
        return {
            k: getattr(self, k) for k in self.__dataclass_fields__
        }


#: Probe count for the buffer's Bloom filters.  Two probes keep the
#: filters on SWARE's per-insert path affordable in Python while the
#: zonemaps still gate page access (speed-fidelity tradeoff; the paper's
#: C++ filters can afford the information-optimal probe count).
_BUFFER_BLOOM_HASHES = 2


class _Page:
    """One buffer page: parallel key/value lists + sortedness flag.

    The page Bloom filter is built lazily at the first probe after the
    page has content: per-page filters are only consulted by lookups, so
    deferring their construction keeps SWARE's per-insert path to a
    single (global) filter update.
    """

    __slots__ = ("keys", "values", "sorted", "bloom", "bloom_built_at")

    def __init__(self, page_capacity: int, fp_rate: float) -> None:
        self.keys: list[Key] = []
        self.values: list[Any] = []
        self.sorted = True
        self.bloom = BloomFilter(
            page_capacity, fp_rate, n_hashes=_BUFFER_BLOOM_HASHES
        )
        self.bloom_built_at = 0

    def probe_bloom(self, h1: int, h2: int) -> bool:
        """Membership test against the lazily-maintained page filter."""
        built = self.bloom_built_at
        n = len(self.keys)
        if built < n:
            for key in self.keys[built:]:
                self.bloom.add(key)
            self.bloom_built_at = n
        return self.bloom.might_contain_hashed(h1, h2)


class SortednessBuffer:
    """Paged append buffer with zonemaps and two Bloom filter levels.

    Args:
        capacity: total number of entries the buffer holds before callers
            must flush (the paper defaults this to 1% of the data size).
        page_capacity: entries per page (the paper's 4KB pages hold 510).
        fp_rate: Bloom filter false-positive target.
    """

    def __init__(
        self,
        capacity: int,
        page_capacity: int = 128,
        fp_rate: float = 0.01,
        use_interpolation: bool = False,
        crack_on_read: bool = False,
    ) -> None:
        """See class docstring.

        Args:
            capacity / page_capacity / fp_rate: sizing knobs.
            use_interpolation: answer sorted-page probes with
                interpolation search (the paper credits it for SWARE's
                efficient buffer queries on sorted data, §5.4).  Requires
                arithmetic keys.
            crack_on_read: SWARE's query-driven partial sorting (§2,
                "inspired by Cracking"): the first lookup that has to
                linearly scan an unsorted page sorts it in passing, so
                subsequent lookups binary-search it.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if page_capacity < 2:
            raise ValueError(
                f"page_capacity must be >= 2, got {page_capacity}"
            )
        self.capacity = capacity
        self.page_capacity = page_capacity
        self.fp_rate = fp_rate
        self.use_interpolation = use_interpolation
        self.crack_on_read = crack_on_read
        self.stats = BufferStats()
        self._pages: list[_Page] = []
        self._zones = ZoneMapIndex()
        self._global_bloom = BloomFilter(
            capacity, fp_rate, n_hashes=_BUFFER_BLOOM_HASHES
        )
        self._size = 0
        self._last_key: Optional[Key] = None
        self._tail_zone = None

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        """True when the next append requires a flush first."""
        return self._size >= self.capacity

    @property
    def page_count(self) -> int:
        """Number of pages currently in the buffer."""
        return len(self._pages)

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------

    def append(self, key: Key, value: Any) -> None:
        """Append an entry; the caller must flush a full buffer first."""
        if self._size >= self.capacity:
            raise RuntimeError("buffer full: flush before appending")
        if not self._pages or len(self._pages[-1].keys) >= self.page_capacity:
            self._pages.append(_Page(self.page_capacity, self.fp_rate))
            self._tail_zone = self._zones.zone(len(self._pages) - 1)
        page = self._pages[-1]
        last = self._last_key
        if last is not None and key < last:
            # Out-of-order arrival: SWARE scans the zonemaps to find pages
            # overlapping the key before indexing it (§2).
            self.stats.out_of_order_appends += 1
            self.stats.zonemap_scans += 1
            self.stats.zonemap_pages_touched += sum(
                1 for _ in self._zones.pages_containing(key)
            )
            if page.keys and key < page.keys[-1]:
                page.sorted = False
        page.keys.append(key)
        page.values.append(value)
        # Index the key in the global Bloom level.  The update is inlined
        # (one hash, two probes) because it sits on SWARE's per-insert
        # path — the equivalent of ``bloom.add_hashed(*_hash_pair(key))``.
        # The per-page filter is built lazily at probe time.
        h = (hash(key) * 0x9E3779B97F4A7C15) & _MASK64
        h ^= h >> 29
        h2 = (h >> 17) | 1
        bloom = self._global_bloom
        bits = bloom._bits
        n_bits = bloom._n_bits
        pos = h % n_bits
        bits[pos >> 3] |= 1 << (pos & 7)
        pos = (h + h2) % n_bits
        bits[pos >> 3] |= 1 << (pos & 7)
        bloom.count += 1
        zone = self._tail_zone
        if zone.min_key is None or key < zone.min_key:
            zone.min_key = key
        if zone.max_key is None or key > zone.max_key:
            zone.max_key = key
        zone.count += 1
        self._last_key = key
        self._size += 1
        self.stats.appends += 1

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def get(self, key: Key) -> tuple[bool, Any]:
        """Probe the buffer for ``key``.

        Returns ``(found, value)``.  The probe order matches SWARE:
        global Bloom filter, then zonemap-qualified pages, each gated by
        its page Bloom filter, then binary search (sorted page) or linear
        scan (unsorted page).  The *latest* occurrence of a duplicate key
        wins, so probing walks pages from newest to oldest.
        """
        if not self._size:
            self.stats.bloom_negative += 1
            return False, None
        h1, h2 = _hash_pair(key)
        if not self._global_bloom.might_contain_hashed(h1, h2):
            self.stats.bloom_negative += 1
            return False, None
        candidates = list(self._zones.pages_containing(key))
        for page_no in reversed(candidates):
            page = self._pages[page_no]
            if not page.probe_bloom(h1, h2):
                continue
            self.stats.page_probes += 1
            found, value = self._find_in_page(page, key)
            if found:
                return True, value
        return False, None

    def _find_in_page(self, page: _Page, key: Key) -> tuple[bool, Any]:
        """Probe one page for ``key``; returns ``(found, value)``.

        Duplicate keys inside a page resolve to the latest write (the
        page-cracking sort is arrival-stable, so the rightmost duplicate
        stays the freshest).
        """
        if page.sorted:
            if self.use_interpolation:
                idx = interpolation_search(page.keys, key)
                if idx is None:
                    return False, None
            else:
                idx = bisect_left(page.keys, key)
                if idx >= len(page.keys) or page.keys[idx] != key:
                    return False, None
            # Walk to the rightmost duplicate (latest write).
            while (
                idx + 1 < len(page.keys) and page.keys[idx + 1] == key
            ):
                idx += 1
            return True, page.values[idx]
        # Unsorted page: linear scan, latest write wins.
        found = False
        value = None
        for idx in range(len(page.keys) - 1, -1, -1):
            if page.keys[idx] == key:
                found = True
                value = page.values[idx]
                break
        if self.crack_on_read and page is not self._pages[-1]:
            # Query-driven partial sorting (Cracking-inspired, §2): we
            # already paid the linear scan, so leave the page sorted for
            # subsequent lookups.  The open tail page keeps arrival order
            # (it is still appending).
            self._crack_page(page)
            self.stats.pages_cracked += 1
        return found, value

    def _crack_page(self, page: _Page) -> None:
        """Stably sort a page in place and invalidate its incremental
        filter build (the filter contents are order-independent, but the
        build cursor indexes into the key list)."""
        order = sorted(range(len(page.keys)), key=page.keys.__getitem__)
        page.keys = [page.keys[i] for i in order]
        page.values = [page.values[i] for i in order]
        page.sorted = True
        page.bloom.clear()
        page.bloom_built_at = 0

    def get_many(self, keys: list[Key]) -> list[tuple[bool, Any]]:
        """Batched :meth:`get`: ``(found, value)`` per probe, aligned
        with ``keys``.

        The whole batch is gated against the global Bloom filter in one
        pass; survivors are sorted and partitioned across pages with two
        bisects against each page's zonemap window instead of a full
        zonemap scan per key.  Pages are walked newest to oldest so the
        latest write wins, exactly as in the per-key probe.
        """
        n = len(keys)
        out: list[tuple[bool, Any]] = [(False, None)] * n
        if not n:
            return out
        stats = self.stats
        if not self._size:
            stats.bloom_negative += n
            return out
        bloom = self._global_bloom
        pending: list[tuple[Key, int, int, int]] = []
        for pos, key in enumerate(keys):
            h1, h2 = _hash_pair(key)
            if bloom.might_contain_hashed(h1, h2):
                pending.append((key, pos, h1, h2))
            else:
                stats.bloom_negative += 1
        if not pending:
            return out
        pending.sort(key=itemgetter(0))
        probe_keys = [entry[0] for entry in pending]
        resolved = [False] * len(pending)
        unresolved = len(pending)
        zones = self._zones
        pages = self._pages
        for page_no in range(len(pages) - 1, -1, -1):
            if not unresolved:
                break
            zone = zones.zone(page_no)
            if zone.min_key is None:
                continue
            lo = bisect_left(probe_keys, zone.min_key)
            hi = bisect_right(probe_keys, zone.max_key)
            page = pages[page_no]
            for i in range(lo, hi):
                if resolved[i]:
                    continue
                key, pos, h1, h2 = pending[i]
                if not page.probe_bloom(h1, h2):
                    continue
                stats.page_probes += 1
                found, value = self._find_in_page(page, key)
                if found:
                    out[pos] = (True, value)
                    resolved[i] = True
                    unresolved -= 1
        return out

    def range_items(self, start: Key, end: Key) -> list[tuple[Key, Any]]:
        """All buffered entries with ``start <= key < end``, sorted by
        key.  The sort is stable over page/arrival order, so duplicates
        of a key appear oldest first — dict-merging the result keeps
        latest-write-wins semantics deterministic."""
        out: list[tuple[Key, Any]] = []
        for page_no in self._zones.pages_overlapping(start, end):
            page = self._pages[page_no]
            for k, v in zip(page.keys, page.values):
                if start <= k < end:
                    out.append((k, v))
        out.sort(key=itemgetter(0))
        return out

    def remove(self, key: Key) -> bool:
        """Remove every buffered occurrence of ``key``.

        Bloom filters cannot forget, so the global filter keeps a stale
        positive until the next flush — exactly the recalibration cost the
        paper attributes to SWARE.
        """
        removed = False
        for page_no in list(self._zones.pages_containing(key)):
            page = self._pages[page_no]
            keep = [
                (k, v) for k, v in zip(page.keys, page.values) if k != key
            ]
            if len(keep) != len(page.keys):
                removed = True
                page.keys = [k for k, _ in keep]
                page.values = [v for _, v in keep]
                # Rebuild the page filter from scratch on the next probe:
                # the incremental build index is void after a removal.
                page.bloom.clear()
                page.bloom_built_at = 0
        if removed:
            self._size = sum(len(p.keys) for p in self._pages)
        return removed

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------

    def drain(self) -> list[tuple[Key, Any]]:
        """Remove and return every buffered entry, sorted by key, with the
        latest value winning for duplicate keys.  Resets all metadata
        (zonemaps, both Bloom filter levels)."""
        merged: dict[Key, Any] = {}
        for page in self._pages:
            for k, v in zip(page.keys, page.values):
                merged[k] = v
        out = sorted(merged.items())
        self._pages.clear()
        self._zones.clear()
        self._global_bloom.clear()
        self._size = 0
        self._last_key = None
        self.stats.flushes += 1
        return out

    def items(self) -> Iterator[tuple[Key, Any]]:
        """Iterate buffered entries in arrival order."""
        for page in self._pages:
            yield from zip(page.keys, page.values)

    @property
    def memory_bytes(self) -> int:
        """Approximate footprint: entries + zonemaps + Bloom filters."""
        entry_bytes = self.capacity * 8
        blooms = self._global_bloom.memory_bytes + sum(
            p.bloom.memory_bytes for p in self._pages
        )
        return entry_bytes + blooms + self._zones.memory_bytes
