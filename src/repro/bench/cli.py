"""Command-line entry point: ``quit-bench [experiment ...]``.

Runs the requested experiments (default: all) at the chosen scale and
prints each as a plain-text table.  Example::

    quit-bench fig8 tab2 --n 50000 --leaf-capacity 64
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

import json
from pathlib import Path

from .experiments import EXPERIMENTS
from .harness import BenchScale
from .reporting import render, render_chart, to_json_dict

#: Experiments whose leading numeric column supports a quick ASCII plot:
#: exp id -> (x column, y columns).
_PLOTTABLE = {
    "fig3": ("k_pct", ["fast_pct"]),
    "fig5a": ("k_pct", ["tail_fast_pct", "lil_fast_pct"]),
    "fig5b": ("k_pct", ["tail_model_pct", "lil_eq1_pct", "ideal_pct"]),
    "fig8": ("k_pct", ["tail_x", "lil_x", "quit_x"]),
    "fig9": ("k_pct", ["tail_fast_pct", "lil_fast_pct", "quit_fast_pct"]),
    "fig10a": ("k_pct", ["btree_occ_pct", "quit_occ_pct"]),
    "fig10b": ("k_pct", ["normalized"]),
    "fig14": ("k_pct", ["sware_insert_us", "quit_insert_us"]),
    "tab2": ("k_pct", ["reduction_x"]),
}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for quit-bench."""
    parser = argparse.ArgumentParser(
        prog="quit-bench",
        description=(
            "Regenerate the tables and figures of 'QuIT your B+-tree "
            "for the Quick Insertion Tree' (EDBT 2025)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiment ids to run (default: all). "
             f"Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help="entries per configuration (default: 100000)",
    )
    parser.add_argument(
        "--leaf-capacity", type=int, default=None,
        help="leaf node capacity (default: 64)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="base RNG seed",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help=(
            "ingest through insert_many in chunks of this size instead "
            "of per-key insert (default: per-key). Note: fast-path "
            "fraction figures (fig3/fig5/fig9) count per-key hits and "
            "read 0 under batched ingest; see TreeStats.batch_* instead"
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="use the seconds-scale smoke sizing",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit",
    )
    parser.add_argument(
        "--json-dir", type=Path, default=None,
        help="also write each result as JSON into this directory",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="render an ASCII chart for experiments with numeric series",
    )
    return parser


def scale_from_args(args: argparse.Namespace) -> BenchScale:
    """Resolve the CLI flags into a BenchScale."""
    scale = BenchScale.smoke() if args.smoke else BenchScale.default()
    overrides = {}
    if args.n is not None:
        overrides["n"] = args.n
    if args.leaf_capacity is not None:
        overrides["leaf_capacity"] = args.leaf_capacity
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    if overrides:
        from dataclasses import replace

        scale = replace(scale, **overrides)
    return scale


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.batch_size is not None and args.batch_size <= 0:
        parser.error(f"--batch-size must be positive, got {args.batch_size}")
    if args.list:
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:10s} {doc}")
        return 0
    requested = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    scale = scale_from_args(args)
    batch_note = (
        f" batch_size={scale.batch_size}" if scale.batch_size else ""
    )
    print(
        f"scale: n={scale.n} leaf_capacity={scale.leaf_capacity} "
        f"seed={scale.seed}{batch_note}",
        flush=True,
    )
    if args.json_dir is not None:
        args.json_dir.mkdir(parents=True, exist_ok=True)
    for exp_id in requested:
        started = time.perf_counter()
        result = EXPERIMENTS[exp_id](scale)
        elapsed = time.perf_counter() - started
        print()
        print(render(result))
        if args.plot and exp_id in _PLOTTABLE:
            x, ys = _PLOTTABLE[exp_id]
            print()
            print(render_chart(result, x, ys))
        if args.json_dir is not None:
            path = args.json_dir / f"{exp_id}.json"
            path.write_text(json.dumps(to_json_dict(result), indent=2))
        print(f"({exp_id} took {elapsed:.1f}s)", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
