"""``quit-durability`` — operate and benchmark the crash-safety layer.

Subcommands over a durability directory (``snapshot.quit`` +
``wal/wal-*.seg``, as written by :class:`repro.core.DurableTree`):

* ``checkpoint DIR`` — recover the state, write a fresh v2 snapshot,
  truncate the WAL;
* ``recover DIR`` — rebuild the tree and print the
  :class:`~repro.core.RecoveryReport` (exit status 1 when damage was
  found and repaired, 0 when clean);
* ``scrub DIR`` — recover without the implicit scrub, then audit the
  fast-path metadata explicitly and print what was repaired;
* ``bench`` — end-to-end recovery-time numbers: ingest *n* entries,
  checkpoint, append *m* more WAL ops, then time a cold recovery;
* ``replicate DIR`` — serve DIR as a replication primary with *k*
  in-process replicas, ingest a demo workload, and report each
  replica's applied position (``--serve`` keeps running until
  SIGTERM/SIGINT, then checkpoints and closes the WAL before exiting);
* ``promote DIR`` — turn a (former) replica directory into a primary:
  scrub, bump the epoch, checkpoint;
* ``status DIR`` — inspect a node directory without recovering it:
  role, epoch, cursor, snapshot and WAL footprint, quarantine;
* ``verify DIR`` — offline CRC verification of every artifact (the
  scrubber's check, without recovering or mutating anything); with
  ``--quarantine``, damaged artifacts are copied aside as evidence.

The process installs SIGTERM/SIGINT handlers for the long-running
commands so an orderly ``kill`` produces a checkpointed, truncated-WAL
directory instead of a replay-heavy one (exit status 0).

Examples::

    quit-durability bench --n 100000 --wal-ops 10000 --variant QuIT
    quit-durability recover /var/lib/quit/state
    quit-durability replicate /var/lib/quit/state --replicas 2 --serve
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Sequence

from ..core import DurableTree, RecoveryReport, TreeConfig
from ..core.durable import SNAPSHOT_NAME, WAL_DIRNAME
from ..core.scrubber import QUARANTINE_DIRNAME, verify_artifacts
from ..core.wal import first_position, replay_wal, segment_paths
from ..replication import (
    CURSOR_FILENAME,
    InProcessTransport,
    Primary,
    Replica,
    TransportChaos,
    read_epoch,
)
from .harness import VARIANTS


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for quit-durability."""
    parser = argparse.ArgumentParser(
        prog="quit-durability",
        description="Checkpoint, recover, scrub, and benchmark the "
                    "crash-safe durability layer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--variant", default="QuIT", choices=sorted(VARIANTS),
            help="tree variant to rebuild into (default: QuIT)",
        )
        p.add_argument(
            "--leaf-capacity", type=int, default=None,
            help="node capacity override (default: from the snapshot)",
        )

    cp = sub.add_parser(
        "checkpoint",
        help="recover DIR, write a fresh snapshot, truncate the WAL",
    )
    cp.add_argument("directory", type=Path)
    add_common(cp)

    rec = sub.add_parser(
        "recover", help="rebuild from DIR and print the recovery report"
    )
    rec.add_argument("directory", type=Path)
    add_common(rec)
    rec.add_argument(
        "--no-scrub", action="store_true",
        help="skip the fast-path metadata audit after replay",
    )

    sc = sub.add_parser(
        "scrub",
        help="recover DIR, audit fast-path metadata, print repairs",
    )
    sc.add_argument("directory", type=Path)
    add_common(sc)

    bench = sub.add_parser(
        "bench", help="measure checkpoint and recovery times"
    )
    bench.add_argument(
        "--n", type=int, default=100_000,
        help="entries in the checkpointed snapshot (default: 100000)",
    )
    bench.add_argument(
        "--wal-ops", type=int, default=10_000,
        help="single-key WAL ops appended after the checkpoint "
             "(default: 10000)",
    )
    bench.add_argument(
        "--fsync", default="none",
        choices=("always", "group", "interval", "none"),
        help="WAL fsync policy during the ingest phase (default: none; "
             "'always' shows the per-op fsync tax, 'group' batches it)",
    )
    bench.add_argument(
        "--directory", type=Path, default=None,
        help="durability directory (default: a fresh temp dir)",
    )
    add_common(bench)

    rep = sub.add_parser(
        "replicate",
        help="serve DIR as a primary with in-process replicas",
    )
    rep.add_argument("directory", type=Path)
    add_common(rep)
    rep.add_argument(
        "--replicas", type=int, default=2,
        help="replica count (default: 2)",
    )
    rep.add_argument(
        "--replica-root", type=Path, default=None,
        help="where replica directories live "
             "(default: <DIR>-replicas)",
    )
    rep.add_argument(
        "--ops", type=int, default=1000,
        help="demo writes to stream through the cluster (default: 1000)",
    )
    rep.add_argument(
        "--required-acks", type=int, default=0,
        help="replicas that must apply a write before it is "
             "acknowledged (default: 0 = asynchronous)",
    )
    rep.add_argument(
        "--chaos-drop", type=float, default=0.0, metavar="P",
        help="per-fetch probability a replica's fetch is dropped",
    )
    rep.add_argument(
        "--seed", type=int, default=0, help="chaos RNG seed",
    )
    rep.add_argument(
        "--fsync", default="none",
        choices=("always", "group", "interval", "none"),
        help="primary WAL fsync policy (default: none)",
    )
    rep.add_argument(
        "--serve", action="store_true",
        help="keep serving after the demo workload until SIGTERM/SIGINT "
             "(then checkpoint, close the WAL, and exit 0)",
    )

    pr = sub.add_parser(
        "promote",
        help="turn a (former) replica directory into a primary",
    )
    pr.add_argument("directory", type=Path)
    add_common(pr)

    st = sub.add_parser(
        "status",
        help="inspect a node directory: role, epoch, cursor, footprint",
    )
    st.add_argument("directory", type=Path)

    ver = sub.add_parser(
        "verify",
        help="offline CRC-verify DIR's snapshot and WAL segments "
             "without recovering (exit 1 when damage is found)",
    )
    ver.add_argument("directory", type=Path)
    ver.add_argument(
        "--quarantine", action="store_true",
        help="copy damaged artifacts into DIR/quarantine/ as evidence",
    )

    return parser


def _install_shutdown_handlers(stop: threading.Event) -> None:
    """Route SIGTERM/SIGINT into ``stop`` for a graceful shutdown.

    Signal handlers can only be installed from the main thread; called
    anywhere else (e.g. a test runner worker) this is a silent no-op
    and the command simply runs to completion.
    """

    def _handler(signum, frame):  # pragma: no cover - signal context
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)
    except ValueError:
        pass


def _config(args: argparse.Namespace) -> Optional[TreeConfig]:
    if args.leaf_capacity is None:
        return None
    return TreeConfig(
        leaf_capacity=args.leaf_capacity,
        internal_capacity=args.leaf_capacity,
    )


def print_report(report: RecoveryReport, out) -> None:
    """Render a recovery report as aligned key/value lines."""
    rows = [
        ("snapshot loaded", report.snapshot_loaded),
        ("snapshot entries", report.snapshot_entries),
        ("WAL segments scanned", report.segments_scanned),
        ("WAL records replayed", report.records_replayed),
        ("entries replayed", report.entries_replayed),
        ("checksum failures", report.checksum_failures),
        ("torn tail", report.truncated_tail),
        ("tail bytes dropped", report.tail_bytes_dropped),
        ("unknown records skipped", report.unknown_records),
    ]
    if report.scrub is not None:
        rows.append(("scrub issues", len(report.scrub.issues)))
        rows.append(("scrub repairs", report.scrub.repairs))
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"  {label:<{width}}  {value}", file=out)
    print(f"  {'clean':<{width}}  {report.clean}", file=out)


def cmd_checkpoint(args: argparse.Namespace, out) -> int:
    durable, report = DurableTree.recover(
        args.directory, VARIANTS[args.variant], _config(args)
    )
    try:
        count = durable.checkpoint()
    finally:
        durable.close()
    print(f"recovered {len(durable)} entries:", file=out)
    print_report(report, out)
    print(f"checkpointed {count} entries; WAL truncated", file=out)
    return 0


def cmd_recover(args: argparse.Namespace, out) -> int:
    durable, report = DurableTree.recover(
        args.directory, VARIANTS[args.variant], _config(args),
        scrub=not args.no_scrub,
    )
    durable.close()
    print(f"recovered {len(durable)} entries:", file=out)
    print_report(report, out)
    return 0 if report.clean else 1


def cmd_scrub(args: argparse.Namespace, out) -> int:
    durable, _ = DurableTree.recover(
        args.directory, VARIANTS[args.variant], _config(args), scrub=False
    )
    report = durable.scrub()
    durable.close()
    print(f"{report.variant}: {len(report.issues)} issue(s), "
          f"{report.repairs} repair(s)", file=out)
    for issue in report.issues:
        print(f"  - {issue}", file=out)
    violations = durable.check(check_min_fill=False)
    for violation in violations:
        print(f"  ! {violation}", file=out)
    return 0 if report.clean and not violations else 1


def cmd_bench(args: argparse.Namespace, out) -> int:
    tree_class = VARIANTS[args.variant]
    config = _config(args) or TreeConfig()
    if args.directory is not None:
        directory = args.directory
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="quit-durability-")
        directory = Path(cleanup.name)
    try:
        durable = DurableTree(
            tree_class(config), directory, fsync=args.fsync
        )
        t0 = time.perf_counter()
        durable.insert_many([(i, i) for i in range(args.n)])
        t_ingest = time.perf_counter() - t0

        t0 = time.perf_counter()
        durable.checkpoint()
        t_checkpoint = time.perf_counter() - t0

        t0 = time.perf_counter()
        base = args.n
        for i in range(args.wal_ops):
            durable.insert(base + i, i)
        t_wal = time.perf_counter() - t0
        durable.close()
        wal_bytes = sum(
            p.stat().st_size for p in segment_paths(directory / "wal")
        )

        t0 = time.perf_counter()
        recovered, report = DurableTree.recover(
            directory, tree_class, config
        )
        t_recover = time.perf_counter() - t0
        recovered.close()

        total = args.n + args.wal_ops
        print(f"variant={args.variant} n={args.n} "
              f"wal_ops={args.wal_ops} fsync={args.fsync}", file=out)
        rows = [
            ("ingest (batched, logged)",
             t_ingest, f"{args.n / max(t_ingest, 1e-9):,.0f} entries/s"),
            ("checkpoint (v2 snapshot)",
             t_checkpoint,
             f"{args.n / max(t_checkpoint, 1e-9):,.0f} entries/s"),
            (f"WAL appends x{args.wal_ops}",
             t_wal, f"{args.wal_ops / max(t_wal, 1e-9):,.0f} ops/s"),
            ("recovery (snapshot+replay)",
             t_recover, f"{total / max(t_recover, 1e-9):,.0f} entries/s"),
        ]
        width = max(len(label) for label, _, _ in rows)
        for label, seconds, rate in rows:
            print(f"  {label:<{width}}  {seconds * 1000:9.1f} ms"
                  f"  {rate}", file=out)
        print(f"  {'WAL size at recovery':<{width}}  "
              f"{wal_bytes / 1024:9.1f} KiB", file=out)
        print(f"recovered {len(recovered)} entries "
              f"({report.records_replayed} WAL records replayed); "
              f"clean={report.clean}", file=out)
        return 0
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _print_cluster(primary: Primary, replicas, out) -> None:
    tail = primary.tail_position()
    health = primary.durable.health.state.value
    print(f"primary {primary.node_id}: epoch {primary.epoch}, "
          f"{len(primary)} entries, health {health}, WAL tail {tail}",
          file=out)
    for replica in replicas:
        durable = replica.durable
        rep_health = durable.health.state.value if durable else "n/a"
        print(f"  {replica.name}: applied_lsn {replica.position} "
              f"lag {replica.lag_bytes}B health {rep_health} "
              f"({replica.records_applied} records applied)", file=out)


def cmd_replicate(args: argparse.Namespace, out) -> int:
    stop = threading.Event()
    _install_shutdown_handlers(stop)
    tree_class = VARIANTS[args.variant]
    config = _config(args)
    durable, _ = DurableTree.recover(
        args.directory, tree_class, config, fsync=args.fsync
    )
    primary = Primary(
        durable, node_id="primary", required_acks=args.required_acks
    )
    replica_root = args.replica_root
    if replica_root is None:
        replica_root = args.directory.parent / (
            args.directory.name + "-replicas"
        )
    replicas = []
    for i in range(args.replicas):
        chaos = None
        if args.chaos_drop > 0:
            chaos = TransportChaos(
                drop_probability=args.chaos_drop, seed=args.seed + i
            )
        replica = Replica(
            replica_root / f"replica{i}",
            InProcessTransport(primary, chaos=chaos),
            tree_class=tree_class,
            config=config,
            name=f"replica{i}",
        )
        replica.bootstrap()
        primary.attach(replica)
        replicas.append(replica)
    base = len(primary)
    print(f"replicating {args.directory} to {len(replicas)} replica(s) "
          f"under {replica_root} (required_acks={args.required_acks})",
          file=out)
    out.flush()
    written = 0
    try:
        for i in range(args.ops):
            if stop.is_set():
                break
            primary.insert(base + i, i)
            written += 1
        tail = primary.tail_position()
        for replica in replicas:
            replica.catch_up(tail, max_rounds=64)
        print(f"streamed {written} write(s)", file=out)
        _print_cluster(primary, replicas, out)
        if args.serve:
            print(f"serving until SIGTERM/SIGINT (pid {os.getpid()})",
                  file=out)
            out.flush()
            while not stop.wait(0.1):
                pass
    finally:
        # Graceful shutdown: leave a checkpointed directory behind so
        # the next start replays (nearly) nothing.
        count = primary.checkpoint()
        primary.close()
        for replica in replicas:
            replica.close()
    print(f"graceful shutdown: checkpointed {count} entries; "
          "WAL truncated", file=out)
    return 0


def cmd_promote(args: argparse.Namespace, out) -> int:
    tree_class = VARIANTS[args.variant]
    durable, _ = DurableTree.recover(
        args.directory, tree_class, _config(args), scrub=False
    )
    scrub_report = durable.scrub()
    old_epoch = read_epoch(args.directory)
    primary = Primary(
        durable, epoch=old_epoch + 1, node_id=args.directory.name
    )
    count = primary.checkpoint()
    primary.close()
    # The directory is no longer a follower of anyone.
    (args.directory / CURSOR_FILENAME).unlink(missing_ok=True)
    print(f"promoted {args.directory}: epoch {old_epoch} -> "
          f"{primary.epoch}", file=out)
    print(f"  scrub: {len(scrub_report.issues)} issue(s), "
          f"{scrub_report.repairs} repair(s)", file=out)
    print(f"  checkpointed {count} entries; existing replicas must "
          "re-bootstrap", file=out)
    return 0


def cmd_status(args: argparse.Namespace, out) -> int:
    directory = args.directory
    if not directory.exists():
        print(f"{directory}: no such directory", file=out)
        return 1
    cursor_path = directory / CURSOR_FILENAME
    role = "replica" if cursor_path.exists() else "primary"
    rows = [("role", role), ("epoch", read_epoch(directory))]
    if cursor_path.exists():
        try:
            epoch_s, seg_s, off_s = cursor_path.read_text().split()
            rows.append(("applied_lsn", f"{seg_s}:{off_s} "
                                        f"(tenure {epoch_s})"))
        except ValueError:
            rows.append(("applied_lsn", "unreadable"))
    snapshot = directory / SNAPSHOT_NAME
    if snapshot.exists():
        rows.append(("snapshot", f"{snapshot.stat().st_size} bytes"))
    else:
        rows.append(("snapshot", "none"))
    wal_dir = directory / WAL_DIRNAME
    segments = segment_paths(wal_dir) if wal_dir.exists() else []
    wal_bytes = sum(p.stat().st_size for p in segments)
    rows.append(("wal", f"{len(segments)} segment(s), {wal_bytes} bytes"))
    first = first_position(wal_dir) if wal_dir.exists() else None
    rows.append(("wal first position", first if first else "empty"))
    qdir = directory / QUARANTINE_DIRNAME
    quarantined = (
        sum(1 for p in qdir.iterdir() if p.is_file()) if qdir.is_dir() else 0
    )
    rows.append(("quarantine", f"{quarantined} artifact(s)"))
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"  {label:<{width}}  {value}", file=out)
    return 0


def cmd_verify(args: argparse.Namespace, out) -> int:
    directory = args.directory
    if not directory.exists():
        print(f"{directory}: no such directory", file=out)
        return 1
    results = verify_artifacts(directory)
    damaged = []
    for artifact in sorted(results):
        issues = results[artifact]
        # "note:" entries describe expected conditions (a torn tail on
        # the final segment is an in-flight append at crash time that
        # recovery trims); anything else is real damage.
        fatal = [issue for issue in issues if not issue.startswith("note:")]
        verdict = "CORRUPT" if fatal else ("ok" if not issues else "ok*")
        print(f"  {artifact}: {verdict}", file=out)
        for issue in issues:
            print(f"    - {issue}", file=out)
        if fatal:
            damaged.append(Path(artifact))
    if args.quarantine and damaged:
        qdir = directory / QUARANTINE_DIRNAME
        qdir.mkdir(exist_ok=True)
        for path in damaged:
            dest = qdir / f"{path.name}.cli"
            shutil.copy2(path, dest)
            print(f"  quarantined -> {dest}", file=out)
    print(f"{len(results)} artifact(s) checked, {len(damaged)} damaged",
          file=out)
    return 1 if damaged else 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "checkpoint": cmd_checkpoint,
        "recover": cmd_recover,
        "scrub": cmd_scrub,
        "bench": cmd_bench,
        "replicate": cmd_replicate,
        "promote": cmd_promote,
        "status": cmd_status,
        "verify": cmd_verify,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
