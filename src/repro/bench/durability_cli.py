"""``quit-durability`` — operate and benchmark the crash-safety layer.

Subcommands over a durability directory (``snapshot.quit`` +
``wal/wal-*.seg``, as written by :class:`repro.core.DurableTree`):

* ``checkpoint DIR`` — recover the state, write a fresh v2 snapshot,
  truncate the WAL;
* ``recover DIR`` — rebuild the tree and print the
  :class:`~repro.core.RecoveryReport` (exit status 1 when damage was
  found and repaired, 0 when clean);
* ``scrub DIR`` — recover without the implicit scrub, then audit the
  fast-path metadata explicitly and print what was repaired;
* ``bench`` — end-to-end recovery-time numbers: ingest *n* entries,
  checkpoint, append *m* more WAL ops, then time a cold recovery.

Examples::

    quit-durability bench --n 100000 --wal-ops 10000 --variant QuIT
    quit-durability recover /var/lib/quit/state
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from ..core import DurableTree, RecoveryReport, TreeConfig
from ..core.wal import replay_wal, segment_paths
from .harness import VARIANTS


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for quit-durability."""
    parser = argparse.ArgumentParser(
        prog="quit-durability",
        description="Checkpoint, recover, scrub, and benchmark the "
                    "crash-safe durability layer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--variant", default="QuIT", choices=sorted(VARIANTS),
            help="tree variant to rebuild into (default: QuIT)",
        )
        p.add_argument(
            "--leaf-capacity", type=int, default=None,
            help="node capacity override (default: from the snapshot)",
        )

    cp = sub.add_parser(
        "checkpoint",
        help="recover DIR, write a fresh snapshot, truncate the WAL",
    )
    cp.add_argument("directory", type=Path)
    add_common(cp)

    rec = sub.add_parser(
        "recover", help="rebuild from DIR and print the recovery report"
    )
    rec.add_argument("directory", type=Path)
    add_common(rec)
    rec.add_argument(
        "--no-scrub", action="store_true",
        help="skip the fast-path metadata audit after replay",
    )

    sc = sub.add_parser(
        "scrub",
        help="recover DIR, audit fast-path metadata, print repairs",
    )
    sc.add_argument("directory", type=Path)
    add_common(sc)

    bench = sub.add_parser(
        "bench", help="measure checkpoint and recovery times"
    )
    bench.add_argument(
        "--n", type=int, default=100_000,
        help="entries in the checkpointed snapshot (default: 100000)",
    )
    bench.add_argument(
        "--wal-ops", type=int, default=10_000,
        help="single-key WAL ops appended after the checkpoint "
             "(default: 10000)",
    )
    bench.add_argument(
        "--fsync", default="none", choices=("always", "interval", "none"),
        help="WAL fsync policy during the ingest phase (default: none; "
             "'always' shows the per-op fsync tax)",
    )
    bench.add_argument(
        "--directory", type=Path, default=None,
        help="durability directory (default: a fresh temp dir)",
    )
    add_common(bench)

    return parser


def _config(args: argparse.Namespace) -> Optional[TreeConfig]:
    if args.leaf_capacity is None:
        return None
    return TreeConfig(
        leaf_capacity=args.leaf_capacity,
        internal_capacity=args.leaf_capacity,
    )


def print_report(report: RecoveryReport, out) -> None:
    """Render a recovery report as aligned key/value lines."""
    rows = [
        ("snapshot loaded", report.snapshot_loaded),
        ("snapshot entries", report.snapshot_entries),
        ("WAL segments scanned", report.segments_scanned),
        ("WAL records replayed", report.records_replayed),
        ("entries replayed", report.entries_replayed),
        ("checksum failures", report.checksum_failures),
        ("torn tail", report.truncated_tail),
        ("tail bytes dropped", report.tail_bytes_dropped),
        ("unknown records skipped", report.unknown_records),
    ]
    if report.scrub is not None:
        rows.append(("scrub issues", len(report.scrub.issues)))
        rows.append(("scrub repairs", report.scrub.repairs))
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"  {label:<{width}}  {value}", file=out)
    print(f"  {'clean':<{width}}  {report.clean}", file=out)


def cmd_checkpoint(args: argparse.Namespace, out) -> int:
    durable, report = DurableTree.recover(
        args.directory, VARIANTS[args.variant], _config(args)
    )
    try:
        count = durable.checkpoint()
    finally:
        durable.close()
    print(f"recovered {len(durable)} entries:", file=out)
    print_report(report, out)
    print(f"checkpointed {count} entries; WAL truncated", file=out)
    return 0


def cmd_recover(args: argparse.Namespace, out) -> int:
    durable, report = DurableTree.recover(
        args.directory, VARIANTS[args.variant], _config(args),
        scrub=not args.no_scrub,
    )
    durable.close()
    print(f"recovered {len(durable)} entries:", file=out)
    print_report(report, out)
    return 0 if report.clean else 1


def cmd_scrub(args: argparse.Namespace, out) -> int:
    durable, _ = DurableTree.recover(
        args.directory, VARIANTS[args.variant], _config(args), scrub=False
    )
    report = durable.scrub()
    durable.close()
    print(f"{report.variant}: {len(report.issues)} issue(s), "
          f"{report.repairs} repair(s)", file=out)
    for issue in report.issues:
        print(f"  - {issue}", file=out)
    violations = durable.check(check_min_fill=False)
    for violation in violations:
        print(f"  ! {violation}", file=out)
    return 0 if report.clean and not violations else 1


def cmd_bench(args: argparse.Namespace, out) -> int:
    tree_class = VARIANTS[args.variant]
    config = _config(args) or TreeConfig()
    if args.directory is not None:
        directory = args.directory
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="quit-durability-")
        directory = Path(cleanup.name)
    try:
        durable = DurableTree(
            tree_class(config), directory, fsync=args.fsync
        )
        t0 = time.perf_counter()
        durable.insert_many([(i, i) for i in range(args.n)])
        t_ingest = time.perf_counter() - t0

        t0 = time.perf_counter()
        durable.checkpoint()
        t_checkpoint = time.perf_counter() - t0

        t0 = time.perf_counter()
        base = args.n
        for i in range(args.wal_ops):
            durable.insert(base + i, i)
        t_wal = time.perf_counter() - t0
        durable.close()
        wal_bytes = sum(
            p.stat().st_size for p in segment_paths(directory / "wal")
        )

        t0 = time.perf_counter()
        recovered, report = DurableTree.recover(
            directory, tree_class, config
        )
        t_recover = time.perf_counter() - t0
        recovered.close()

        total = args.n + args.wal_ops
        print(f"variant={args.variant} n={args.n} "
              f"wal_ops={args.wal_ops} fsync={args.fsync}", file=out)
        rows = [
            ("ingest (batched, logged)",
             t_ingest, f"{args.n / max(t_ingest, 1e-9):,.0f} entries/s"),
            ("checkpoint (v2 snapshot)",
             t_checkpoint,
             f"{args.n / max(t_checkpoint, 1e-9):,.0f} entries/s"),
            (f"WAL appends x{args.wal_ops}",
             t_wal, f"{args.wal_ops / max(t_wal, 1e-9):,.0f} ops/s"),
            ("recovery (snapshot+replay)",
             t_recover, f"{total / max(t_recover, 1e-9):,.0f} entries/s"),
        ]
        width = max(len(label) for label, _, _ in rows)
        for label, seconds, rate in rows:
            print(f"  {label:<{width}}  {seconds * 1000:9.1f} ms"
                  f"  {rate}", file=out)
        print(f"  {'WAL size at recovery':<{width}}  "
              f"{wal_bytes / 1024:9.1f} KiB", file=out)
        print(f"recovered {len(recovered)} entries "
              f"({report.records_replayed} WAL records replayed); "
              f"clean={report.clean}", file=out)
        return 0
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "checkpoint": cmd_checkpoint,
        "recover": cmd_recover,
        "scrub": cmd_scrub,
        "bench": cmd_bench,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
