"""Machine-readable batched-path regression baselines.

Three modes, selected with ``--mode``, all measured for every index
entry point (the four fast-path variants, the classical B+-tree, SWARE,
and the concurrent wrapper) on a BoDS near-sorted stream:

* ``ingest`` (default): per-key ``insert`` vs batched ``insert_many``
  throughput — the PR 1 baseline::

      python -m repro.bench.regress --out BENCH_PR1.json

* ``reads``: per-key ``get`` vs batched ``get_many`` throughput against
  a pre-built index, replaying the near-sorted arrival order as the
  probe stream (chunked by ``--read-batch-size``)::

      python -m repro.bench.regress --mode reads --out BENCH_PR2.json

* ``mixed``: an interleaved read/write workload — each chunk of the
  stream is ingested and then immediately probed — comparing the
  per-key loops against ``insert_many`` + ``get_many``.

The committed ``BENCH_PR1.json`` / ``BENCH_PR2.json`` at the repository
root were produced by exactly the commands above (default scale:
n=100000, K=5%, L=5%, batch 4096).  Use ``--smoke`` for a seconds-scale
run in CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import tempfile
import threading
import time
from collections import deque
from dataclasses import replace
from pathlib import Path
from typing import Any, Optional, Sequence

from ..concurrency import ConcurrentTree
from ..core import QuITTree
from ..core.durable import DurableTree
from ..sortedness.bods import generate_keys
from .harness import (
    VARIANTS,
    BenchScale,
    _gc_paused,
    ingest,
    ingest_batched,
    make_tree,
)

#: Indexes measured, in reporting order.  Every name maps to a builder
#: taking a BenchScale.
MATRIX: dict[str, Any] = {
    **{name: None for name in VARIANTS},
    "SWARE": None,
    "concurrent-QuIT": None,
}


def _build(name: str, scale: BenchScale) -> Any:
    if name == "concurrent-QuIT":
        return ConcurrentTree(QuITTree(scale.tree_config))
    return make_tree(name, scale)


def _flush_if_buffered(tree: Any) -> None:
    flush = getattr(tree, "flush", None)
    if flush is not None:
        flush()


def _time_per_key(name: str, scale: BenchScale, keys: list[int]) -> float:
    """Best-of-repeats seconds for a per-key insert loop (+ final flush
    for buffered indexes, inside the timed section)."""
    best = float("inf")
    for _ in range(max(1, scale.repeats)):
        tree = _build(name, scale)
        insert = tree.insert
        with _gc_paused():
            start = time.perf_counter()
            for k in keys:
                insert(k, k)
            _flush_if_buffered(tree)
            best = min(best, time.perf_counter() - start)
    return best


def _time_batched(
    name: str, scale: BenchScale, keys: list[int], batch_size: int
) -> tuple[float, Any]:
    """Best-of-repeats seconds for chunked ``insert_many`` (+ final flush
    inside the timed section).  Returns ``(seconds, last_tree)``."""
    items = [(k, k) for k in keys]
    best = float("inf")
    tree = None
    for _ in range(max(1, scale.repeats)):
        tree = _build(name, scale)
        insert_many = tree.insert_many
        with _gc_paused():
            start = time.perf_counter()
            for lo in range(0, len(items), batch_size):
                insert_many(items[lo : lo + batch_size])
            _flush_if_buffered(tree)
            best = min(best, time.perf_counter() - start)
    return best, tree


def _batch_stats(tree: Any) -> dict[str, int]:
    """Batch-path counters from whichever stats object the index exposes."""
    stats = getattr(tree, "stats", None)
    if stats is None and hasattr(tree, "tree"):
        stats = tree.tree.stats
    if stats is None:
        return {}
    return {
        key: getattr(stats, key)
        for key in (
            "batch_inserts",
            "batch_runs",
            "batch_coalesced",
            "batch_segments",
            "batch_fast_segments",
            "batch_chained_segments",
            "index_fallback_scans",
        )
        if hasattr(stats, key)
    }


def _meta(
    benchmark: str,
    mode: str,
    scale: BenchScale,
    k_fraction: float,
    l_fraction: float,
    batch_size: int,
    read_batch_size: Optional[int] = None,
) -> dict[str, Any]:
    """The shared ``meta`` block of every regression document."""
    command = (
        f"python -m repro.bench.regress --mode {mode}"
        f" --n {scale.n} --k {k_fraction} --l {l_fraction}"
        f" --batch-size {batch_size}"
    )
    if read_batch_size is not None:
        command += f" --read-batch-size {read_batch_size}"
    command += (
        f" --leaf-capacity {scale.leaf_capacity}"
        f" --layout {scale.layout}"
        f" --seed {scale.seed} --repeats {scale.repeats}"
    )
    meta: dict[str, Any] = {
        "benchmark": benchmark,
        "mode": mode,
        "workload": "BoDS near-sorted stream",
        "n": scale.n,
        "k_fraction": k_fraction,
        "l_fraction": l_fraction,
        "batch_size": batch_size,
    }
    if read_batch_size is not None:
        meta["read_batch_size"] = read_batch_size
    meta.update(
        {
            "leaf_capacity": scale.leaf_capacity,
            "layout": scale.layout,
            "seed": scale.seed,
            "repeats": scale.repeats,
            "python": platform.python_version(),
            "command": command,
        }
    )
    return meta


def run_regression(
    scale: BenchScale,
    k_fraction: float,
    l_fraction: float,
    batch_size: int,
) -> dict[str, Any]:
    """Measure the ingest matrix and return the JSON-ready document."""
    keys = [
        int(k)
        for k in generate_keys(
            scale.n, k_fraction, l_fraction, seed=scale.seed
        )
    ]
    results = []
    for name in MATRIX:
        per_key_s = _time_per_key(name, scale, keys)
        batched_s, tree = _time_batched(name, scale, keys, batch_size)
        results.append(
            {
                "index": name,
                "per_key_seconds": round(per_key_s, 6),
                "batched_seconds": round(batched_s, 6),
                "per_key_ops": round(scale.n / per_key_s, 1),
                "batched_ops": round(scale.n / batched_s, 1),
                "speedup": round(per_key_s / batched_s, 3),
                "batch_stats": _batch_stats(tree),
            }
        )
    meta = _meta(
        "batched sorted-run ingest vs per-key insert",
        "ingest", scale, k_fraction, l_fraction, batch_size,
    )
    del meta["mode"]  # the PR 1 document predates the mode axis
    return {"meta": meta, "results": results}


def _tree_stats(tree: Any) -> Any:
    """The TreeStats object behind whichever facade ``tree`` is."""
    stats = getattr(tree, "stats", None)
    if stats is None and hasattr(tree, "tree"):
        stats = tree.tree.stats
    return stats


_READ_COUNTERS = (
    "point_lookups",
    "read_batches",
    "read_chain_hits",
    "read_redescents",
    "read_fast_hits",
    "read_fast_misses",
)


def _read_counters(diff: Any) -> dict[str, int]:
    """Nonzero-relevant read counters from a stats diff."""
    if diff is None:
        return {}
    return {
        key: getattr(diff, key)
        for key in _READ_COUNTERS
        if hasattr(diff, key)
    }


def _build_loaded(
    name: str, scale: BenchScale, keys: list[int], batch_size: int
) -> Any:
    """One index pre-loaded with the stream via the batched ingest path
    (buffered indexes flushed, so reads hit the steady state)."""
    tree = _build(name, scale)
    items = [(k, k) for k in keys]
    insert_many = tree.insert_many
    for lo in range(0, len(items), batch_size):
        insert_many(items[lo : lo + batch_size])
    _flush_if_buffered(tree)
    return tree


def run_read_regression(
    scale: BenchScale,
    k_fraction: float,
    l_fraction: float,
    batch_size: int,
    read_batch_size: int,
) -> dict[str, Any]:
    """Measure per-key ``get`` vs chunked ``get_many`` on pre-built
    indexes and return the JSON-ready document.

    The probe stream replays the BoDS arrival order (every key present,
    near-sorted) — the read phase of the paper's mixed workloads.  Each
    timing phase also reports the read counters it accumulated, so the
    fast-path read hits and the chain-vs-descent split are visible next
    to the wall-clock numbers.
    """
    keys = [
        int(k)
        for k in generate_keys(
            scale.n, k_fraction, l_fraction, seed=scale.seed
        )
    ]
    repeats = max(1, scale.repeats)
    results = []
    for name in MATRIX:
        tree = _build_loaded(name, scale, keys, batch_size)
        stats = _tree_stats(tree)
        get = tree.get
        before = stats.snapshot() if stats is not None else None
        per_key_s = float("inf")
        with _gc_paused():
            for _ in range(repeats):
                start = time.perf_counter()
                for k in keys:
                    get(k)
                per_key_s = min(per_key_s, time.perf_counter() - start)
        per_key_diff = (
            stats.diff(before) if stats is not None else None
        )
        get_many = tree.get_many
        before = stats.snapshot() if stats is not None else None
        batched_s = float("inf")
        with _gc_paused():
            for _ in range(repeats):
                start = time.perf_counter()
                for lo in range(0, len(keys), read_batch_size):
                    get_many(keys[lo : lo + read_batch_size])
                batched_s = min(batched_s, time.perf_counter() - start)
        batched_diff = (
            stats.diff(before) if stats is not None else None
        )
        results.append(
            {
                "index": name,
                "per_key_seconds": round(per_key_s, 6),
                "batched_seconds": round(batched_s, 6),
                "per_key_ops": round(scale.n / per_key_s, 1),
                "batched_ops": round(scale.n / batched_s, 1),
                "speedup": round(per_key_s / batched_s, 3),
                "per_key_read_stats": _read_counters(per_key_diff),
                "batched_read_stats": _read_counters(batched_diff),
            }
        )
    return {
        "meta": _meta(
            "batched sorted multi-probe reads vs per-key get",
            "reads", scale, k_fraction, l_fraction, batch_size,
            read_batch_size,
        ),
        "results": results,
    }


def run_mixed_regression(
    scale: BenchScale,
    k_fraction: float,
    l_fraction: float,
    batch_size: int,
    read_batch_size: int,
) -> dict[str, Any]:
    """Measure an interleaved read/write workload: each ``batch_size``
    chunk of the stream is ingested and then immediately probed
    (every key of the chunk), per-key loops vs
    ``insert_many`` + ``get_many``."""
    keys = [
        int(k)
        for k in generate_keys(
            scale.n, k_fraction, l_fraction, seed=scale.seed
        )
    ]
    repeats = max(1, scale.repeats)
    n_ops = 2 * scale.n  # one insert + one probe per key
    results = []
    for name in MATRIX:
        per_key_s = float("inf")
        for _ in range(repeats):
            tree = _build(name, scale)
            insert = tree.insert
            get = tree.get
            with _gc_paused():
                start = time.perf_counter()
                for lo in range(0, len(keys), batch_size):
                    chunk = keys[lo : lo + batch_size]
                    for k in chunk:
                        insert(k, k)
                    for k in chunk:
                        get(k)
                _flush_if_buffered(tree)
                per_key_s = min(per_key_s, time.perf_counter() - start)
        batched_s = float("inf")
        tree = None
        for _ in range(repeats):
            tree = _build(name, scale)
            insert_many = tree.insert_many
            get_many = tree.get_many
            with _gc_paused():
                start = time.perf_counter()
                for lo in range(0, len(keys), batch_size):
                    chunk = keys[lo : lo + batch_size]
                    insert_many([(k, k) for k in chunk])
                    for plo in range(0, len(chunk), read_batch_size):
                        get_many(chunk[plo : plo + read_batch_size])
                _flush_if_buffered(tree)
                batched_s = min(batched_s, time.perf_counter() - start)
        results.append(
            {
                "index": name,
                "per_key_seconds": round(per_key_s, 6),
                "batched_seconds": round(batched_s, 6),
                "per_key_ops": round(n_ops / per_key_s, 1),
                "batched_ops": round(n_ops / batched_s, 1),
                "speedup": round(per_key_s / batched_s, 3),
                "read_stats": _read_counters(None)
                if _tree_stats(tree) is None
                else _read_counters(_tree_stats(tree)),
            }
        )
    return {
        "meta": _meta(
            "interleaved chunked read/write: per-key loops vs "
            "insert_many + get_many",
            "mixed", scale, k_fraction, l_fraction, batch_size,
            read_batch_size,
        ),
        "results": results,
    }


#: Variants whose fast paths gate the gapped-layout acceptance: the
#: gapped slot-array leaves must beat the list baseline on per-key
#: insert throughput for each of these.
FAST_PATH_VARIANTS = ("tail-B+-tree", "lil-B+-tree", "pole-B+-tree", "QuIT")


def run_layout_ab(
    scale: BenchScale, k_fraction: float, l_fraction: float
) -> dict[str, Any]:
    """Measure gapped vs list per-key insert throughput, interleaved.

    Cross-process comparisons of the two layouts are dominated by
    machine noise (2-3x swings between otherwise-identical runs), so
    both layouts are timed **within one process**, alternating which
    goes first each repeat, GC paused, best-of-``scale.repeats`` per
    side.  That is the only methodology that produced stable ratios
    during development; treat any single-layout cross-run delta with
    suspicion.
    """
    keys = [
        int(k)
        for k in generate_keys(
            scale.n, k_fraction, l_fraction, seed=scale.seed
        )
    ]
    scales = {
        layout: replace(scale, layout=layout)
        for layout in ("gapped", "list")
    }
    repeats = max(1, scale.repeats)
    results = []
    for name in FAST_PATH_VARIANTS:
        best = {"gapped": float("inf"), "list": float("inf")}
        for rep in range(repeats):
            order = (
                ("gapped", "list") if rep % 2 == 0 else ("list", "gapped")
            )
            for layout in order:
                tree = make_tree(name, scales[layout])
                insert = tree.insert
                with _gc_paused():
                    start = time.perf_counter()
                    for k in keys:
                        insert(k, k)
                    best[layout] = min(
                        best[layout], time.perf_counter() - start
                    )
        results.append(
            {
                "index": name,
                "gapped_per_key_seconds": round(best["gapped"], 6),
                "list_per_key_seconds": round(best["list"], 6),
                "gapped_per_key_ops": round(scale.n / best["gapped"], 1),
                "list_per_key_ops": round(scale.n / best["list"], 1),
                "gapped_over_list": round(
                    best["list"] / best["gapped"], 3
                ),
            }
        )
    meta = _meta(
        "gapped vs list leaf layout: interleaved per-key insert A/B",
        "layout", scale, k_fraction, l_fraction,
        scale.batch_size or scale.n,
    )
    return {"meta": meta, "results": results}


#: fsync policies compared by ``--mode durability``, reporting order.
DURABILITY_POLICIES = ("always", "group", "interval", "none")

#: Commit tickets a durability-bench writer keeps in flight before it
#: awaits the oldest — the pipelining depth of the submit/await surface.
INFLIGHT_WINDOW = 64


def _durable_ingest_once(
    policy: str,
    keys: list[int],
    writers: int,
    batch_size: int,
    scale: BenchScale,
) -> tuple[float, dict[str, Any]]:
    """One timed durable-ingest run; returns ``(seconds, wal_stats)``.

    ``writers`` threads share one ``DurableTree(ConcurrentTree(QuIT))``
    and split the key stream round-robin.  Every writer uses the
    pipelined submit/await surface: ``submit_insert`` per key
    (``batch_size == 1``) or ``submit_many`` per chunk, keeping at most
    :data:`INFLIGHT_WINDOW` tickets outstanding and draining them all
    before the clock stops — no acknowledgement is left in flight.  The
    client code is identical for every policy (non-group tickets come
    back already resolved, so the window never fills); what varies is
    purely who pays for which fsync.
    """
    directory = tempfile.mkdtemp(prefix=f"quit-durab-{policy}-")
    try:
        tree = DurableTree(
            ConcurrentTree(QuITTree(scale.tree_config)),
            directory,
            fsync=policy,
        )
        shards = [keys[i::writers] for i in range(writers)]
        errors: list[BaseException] = []

        def run(shard: list[int]) -> None:
            try:
                pending: deque = deque()
                if batch_size == 1:
                    submit = tree.submit_insert
                    for k in shard:
                        pending.append(submit(k, k))
                        if len(pending) > INFLIGHT_WINDOW:
                            pending.popleft().wait(120)
                else:
                    for lo in range(0, len(shard), batch_size):
                        pending.append(
                            tree.submit_many(
                                [(k, k) for k in shard[lo : lo + batch_size]]
                            )
                        )
                        if len(pending) > INFLIGHT_WINDOW:
                            pending.popleft().wait(120)
                for ticket in pending:
                    ticket.wait(120)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(shard,)) for shard in shards
        ]
        with _gc_paused():
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        wal = tree.wal
        wal_stats = {
            "syncs": wal.syncs,
            "group_batches": wal.group_batches,
            "group_batch_max": wal.group_batch_max,
            "group_batch_mean": round(
                wal.group_batch_records / wal.group_batches, 2
            )
            if wal.group_batches
            else 0.0,
            "unsynced_acks": wal.unsynced_acks,
        }
        tree.close()
        return elapsed, wal_stats
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run_durability_regression(
    scale: BenchScale,
    k_fraction: float,
    l_fraction: float,
    writers_axis: Sequence[int],
    batch_sizes: Sequence[int],
) -> dict[str, Any]:
    """Durable-ingest throughput: fsync policy × writers × batch size.

    Like :func:`run_layout_ab`, every policy of a cell is timed
    **within one process**, alternating which policy goes first each
    repeat (cross-process fsync comparisons swing with page-cache and
    scheduler state), best-of-``scale.repeats`` per policy.  The
    headline cell is ``writers=8, batch=1``: per-key pipelined submits,
    where ``fsync="group"`` amortizes one fsync over every record the
    flusher drains while ``"always"`` pays one per op.
    """
    keys = [
        int(k)
        for k in generate_keys(
            scale.n, k_fraction, l_fraction, seed=scale.seed
        )
    ]
    repeats = max(1, scale.repeats)
    results = []
    for writers in writers_axis:
        for batch_size in batch_sizes:
            best = {p: float("inf") for p in DURABILITY_POLICIES}
            stats = {p: {} for p in DURABILITY_POLICIES}
            for rep in range(repeats):
                order = (
                    DURABILITY_POLICIES
                    if rep % 2 == 0
                    else tuple(reversed(DURABILITY_POLICIES))
                )
                for policy in order:
                    elapsed, wal_stats = _durable_ingest_once(
                        policy, keys, writers, batch_size, scale
                    )
                    if elapsed < best[policy]:
                        best[policy] = elapsed
                        stats[policy] = wal_stats
            row: dict[str, Any] = {
                "writers": writers,
                "batch_size": batch_size,
            }
            for policy in DURABILITY_POLICIES:
                row[f"{policy}_seconds"] = round(best[policy], 6)
                row[f"{policy}_ops"] = round(scale.n / best[policy], 1)
            row["group_over_always"] = round(
                best["always"] / best["group"], 3
            )
            row["group_wal"] = stats["group"]
            row["always_syncs"] = stats["always"].get("syncs", 0)
            results.append(row)
    meta = _meta(
        "durable ingest: fsync policy interleaved A/B "
        "(always/group/interval/none)",
        "durability", scale, k_fraction, l_fraction,
        max(batch_sizes),
    )
    meta["writers_axis"] = list(writers_axis)
    meta["batch_sizes"] = list(batch_sizes)
    meta["index"] = "DurableTree(ConcurrentTree(QuIT))"
    return {"meta": meta, "results": results}


#: Pipelining windows (outstanding frames per client) swept by
#: ``--mode network``.  window=1 is classic request/response RPC;
#: deeper windows let group commit batch the WAL fsyncs across frames.
NETWORK_WINDOWS = (1, 8, 32)


def _network_ingest_once(
    keys: list[int],
    writers: int,
    batch_size: int,
    window: int,
    scale: BenchScale,
) -> tuple[float, dict[str, Any]]:
    """One timed network-ingest run; returns ``(seconds, server_stats)``.

    A loopback :class:`~repro.net.server.QuitServer` fronts the same
    ``DurableTree(ConcurrentTree(QuIT), fsync="group")`` the in-process
    baseline uses; ``writers`` clients each pipeline their shard as
    ``PUT_MANY`` frames with up to ``window`` outstanding.  The timed
    section ends when every ack has been reaped — like the in-process
    baseline, no acknowledgement is left in flight.
    """
    from ..net import BackgroundServer, QuitClient

    directory = tempfile.mkdtemp(prefix="quit-netbench-")
    try:
        tree = DurableTree(
            ConcurrentTree(QuITTree(scale.tree_config)),
            directory,
            fsync="group",
        )
        shards = [keys[i::writers] for i in range(writers)]
        errors: list[BaseException] = []
        with BackgroundServer(tree, max_inflight=max(64, writers * window)) as bg:
            clients = [
                QuitClient("127.0.0.1", bg.port, deadline=120.0)
                for _ in shards
            ]

            def run(client: "QuitClient", shard: list[int]) -> None:
                try:
                    batches = [
                        [(k, k) for k in shard[lo : lo + batch_size]]
                        for lo in range(0, len(shard), batch_size)
                    ]
                    client.pipeline_insert_many(batches, window=window)
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(client, shard))
                for client, shard in zip(clients, shards)
            ]
            with _gc_paused():
                start = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                elapsed = time.perf_counter() - start
            for client in clients:
                client.close()
            stats = bg.stats.as_dict()
        if errors:
            raise errors[0]
        tree.close()
        return elapsed, stats
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run_network_regression(
    scale: BenchScale,
    k_fraction: float,
    l_fraction: float,
    batch_size: int,
    writers_axis: Sequence[int],
    windows: Sequence[int] = NETWORK_WINDOWS,
) -> dict[str, Any]:
    """Network-served ingest vs the in-process pipelined baseline.

    Every row compares ``writers`` loopback clients pipelining
    ``PUT_MANY`` frames (``window`` outstanding each) against the same
    number of in-process writer threads on the pipelined
    ``submit_many`` surface, identical tree/WAL/fsync configuration.
    ``network_over_inprocess`` is the wall-clock factor the socket hop,
    framing, and admission layer cost on top of the in-process path —
    the number the CI gate bounds.
    """
    keys = [
        int(k)
        for k in generate_keys(
            scale.n, k_fraction, l_fraction, seed=scale.seed
        )
    ]
    repeats = max(1, scale.repeats)
    results = []
    for writers in writers_axis:
        inprocess_s = float("inf")
        for _ in range(repeats):
            elapsed, _stats = _durable_ingest_once(
                "group", keys, writers, batch_size, scale
            )
            inprocess_s = min(inprocess_s, elapsed)
        for window in windows:
            net_s = float("inf")
            net_stats: dict[str, Any] = {}
            for _ in range(repeats):
                elapsed, stats = _network_ingest_once(
                    keys, writers, batch_size, window, scale
                )
                if elapsed < net_s:
                    net_s = elapsed
                    net_stats = stats
            results.append(
                {
                    "writers": writers,
                    "window": window,
                    "batch_size": batch_size,
                    "inprocess_seconds": round(inprocess_s, 6),
                    "network_seconds": round(net_s, 6),
                    "inprocess_ops": round(scale.n / inprocess_s, 1),
                    "network_ops": round(scale.n / net_s, 1),
                    "network_over_inprocess": round(net_s / inprocess_s, 3),
                    "server_stats": {
                        key: net_stats[key]
                        for key in (
                            "net_requests",
                            "net_applied",
                            "net_inflight_max",
                            "net_sheds",
                        )
                        if key in net_stats
                    },
                }
            )
    meta = _meta(
        "network-served pipelined ingest vs in-process submit_many",
        "network", scale, k_fraction, l_fraction, batch_size,
    )
    meta["writers_axis"] = list(writers_axis)
    meta["windows"] = list(windows)
    meta["index"] = "QuitServer(DurableTree(ConcurrentTree(QuIT)))"
    meta["transport"] = "loopback TCP, length-prefixed frames"
    return {"meta": meta, "results": results}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for quit-regress."""
    parser = argparse.ArgumentParser(
        prog="quit-regress",
        description=(
            "Batched-path regression baselines: per-key loops vs "
            "insert_many / get_many across all index entry points."
        ),
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON document here (default: stdout only)",
    )
    parser.add_argument(
        "--mode",
        choices=(
            "ingest", "reads", "mixed", "layout", "durability", "network",
        ),
        default="ingest",
        help=(
            "ingest: insert vs insert_many (PR 1 baseline); "
            "reads: get vs get_many on a pre-built index; "
            "mixed: interleaved chunked read/write; "
            "layout: gapped vs list per-key insert A/B, interleaved "
            "in-process; "
            "durability: durable-ingest fsync-policy A/B over "
            "writers x batch size; "
            "network: loopback-served pipelined ingest vs in-process "
            "submit_many (default: ingest)"
        ),
    )
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument(
        "--k", type=float, default=0.05,
        help="BoDS K: fraction of displaced keys (default 0.05)",
    )
    parser.add_argument(
        "--l", type=float, default=0.05,
        help="BoDS L: max displacement as a fraction of n (default 0.05)",
    )
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument(
        "--read-batch-size", type=int, default=4096,
        help="probe chunk size handed to get_many (reads/mixed modes)",
    )
    parser.add_argument("--leaf-capacity", type=int, default=64)
    parser.add_argument(
        "--layout", choices=("gapped", "list"), default="gapped",
        help=(
            "leaf storage layout under test: gapped slot arrays "
            "(default) or the legacy list baseline"
        ),
    )
    parser.add_argument(
        "--writers", default="1,8",
        help=(
            "durability mode: comma-separated writer-thread counts "
            "(default 1,8)"
        ),
    )
    parser.add_argument(
        "--durability-batches", default="1,64",
        help=(
            "durability mode: comma-separated submit batch sizes; 1 = "
            "per-op durable insert (default 1,64)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timed runs per cell; the minimum is reported (default 5)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale sizing for CI (n=20000, 2 repeats)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.batch_size <= 0:
        parser.error(f"--batch-size must be positive, got {args.batch_size}")
    if args.read_batch_size <= 0:
        parser.error(
            f"--read-batch-size must be positive, got {args.read_batch_size}"
        )
    n = 20_000 if args.smoke else args.n
    repeats = 2 if args.smoke else args.repeats
    scale = BenchScale(
        n=n,
        leaf_capacity=args.leaf_capacity,
        seed=args.seed,
        repeats=repeats,
        batch_size=args.batch_size,
        layout=args.layout,
    )
    if args.mode == "reads":
        doc = run_read_regression(
            scale, args.k, args.l, args.batch_size, args.read_batch_size
        )
    elif args.mode == "mixed":
        doc = run_mixed_regression(
            scale, args.k, args.l, args.batch_size, args.read_batch_size
        )
    elif args.mode == "layout":
        doc = run_layout_ab(scale, args.k, args.l)
    elif args.mode == "durability":
        try:
            writers_axis = [int(w) for w in args.writers.split(",") if w]
            batch_sizes = [
                int(b) for b in args.durability_batches.split(",") if b
            ]
        except ValueError:
            parser.error(
                "--writers / --durability-batches must be comma-separated "
                "integers"
            )
        if not writers_axis or any(w <= 0 for w in writers_axis):
            parser.error(f"--writers must be positive, got {args.writers!r}")
        if not batch_sizes or any(b <= 0 for b in batch_sizes):
            parser.error(
                "--durability-batches must be positive, got "
                f"{args.durability_batches!r}"
            )
        doc = run_durability_regression(
            scale, args.k, args.l, writers_axis, batch_sizes
        )
    elif args.mode == "network":
        try:
            writers_axis = [int(w) for w in args.writers.split(",") if w]
        except ValueError:
            parser.error("--writers must be comma-separated integers")
        if not writers_axis or any(w <= 0 for w in writers_axis):
            parser.error(f"--writers must be positive, got {args.writers!r}")
        doc = run_network_regression(
            scale, args.k, args.l, args.batch_size, writers_axis
        )
    else:
        doc = run_regression(scale, args.k, args.l, args.batch_size)
    text = json.dumps(doc, indent=2) + "\n"
    if args.out is not None:
        args.out.write_text(text)
        print(f"wrote {args.out}")
    for row in doc["results"]:
        if args.mode == "durability":
            print(
                f"writers {row['writers']:>2d} batch {row['batch_size']:>4d}"
                f"  always {row['always_ops']:>9.0f} ops/s"
                f"  group {row['group_ops']:>9.0f} ops/s"
                f"  group/always {row['group_over_always']:.2f}x"
                f"  (batch mean {row['group_wal'].get('group_batch_mean', 0)})"
            )
        elif args.mode == "network":
            print(
                f"writers {row['writers']:>2d} window {row['window']:>3d}"
                f"  in-proc {row['inprocess_ops']:>9.0f} ops/s"
                f"  network {row['network_ops']:>9.0f} ops/s"
                f"  net/in-proc {row['network_over_inprocess']:.2f}x"
            )
        elif args.mode == "layout":
            print(
                f"{row['index']:16s}"
                f" gapped {row['gapped_per_key_ops']:>10.0f} ops/s"
                f"  list {row['list_per_key_ops']:>10.0f} ops/s"
                f"  gapped/list {row['gapped_over_list']:.3f}x"
            )
        else:
            print(
                f"{row['index']:16s} per-key {row['per_key_ops']:>10.0f}"
                f" ops/s  batched {row['batched_ops']:>10.0f} ops/s"
                f"  speedup {row['speedup']:.2f}x"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
