"""Machine-readable batched-ingest regression baseline.

Measures per-key ``insert`` vs batched ``insert_many`` throughput for
every index entry point (the four fast-path variants, the classical
B+-tree, SWARE, and the concurrent wrapper) on a BoDS near-sorted stream,
and writes one JSON document suitable for regression tracking::

    python -m repro.bench.regress --out BENCH_PR1.json

The committed ``BENCH_PR1.json`` at the repository root was produced by
exactly that command (default scale: n=100000, K=5%, L=5%, batch 4096).
Use ``--smoke`` for a seconds-scale run in CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from ..concurrency import ConcurrentTree
from ..core import QuITTree
from ..sortedness.bods import generate_keys
from .harness import (
    VARIANTS,
    BenchScale,
    _gc_paused,
    ingest,
    ingest_batched,
    make_tree,
)

#: Indexes measured, in reporting order.  Every name maps to a builder
#: taking a BenchScale.
MATRIX: dict[str, Any] = {
    **{name: None for name in VARIANTS},
    "SWARE": None,
    "concurrent-QuIT": None,
}


def _build(name: str, scale: BenchScale) -> Any:
    if name == "concurrent-QuIT":
        return ConcurrentTree(QuITTree(scale.tree_config))
    return make_tree(name, scale)


def _flush_if_buffered(tree: Any) -> None:
    flush = getattr(tree, "flush", None)
    if flush is not None:
        flush()


def _time_per_key(name: str, scale: BenchScale, keys: list[int]) -> float:
    """Best-of-repeats seconds for a per-key insert loop (+ final flush
    for buffered indexes, inside the timed section)."""
    best = float("inf")
    for _ in range(max(1, scale.repeats)):
        tree = _build(name, scale)
        insert = tree.insert
        with _gc_paused():
            start = time.perf_counter()
            for k in keys:
                insert(k, k)
            _flush_if_buffered(tree)
            best = min(best, time.perf_counter() - start)
    return best


def _time_batched(
    name: str, scale: BenchScale, keys: list[int], batch_size: int
) -> tuple[float, Any]:
    """Best-of-repeats seconds for chunked ``insert_many`` (+ final flush
    inside the timed section).  Returns ``(seconds, last_tree)``."""
    items = [(k, k) for k in keys]
    best = float("inf")
    tree = None
    for _ in range(max(1, scale.repeats)):
        tree = _build(name, scale)
        insert_many = tree.insert_many
        with _gc_paused():
            start = time.perf_counter()
            for lo in range(0, len(items), batch_size):
                insert_many(items[lo : lo + batch_size])
            _flush_if_buffered(tree)
            best = min(best, time.perf_counter() - start)
    return best, tree


def _batch_stats(tree: Any) -> dict[str, int]:
    """Batch-path counters from whichever stats object the index exposes."""
    stats = getattr(tree, "stats", None)
    if stats is None and hasattr(tree, "tree"):
        stats = tree.tree.stats
    if stats is None:
        return {}
    return {
        key: getattr(stats, key)
        for key in (
            "batch_inserts",
            "batch_runs",
            "batch_coalesced",
            "batch_segments",
            "batch_fast_segments",
            "batch_chained_segments",
            "index_fallback_scans",
        )
        if hasattr(stats, key)
    }


def run_regression(
    scale: BenchScale,
    k_fraction: float,
    l_fraction: float,
    batch_size: int,
) -> dict[str, Any]:
    """Measure the full matrix and return the JSON-ready document."""
    keys = [
        int(k)
        for k in generate_keys(
            scale.n, k_fraction, l_fraction, seed=scale.seed
        )
    ]
    results = []
    for name in MATRIX:
        per_key_s = _time_per_key(name, scale, keys)
        batched_s, tree = _time_batched(name, scale, keys, batch_size)
        results.append(
            {
                "index": name,
                "per_key_seconds": round(per_key_s, 6),
                "batched_seconds": round(batched_s, 6),
                "per_key_ops": round(scale.n / per_key_s, 1),
                "batched_ops": round(scale.n / batched_s, 1),
                "speedup": round(per_key_s / batched_s, 3),
                "batch_stats": _batch_stats(tree),
            }
        )
    return {
        "meta": {
            "benchmark": "batched sorted-run ingest vs per-key insert",
            "workload": "BoDS near-sorted stream",
            "n": scale.n,
            "k_fraction": k_fraction,
            "l_fraction": l_fraction,
            "batch_size": batch_size,
            "leaf_capacity": scale.leaf_capacity,
            "seed": scale.seed,
            "repeats": scale.repeats,
            "python": platform.python_version(),
            "command": (
                "python -m repro.bench.regress"
                f" --n {scale.n} --k {k_fraction} --l {l_fraction}"
                f" --batch-size {batch_size}"
                f" --leaf-capacity {scale.leaf_capacity}"
                f" --seed {scale.seed} --repeats {scale.repeats}"
            ),
        },
        "results": results,
    }


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for quit-regress."""
    parser = argparse.ArgumentParser(
        prog="quit-regress",
        description=(
            "Batched-ingest regression baseline: per-key insert vs "
            "insert_many across all index entry points."
        ),
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON document here (default: stdout only)",
    )
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument(
        "--k", type=float, default=0.05,
        help="BoDS K: fraction of displaced keys (default 0.05)",
    )
    parser.add_argument(
        "--l", type=float, default=0.05,
        help="BoDS L: max displacement as a fraction of n (default 0.05)",
    )
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--leaf-capacity", type=int, default=64)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timed runs per cell; the minimum is reported (default 5)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale sizing for CI (n=20000, 2 repeats)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.batch_size <= 0:
        parser.error(f"--batch-size must be positive, got {args.batch_size}")
    n = 20_000 if args.smoke else args.n
    repeats = 2 if args.smoke else args.repeats
    scale = BenchScale(
        n=n,
        leaf_capacity=args.leaf_capacity,
        seed=args.seed,
        repeats=repeats,
        batch_size=args.batch_size,
    )
    doc = run_regression(scale, args.k, args.l, args.batch_size)
    text = json.dumps(doc, indent=2) + "\n"
    if args.out is not None:
        args.out.write_text(text)
        print(f"wrote {args.out}")
    for row in doc["results"]:
        print(
            f"{row['index']:16s} per-key {row['per_key_ops']:>10.0f} ops/s"
            f"  batched {row['batched_ops']:>10.0f} ops/s"
            f"  speedup {row['speedup']:.2f}x"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
