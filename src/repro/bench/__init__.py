"""Benchmark harness: regenerates every table and figure of the paper."""

from .experiments import EXPERIMENTS
from .harness import BenchScale, IngestResult, ingest, make_tree, timed_ingest
from .reporting import ExperimentResult, render, render_all

__all__ = [
    "EXPERIMENTS",
    "BenchScale",
    "IngestResult",
    "ingest",
    "make_tree",
    "timed_ingest",
    "ExperimentResult",
    "render",
    "render_all",
]
