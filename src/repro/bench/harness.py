"""Benchmark harness: scale configuration, tree builders, timers.

Every experiment in :mod:`repro.bench.experiments` takes a
:class:`BenchScale`, so the whole evaluation can run at three sizes:

* ``smoke()`` — seconds; used by the pytest-benchmark suite;
* ``default()`` — minutes; the scale the committed EXPERIMENTS.md numbers
  were produced at;
* ``paper()`` — the paper's own N (500M keys, 510-entry leaves); provided
  for completeness, impractical in pure Python.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..core import (
    BPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
)
from ..sware import SABPlusTree

#: Variant registry in the paper's presentation order.
VARIANTS: dict[str, type] = {
    "B+-tree": BPlusTree,
    "tail-B+-tree": TailBPlusTree,
    "lil-B+-tree": LilBPlusTree,
    "pole-B+-tree": PoleBPlusTree,
    "QuIT": QuITTree,
}


@dataclass(frozen=True)
class BenchScale:
    """Workload sizing for one experiment run.

    Attributes:
        n: entries ingested per configuration.
        leaf_capacity: tree leaf capacity (also internal fan-out).
        point_lookups: point lookups per query phase (paper: 1% of n).
        range_lookups: range queries per selectivity (paper: 1000).
        sware_buffer_fraction: SWARE buffer size as a fraction of n
            (paper default: 1%).
        seed: base RNG seed.
        repeats: timed runs per measurement; the minimum is reported
            (single-core environments jitter by 10-20%).
        batch_size: when set, ingestion applies keys in chunks of this
            size through ``insert_many`` instead of one ``insert`` per
            key (the batched sorted-run ingest path).
        layout: leaf storage layout (``"gapped"`` slot arrays, the
            default, or the legacy ``"list"`` baseline).
    """

    n: int = 100_000
    leaf_capacity: int = 64
    point_lookups: int = 1_000
    range_lookups: int = 50
    sware_buffer_fraction: float = 0.01
    seed: int = 42
    repeats: int = 2
    batch_size: Optional[int] = None
    layout: str = "gapped"

    @classmethod
    def smoke(cls) -> "BenchScale":
        """Seconds-scale sizing for CI / pytest-benchmark."""
        return cls(n=20_000, point_lookups=500, range_lookups=20, repeats=1)

    @classmethod
    def default(cls) -> "BenchScale":
        """The scale EXPERIMENTS.md numbers are recorded at."""
        return cls(n=100_000, point_lookups=1_000, range_lookups=50)

    @classmethod
    def paper(cls) -> "BenchScale":
        """The paper's own scale (not practical in pure Python)."""
        return cls(
            n=500_000_000,
            leaf_capacity=510,
            point_lookups=5_000_000,
            range_lookups=1_000,
        )

    def with_n(self, n: int) -> "BenchScale":
        """Copy with a different entry count."""
        return replace(self, n=n)

    @property
    def tree_config(self) -> TreeConfig:
        """The TreeConfig this scale implies."""
        return TreeConfig(
            leaf_capacity=self.leaf_capacity,
            internal_capacity=self.leaf_capacity,
            layout=self.layout,
        )

    @property
    def sware_buffer_capacity(self) -> int:
        """SWARE buffer size in entries (paper default: 1% of n)."""
        return max(64, int(self.n * self.sware_buffer_fraction))


@dataclass
class IngestResult:
    """Outcome of timed ingestion into one index."""

    name: str
    tree: Any
    seconds: float
    n: int

    @property
    def per_op_us(self) -> float:
        """Mean insert latency in microseconds."""
        return self.seconds / self.n * 1e6 if self.n else 0.0

    @property
    def ops_per_sec(self) -> float:
        """Ingestion throughput."""
        return self.n / self.seconds if self.seconds else 0.0


def make_tree(name: str, scale: BenchScale) -> Any:
    """Instantiate the named index at the given scale (includes SWARE)."""
    if name == "SWARE":
        return SABPlusTree(
            scale.tree_config,
            buffer_capacity=scale.sware_buffer_capacity,
        )
    try:
        cls = VARIANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown index {name!r}; expected one of "
            f"{[*VARIANTS, 'SWARE']}"
        ) from None
    return cls(scale.tree_config)


@contextmanager
def _gc_paused() -> Iterator[None]:
    """Disable the cyclic GC across a timed section (a major source of
    run-to-run jitter when millions of nodes are being allocated)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def ingest(
    tree: Any,
    keys: Iterable[int],
    value_of: Optional[Callable[[int], Any]] = None,
) -> float:
    """Insert every key (values default to the key) and return elapsed
    seconds (cyclic GC paused)."""
    insert = tree.insert
    with _gc_paused():
        start = time.perf_counter()
        if value_of is None:
            for k in keys:
                insert(k, k)
        else:
            for k in keys:
                insert(k, value_of(k))
        return time.perf_counter() - start


def ingest_batched(
    tree: Any,
    keys: Iterable[int],
    batch_size: int,
    value_of: Optional[Callable[[int], Any]] = None,
) -> float:
    """Apply keys in ``batch_size`` chunks through ``insert_many`` and
    return elapsed seconds (cyclic GC paused).

    The ``(key, value)`` pairs are materialized *outside* the timed
    section so the measurement captures the ingest path, not tuple
    construction — mirroring :func:`ingest`, whose timed loop receives a
    pre-built key list.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if value_of is None:
        items = [(k, k) for k in keys]
    else:
        items = [(k, value_of(k)) for k in keys]
    insert_many = tree.insert_many
    with _gc_paused():
        start = time.perf_counter()
        for lo in range(0, len(items), batch_size):
            insert_many(items[lo : lo + batch_size])
        return time.perf_counter() - start


def timed_ingest(
    name: str,
    scale: BenchScale,
    keys: Sequence[int] | np.ndarray,
    repeats: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> IngestResult:
    """Build the named index, ingest ``keys``, time it.

    Runs ``repeats`` times (default: ``scale.repeats``) and reports the
    minimum; the returned tree is from the final run.  When
    ``batch_size`` (explicit, or ``scale.batch_size``) is set, ingestion
    goes through :func:`ingest_batched` instead of per-key ``insert``.
    """
    repeats = scale.repeats if repeats is None else repeats
    if batch_size is None:
        batch_size = scale.batch_size
    key_list = [int(k) for k in keys]
    best = float("inf")
    tree = None
    for _ in range(max(1, repeats)):
        tree = make_tree(name, scale)
        if batch_size is None:
            best = min(best, ingest(tree, key_list))
        else:
            best = min(best, ingest_batched(tree, key_list, batch_size))
    if name == "SWARE":
        tree.flush()
    return IngestResult(name=name, tree=tree, seconds=best, n=len(key_list))


def time_point_lookups(
    tree: Any, targets: Sequence[int], repeats: int = 2
) -> float:
    """Best-of-``repeats`` elapsed seconds for the point-lookup batch."""
    get = tree.get
    best = float("inf")
    with _gc_paused():
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for k in targets:
                get(k)
            best = min(best, time.perf_counter() - start)
    return best


def time_point_lookups_batched(
    tree: Any,
    targets: Sequence[int],
    batch_size: int,
    repeats: int = 2,
) -> float:
    """Best-of-``repeats`` elapsed seconds for the same probe set served
    through ``get_many`` in ``batch_size`` chunks (the batched read
    path), mirroring :func:`time_point_lookups`."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    get_many = tree.get_many
    probes = targets if isinstance(targets, list) else [int(k) for k in targets]
    best = float("inf")
    with _gc_paused():
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for lo in range(0, len(probes), batch_size):
                get_many(probes[lo : lo + batch_size])
            best = min(best, time.perf_counter() - start)
    return best


def time_range_queries(
    tree: Any, ranges: Sequence[tuple[int, int]]
) -> float:
    """Elapsed seconds for the full range-query batch."""
    rq = tree.range_query
    with _gc_paused():
        start = time.perf_counter()
        for lo, hi in ranges:
            rq(lo, hi)
        return time.perf_counter() - start
