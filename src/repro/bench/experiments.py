"""One experiment per table and figure of the paper's evaluation (§5).

Each ``exp_*`` function regenerates the rows/series of its figure at a
configurable :class:`~repro.bench.harness.BenchScale` and returns an
:class:`~repro.bench.reporting.ExperimentResult`.  EXPERIMENTS.md records
paper-vs-measured values for every experiment at the default scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.memory import space_reduction
from ..analysis.model import (
    ideal_fast_fraction,
    lil_expected_fast_fraction,
    simulate_lil_fast_fraction,
    tail_expected_fast_fraction,
)
from ..concurrency.model import (
    insert_profile,
    lookup_profile,
    throughput_curve,
)
from ..core import QuITTree, TailBPlusTree
from ..core.ablation import QuITNoResetTree, QuITNoVariableSplitTree
from ..core.metadata import METADATA_FIELDS, metadata_bytes
from ..sortedness.bods import BodsSpec, generate
from ..workloads.generators import alternating_stress_stream
from ..workloads.queries import (
    PAPER_SELECTIVITIES,
    point_lookups,
    range_queries,
)
from ..workloads.stocks import NIFTY_SPEC, SPXUSD_SPEC, instrument_keys
from .fig1b import exp_fig1b
from .harness import (
    BenchScale,
    VARIANTS,
    ingest,
    make_tree,
    time_point_lookups,
    time_range_queries,
    timed_ingest,
)
from .reporting import ExperimentResult

#: K grid (fractions) of Figures 8-10, 14 and Table 2.
MAIN_K_GRID = (0.0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50, 1.0)

#: K grid of Fig. 3 / 5a (extreme-sortedness regime).
FINE_K_GRID = (0.0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.03, 0.05, 0.10)

#: K x L grid of Fig. 11.
KL_GRID = (0.0, 0.01, 0.03, 0.05, 0.25, 0.50)

#: The three sortedness levels of Table 3 / Fig. 13 (§5.2.2).
SORTEDNESS_LEVELS = {
    "fully sorted": (0.0, 1.0),
    "nearly sorted": (0.05, 0.05),
    "less sorted": (0.25, 0.25),
}


def _keys_for(scale: BenchScale, k: float, l: float = 1.0) -> np.ndarray:
    return generate(
        BodsSpec(
            n=scale.n, k_fraction=k, l_fraction=l, seed=scale.seed
        )
    )


def _ingest_all(
    names: Sequence[str], scale: BenchScale, keys: np.ndarray
) -> dict[str, object]:
    return {name: timed_ingest(name, scale, keys) for name in names}


# ----------------------------------------------------------------------
# Headline figure
# ----------------------------------------------------------------------

def exp_fig1a(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 1a: ingestion and lookup latency for tail / SWARE / QuIT at
    three sortedness levels."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig1a",
        title="headline: insert/lookup latency by sortedness",
        columns=[
            "sortedness", "index", "insert_us", "lookup_us",
            "insert_speedup_vs_btree",
        ],
    )
    names = ("B+-tree", "tail-B+-tree", "SWARE", "QuIT")
    for label, (k, l) in SORTEDNESS_LEVELS.items():
        keys = _keys_for(scale, k, l)
        runs = _ingest_all(names, scale, keys)
        targets = point_lookups(keys, scale.point_lookups, seed=scale.seed)
        base_seconds = runs["B+-tree"].seconds
        for name in names:
            run = runs[name]
            lookup_s = time_point_lookups(run.tree, targets)
            result.rows.append({
                "sortedness": label,
                "index": name,
                "insert_us": run.per_op_us,
                "lookup_us": lookup_s / scale.point_lookups * 1e6,
                "insert_speedup_vs_btree": base_seconds / run.seconds,
            })
    return result


# ----------------------------------------------------------------------
# §2-§3 motivation figures
# ----------------------------------------------------------------------

def exp_fig3(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 3: tail-leaf fast-insert fraction collapses with tiny K."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig3",
        title="tail-B+-tree fast-inserts vs out-of-order fraction",
        columns=["k_pct", "fast_pct"],
        notes=[
            "The collapse threshold scales with n/leaf_capacity: the "
            "paper's cliff (K around 0.05-0.1%) appears here at K around "
            f"{5 * scale.leaf_capacity / scale.n * 2 * 100:.2f}% "
            "(same ~5-leaves-of-outliers onset; see EXPERIMENTS.md).",
        ],
    )
    for k in FINE_K_GRID:
        keys = _keys_for(scale, k)
        run = timed_ingest("tail-B+-tree", scale, keys)
        result.rows.append({
            "k_pct": k * 100,
            "fast_pct": run.tree.stats.fast_insert_fraction * 100,
        })
    return result


def exp_fig5a(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 5a: lil vs tail fast-insert fraction at high sortedness."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig5a",
        title="lil vs tail fast-inserts at high sortedness",
        columns=["k_pct", "tail_fast_pct", "lil_fast_pct"],
    )
    for k in FINE_K_GRID[:-2]:
        keys = _keys_for(scale, k)
        tail = timed_ingest("tail-B+-tree", scale, keys)
        lil = timed_ingest("lil-B+-tree", scale, keys)
        result.rows.append({
            "k_pct": k * 100,
            "tail_fast_pct": tail.tree.stats.fast_insert_fraction * 100,
            "lil_fast_pct": lil.tree.stats.fast_insert_fraction * 100,
        })
    return result


def exp_fig5b(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 5b: modeled fast-insert fractions (tail / lil / ideal) over
    the full K range, plus a Monte-Carlo simulation of Eq. 1."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig5b",
        title="expected fast-inserts: tail vs lil (Eq. 1) vs ideal",
        columns=[
            "k_pct", "tail_model_pct", "lil_eq1_pct", "lil_sim_pct",
            "ideal_pct",
        ],
    )
    for k10 in range(0, 101, 10):
        k = k10 / 100
        result.rows.append({
            "k_pct": k * 100,
            "tail_model_pct": 100 * tail_expected_fast_fraction(
                k, scale.n, scale.leaf_capacity
            ),
            "lil_eq1_pct": 100 * lil_expected_fast_fraction(k),
            "lil_sim_pct": 100 * simulate_lil_fast_fraction(
                k, n=50_000, seed=scale.seed
            ),
            "ideal_pct": 100 * ideal_fast_fraction(k),
        })
    return result


# ----------------------------------------------------------------------
# §5.1 core comparisons
# ----------------------------------------------------------------------

def exp_fig8(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 8: ingestion speedup over the classical B+-tree."""
    scale = scale or BenchScale.default()
    names = ("B+-tree", "tail-B+-tree", "lil-B+-tree", "QuIT")
    result = ExperimentResult(
        exp_id="fig8",
        title="ingestion speedup vs classical B+-tree",
        columns=["k_pct", "tail_x", "lil_x", "quit_x"],
    )
    for k in MAIN_K_GRID:
        keys = _keys_for(scale, k)
        runs = _ingest_all(names, scale, keys)
        base = runs["B+-tree"].seconds
        result.rows.append({
            "k_pct": k * 100,
            "tail_x": base / runs["tail-B+-tree"].seconds,
            "lil_x": base / runs["lil-B+-tree"].seconds,
            "quit_x": base / runs["QuIT"].seconds,
        })
    return result


def exp_fig9(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 9: fraction of fast- vs top-inserts per index."""
    scale = scale or BenchScale.default()
    names = ("tail-B+-tree", "lil-B+-tree", "QuIT")
    result = ExperimentResult(
        exp_id="fig9",
        title="fast-insert fraction per index",
        columns=["k_pct", "tail_fast_pct", "lil_fast_pct", "quit_fast_pct"],
    )
    for k in MAIN_K_GRID:
        keys = _keys_for(scale, k)
        runs = _ingest_all(names, scale, keys)
        result.rows.append({
            "k_pct": k * 100,
            "tail_fast_pct":
                runs["tail-B+-tree"].tree.stats.fast_insert_fraction * 100,
            "lil_fast_pct":
                runs["lil-B+-tree"].tree.stats.fast_insert_fraction * 100,
            "quit_fast_pct":
                runs["QuIT"].tree.stats.fast_insert_fraction * 100,
        })
    return result


def exp_fig10a(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 10a: average leaf occupancy, B+-tree vs QuIT."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig10a",
        title="average leaf occupancy",
        columns=["k_pct", "btree_occ_pct", "quit_occ_pct"],
    )
    for k in MAIN_K_GRID:
        keys = _keys_for(scale, k)
        bt = timed_ingest("B+-tree", scale, keys)
        qt = timed_ingest("QuIT", scale, keys)
        result.rows.append({
            "k_pct": k * 100,
            "btree_occ_pct": bt.tree.occupancy().avg_occupancy * 100,
            "quit_occ_pct": qt.tree.occupancy().avg_occupancy * 100,
        })
    return result


def exp_fig10b(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 10b: point-lookup latency of QuIT normalized to B+-tree."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig10b",
        title="normalized point-lookup latency (QuIT / B+-tree)",
        columns=["k_pct", "btree_us", "quit_us", "normalized"],
    )
    for k in MAIN_K_GRID:
        keys = _keys_for(scale, k)
        bt = timed_ingest("B+-tree", scale, keys)
        qt = timed_ingest("QuIT", scale, keys)
        targets = point_lookups(keys, scale.point_lookups, seed=scale.seed)
        bt_s = time_point_lookups(bt.tree, targets)
        qt_s = time_point_lookups(qt.tree, targets)
        result.rows.append({
            "k_pct": k * 100,
            "btree_us": bt_s / scale.point_lookups * 1e6,
            "quit_us": qt_s / scale.point_lookups * 1e6,
            "normalized": qt_s / bt_s,
        })
    return result


def exp_fig10c(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 10c: x-fewer leaf accesses in range queries (B+-tree / QuIT)."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig10c",
        title="range queries: leaf-access reduction of QuIT",
        columns=["k_pct"] + [
            f"sel_{sel*100:g}pct_x" for sel in PAPER_SELECTIVITIES
        ],
    )
    for k in MAIN_K_GRID:
        keys = _keys_for(scale, k)
        bt = timed_ingest("B+-tree", scale, keys)
        qt = timed_ingest("QuIT", scale, keys)
        row = {"k_pct": k * 100}
        for i, sel in enumerate(PAPER_SELECTIVITIES):
            ranges = range_queries(
                0, scale.n, sel, scale.range_lookups, seed=scale.seed + i
            )
            for run in (bt, qt):
                run.tree.stats.leaf_accesses = 0
                time_range_queries(run.tree, ranges)
            row[f"sel_{sel*100:g}pct_x"] = (
                bt.tree.stats.leaf_accesses
                / max(1, qt.tree.stats.leaf_accesses)
            )
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# §5.2 sensitivity
# ----------------------------------------------------------------------

def exp_fig11(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 11: K x L heatmaps of fast-inserts and leaf occupancy for
    lil-B+-tree and QuIT."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig11",
        title="K x L sensitivity: fast-inserts and occupancy (lil, QuIT)",
        columns=[
            "k_pct", "l_pct", "lil_fast_pct", "quit_fast_pct",
            "lil_occ_pct", "quit_occ_pct",
        ],
    )
    for l in KL_GRID[1:]:  # L=0 is meaningless when K>0
        for k in KL_GRID:
            keys = _keys_for(scale, k, l)
            lil = timed_ingest("lil-B+-tree", scale, keys)
            qt = timed_ingest("QuIT", scale, keys)
            result.rows.append({
                "k_pct": k * 100,
                "l_pct": l * 100,
                "lil_fast_pct":
                    lil.tree.stats.fast_insert_fraction * 100,
                "quit_fast_pct":
                    qt.tree.stats.fast_insert_fraction * 100,
                "lil_occ_pct":
                    lil.tree.occupancy().avg_occupancy * 100,
                "quit_occ_pct":
                    qt.tree.occupancy().avg_occupancy * 100,
            })
    return result


def exp_tab3(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Table 3: scalability with data size (speedup and fast-inserts)."""
    scale = scale or BenchScale.default()
    sizes = [
        max(1000, scale.n // 8), scale.n // 4, scale.n // 2, scale.n,
        scale.n * 2,
    ]
    result = ExperimentResult(
        exp_id="tab3",
        title="QuIT scaling with data size",
        columns=["sortedness", "n", "speedup_x", "fast_pct"],
    )
    for label, (k, l) in SORTEDNESS_LEVELS.items():
        for n in sizes:
            sub = scale.with_n(n)
            keys = _keys_for(sub, k, l)
            bt = timed_ingest("B+-tree", sub, keys)
            qt = timed_ingest("QuIT", sub, keys)
            result.rows.append({
                "sortedness": label,
                "n": n,
                "speedup_x": bt.seconds / qt.seconds,
                "fast_pct": qt.tree.stats.fast_insert_fraction * 100,
            })
    return result


def exp_fig12(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 12: stress test with alternating near-sorted / scrambled
    segments; cumulative fast-inserts per index at segment boundaries."""
    scale = scale or BenchScale.default()
    n_segments = 5
    keys = alternating_stress_stream(
        n_total=scale.n, n_segments=n_segments, near_k=0.10,
        scrambled_k=1.0, seed=scale.seed,
    )
    names = ("tail-B+-tree", "lil-B+-tree", "pole-B+-tree", "QuIT")
    trees = {name: make_tree(name, scale) for name in names}
    result = ExperimentResult(
        exp_id="fig12",
        title="stress test: cumulative fast-inserts per segment",
        columns=["segment", "segment_kind", "inserted"] + [
            f"{n}_fast" for n in names
        ],
    )
    per = len(keys) // n_segments
    for seg in range(n_segments):
        chunk = keys[seg * per: (seg + 1) * per if seg < n_segments - 1
                     else len(keys)]
        for tree in trees.values():
            for k in chunk:
                tree.insert(int(k), int(k))
        row = {
            "segment": seg + 1,
            "segment_kind": "near-sorted" if seg % 2 == 0 else "scrambled",
            "inserted": (seg + 1) * per if seg < n_segments - 1
                        else len(keys),
        }
        for name, tree in trees.items():
            row[f"{name}_fast"] = tree.stats.fast_inserts
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# §5.3 concurrency
# ----------------------------------------------------------------------

def exp_fig13(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 13: modeled concurrent throughput for inserts and lookups.

    Single-thread service times are measured from the real trees; the
    contention model extrapolates to 1-16 threads (DESIGN.md
    substitution 4: CPython threads cannot scale on CPU-bound work).
    """
    scale = scale or BenchScale.default()
    threads = (1, 2, 4, 8, 16)
    result = ExperimentResult(
        exp_id="fig13",
        title="modeled concurrent throughput (ops/sec)",
        columns=["workload", "sortedness", "index"] + [
            f"t{t}" for t in threads
        ],
    )
    for label, (k, l) in SORTEDNESS_LEVELS.items():
        keys = _keys_for(scale, k, l)
        for name in ("B+-tree", "QuIT"):
            run = timed_ingest(name, scale, keys)
            fast_frac = run.tree.stats.fast_insert_fraction
            profile = insert_profile(
                run.seconds / scale.n, fast_frac
            )
            curve = throughput_curve(profile, threads)
            result.rows.append({
                "workload": "inserts", "sortedness": label, "index": name,
                **{f"t{t}": curve[t] for t in threads},
            })
            targets = point_lookups(
                keys, scale.point_lookups, seed=scale.seed
            )
            lookup_s = time_point_lookups(run.tree, targets)
            lcurve = throughput_curve(
                lookup_profile(lookup_s / scale.point_lookups), threads
            )
            result.rows.append({
                "workload": "lookups", "sortedness": label, "index": name,
                **{f"t{t}": lcurve[t] for t in threads},
            })
    return result


# ----------------------------------------------------------------------
# §5.4 SWARE comparison
# ----------------------------------------------------------------------

def exp_fig14(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 14: SWARE vs QuIT insert and point-lookup latency."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig14",
        title="SWARE vs QuIT: insert / lookup latency",
        columns=[
            "k_pct", "sware_insert_us", "quit_insert_us",
            "sware_lookup_us", "quit_lookup_us",
        ],
    )
    for k in MAIN_K_GRID:
        keys = _keys_for(scale, k)
        key_list = [int(x) for x in keys]
        # Ingest SWARE without a final flush so the query phase sees the
        # buffer in its steady, partially-full state (the paper queries
        # right after ingestion).
        sw_tree = make_tree("SWARE", scale)
        sw_seconds = ingest(sw_tree, key_list)
        qt = timed_ingest("QuIT", scale, keys)
        targets = point_lookups(keys, scale.point_lookups, seed=scale.seed)
        sw_s = time_point_lookups(sw_tree, targets)
        qt_s = time_point_lookups(qt.tree, targets)
        result.rows.append({
            "k_pct": k * 100,
            "sware_insert_us": sw_seconds / scale.n * 1e6,
            "quit_insert_us": qt.per_op_us,
            "sware_lookup_us": sw_s / scale.point_lookups * 1e6,
            "quit_lookup_us": qt_s / scale.point_lookups * 1e6,
        })
    return result


# ----------------------------------------------------------------------
# §5.5 real-world data
# ----------------------------------------------------------------------

def exp_fig15(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 15: ingestion speedup on (synthetic) stock-price data."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="fig15",
        title="real-world-style data: ingestion speedup vs B+-tree",
        columns=["instrument", "index", "speedup_x", "fast_pct"],
        notes=[
            "NIFTY/SPXUSD are synthetic stand-ins calibrated per "
            "DESIGN.md substitution 3 (no network access to the "
            "original intra-day datasets).",
        ],
    )
    names = ("tail-B+-tree", "SWARE", "lil-B+-tree", "QuIT")
    for spec in (NIFTY_SPEC, SPXUSD_SPEC):
        sized = spec if scale.n >= spec.n else _scaled_spec(spec, scale.n)
        keys = instrument_keys(sized)
        base = timed_ingest("B+-tree", scale, keys)
        for name in names:
            run = timed_ingest(name, scale, keys)
            stats = run.tree.stats
            result.rows.append({
                "instrument": spec.name,
                "index": name,
                "speedup_x": base.seconds / run.seconds,
                "fast_pct": stats.fast_insert_fraction * 100
                            if name != "SWARE" else float("nan"),
            })
    return result


def _scaled_spec(spec, n: int):
    from dataclasses import replace

    return replace(spec, n=n)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def exp_tab1(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Table 1: metadata fields per index and the byte totals."""
    result = ExperimentResult(
        exp_id="tab1",
        title="metadata digest per index",
        columns=["index", "fields", "bytes", "extra_vs_lil_bytes"],
    )
    lil_bytes = metadata_bytes("lil-B+-tree")
    for name, fields in METADATA_FIELDS.items():
        total = metadata_bytes(name)
        result.rows.append({
            "index": name,
            "fields": len(fields),
            "bytes": total,
            "extra_vs_lil_bytes": total - lil_bytes,
        })
    result.notes.append(
        "QuIT adds < 20 bytes of metadata over the lil fast path "
        "(paper: 'less than 20 bytes of additional metadata')."
    )
    return result


def exp_tab2(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Table 2: space reduction of QuIT over the B+-tree baselines."""
    scale = scale or BenchScale.default()
    result = ExperimentResult(
        exp_id="tab2",
        title="space reduction of QuIT over B+-tree",
        columns=["k_pct", "reduction_x"],
    )
    for k in MAIN_K_GRID:
        keys = _keys_for(scale, k)
        bt = timed_ingest("B+-tree", scale, keys)
        qt = timed_ingest("QuIT", scale, keys)
        result.rows.append({
            "k_pct": k * 100,
            "reduction_x": space_reduction(bt.tree, qt.tree),
        })
    return result


def exp_betree(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Related-work baseline (§6): the Bε-tree is write-optimized but
    sortedness-UNAWARE.

    Ingests the K grid into a Bε-tree, the classical B+-tree, and QuIT.
    The paper's §6 argument appears as a flat Bε-tree speedup curve
    (its amortization helps equally at every K) against QuIT's
    sortedness-proportional curve.
    """
    import time as _time

    from ..betree import BeTree, BeTreeConfig

    scale = scale or BenchScale.default()
    be_config = BeTreeConfig(
        leaf_capacity=scale.leaf_capacity,
        fanout=max(4, scale.leaf_capacity // 8),
        buffer_capacity=scale.leaf_capacity * 4,
    )
    result = ExperimentResult(
        exp_id="betree",
        title="Be-tree baseline: amortized but sortedness-unaware (§6)",
        columns=["k_pct", "betree_x", "quit_x", "betree_moves_per_insert"],
        notes=[
            "betree_moves_per_insert = buffered message hops per insert; "
            "it is ~flat across K (the amortization is oblivious to "
            "sortedness), unlike QuIT's sortedness-proportional "
            "fast-insert fraction.",
        ],
    )
    for k in (0.0, 0.05, 0.25, 1.0):
        keys = [int(x) for x in _keys_for(scale, k)]
        base = timed_ingest("B+-tree", scale, keys)
        qt = timed_ingest("QuIT", scale, keys)
        best = float("inf")
        be = None
        for _ in range(max(1, scale.repeats)):
            be = BeTree(be_config)
            start = _time.perf_counter()
            for key in keys:
                be.insert(key, key)
            best = min(best, _time.perf_counter() - start)
        result.rows.append({
            "k_pct": k * 100,
            "betree_x": base.seconds / best,
            "quit_x": base.seconds / qt.seconds,
            "betree_moves_per_insert": (
                be.stats.messages_moved
                / max(1, be.stats.messages_enqueued)
            ),
        })
    return result


def exp_fig13_real(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 13 companion: *measured* multi-threaded throughput.

    Runs the actual :class:`~repro.concurrency.ConcurrentTree` wrapper
    with real threads.  Under CPython's GIL the curves are flat-to-
    declining for CPU-bound work — committed here precisely to document
    why Fig. 13's scaling shape comes from the contention model
    (DESIGN.md substitution 4) while correctness comes from these real
    threads.
    """
    import threading
    import time as _time

    from ..concurrency import ConcurrentTree

    scale = scale or BenchScale.default()
    n = max(4_000, scale.n // 4)
    keys = [int(k) for k in _keys_for(scale.with_n(n), 0.05)]
    result = ExperimentResult(
        exp_id="fig13real",
        title="measured threaded throughput (GIL-bound; see fig13)",
        columns=["index", "threads", "kops_per_sec"],
        notes=[
            "CPython threads cannot scale CPU-bound work; the modeled "
            "fig13 curves carry the paper's scaling claim.",
        ],
    )
    for name in ("B+-tree", "QuIT"):
        for n_threads in (1, 2, 4):
            ct = ConcurrentTree(make_tree(name, scale))

            def worker(slice_no: int) -> None:
                for k in keys[slice_no::n_threads]:
                    ct.insert(k, k)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            start = _time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = _time.perf_counter() - start
            result.rows.append({
                "index": name,
                "threads": n_threads,
                "kops_per_sec": n / elapsed / 1000,
            })
    return result


def exp_cache(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Cache-residency mechanism behind Fig. 10b.

    The paper attributes QuIT's slight point-lookup edge to its smaller
    tree fitting the cache better.  This experiment replays an identical
    lookup workload over both trees through an LRU page cache of the
    same *absolute* size (sized as fractions of the B+-tree's node
    count) and reports hit rates and simulated I/O.
    """
    from ..analysis.cache import simulate_lookup_cache

    scale = scale or BenchScale.default()
    keys = _keys_for(scale, 0.0)
    bt = timed_ingest("B+-tree", scale, keys)
    qt = timed_ingest("QuIT", scale, keys)
    targets = point_lookups(
        keys, scale.point_lookups, seed=scale.seed
    ).tolist()
    btree_nodes = bt.tree.occupancy().node_count
    result = ExperimentResult(
        exp_id="cache",
        title="LRU cache residency at equal absolute cache size (K=0)",
        columns=[
            "cache_pct_of_btree", "index", "nodes", "hit_rate_pct",
            "simulated_io",
        ],
        notes=[
            "Mechanism check for Fig. 10b: at every cache size the "
            "smaller QuIT tree performs less simulated I/O.  Compare "
            "simulated_io, not hit rate — a taller tree re-touches its "
            "always-hot upper levels more per lookup, inflating its "
            "rate.",
        ],
    )
    for frac in (0.1, 0.25, 0.5, 0.75):
        pages = max(1, int(btree_nodes * frac))
        for run in (bt, qt):
            report = simulate_lookup_cache(
                run.tree, targets, cache_pages=pages
            )
            result.rows.append({
                "cache_pct_of_btree": frac * 100,
                "index": run.name,
                "nodes": run.tree.occupancy().node_count,
                "hit_rate_pct": report.hit_rate * 100,
                "simulated_io": report.misses,
            })
    return result


def exp_mixed_rw(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Read/write mix sensitivity (the §2 argument against SWARE).

    Interleaves near-sorted inserts with point lookups on already-ingested
    keys at varying read fractions and reports throughput per index.  The
    paper argues SWARE's buffer probe makes its read penalty "prohibitive
    as the fraction of reads in the workload increases" — here that
    appears as SWARE's relative throughput decaying with the read share
    while QuIT's does not.
    """
    import time as _time

    scale = scale or BenchScale.default()
    keys = _keys_for(scale, 0.05)
    key_list = [int(k) for k in keys]
    result = ExperimentResult(
        exp_id="mixed_rw",
        title="read/write mix: throughput by read fraction (K=5%)",
        columns=["read_pct", "index", "kops_per_sec", "vs_btree_x"],
    )
    import itertools

    rng_targets = point_lookups(keys, scale.n, seed=scale.seed).tolist()
    for read_pct in (0, 25, 50, 75, 90):
        reads_per_insert = (
            read_pct / (100 - read_pct) if read_pct < 100 else 0.0
        )
        rates: dict[str, float] = {}
        for name in ("B+-tree", "SWARE", "QuIT"):
            tree = make_tree(name, scale)
            # Pre-load half the stream so early lookups hit real data.
            warm = key_list[: scale.n // 2]
            for k in warm:
                tree.insert(k, k)
            live = key_list[scale.n // 2:]
            ops = 0
            target_iter = itertools.cycle(rng_targets)
            acc = 0.0
            get = tree.get
            insert = tree.insert
            start = _time.perf_counter()
            for k in live:
                insert(k, k)
                ops += 1
                acc += reads_per_insert
                while acc >= 1.0:
                    get(next(target_iter))
                    ops += 1
                    acc -= 1.0
            elapsed = _time.perf_counter() - start
            rates[name] = ops / elapsed if elapsed else 0.0
        for name, rate in rates.items():
            result.rows.append({
                "read_pct": read_pct,
                "index": name,
                "kops_per_sec": rate / 1000,
                "vs_btree_x": rate / rates["B+-tree"],
            })
    return result


# ----------------------------------------------------------------------
# Ablation (beyond the paper's own figures)
# ----------------------------------------------------------------------

def exp_ablation_quit_features(
    scale: Optional[BenchScale] = None,
) -> ExperimentResult:
    """Ablation: toggle QuIT's variable-split and reset strategies.

    Runs the full QuIT, QuIT-no-reset, QuIT-50%-split, and the bare
    pole-B+-tree on a near-sorted stream and on the Fig. 12 stress
    stream.
    """
    scale = scale or BenchScale.default()
    contenders = {
        "QuIT": QuITTree,
        "QuIT-no-reset": QuITNoResetTree,
        "QuIT-50%-split": QuITNoVariableSplitTree,
        "pole-B+-tree": VARIANTS["pole-B+-tree"],
        "tail-B+-tree": TailBPlusTree,
    }
    result = ExperimentResult(
        exp_id="ablation",
        title="QuIT feature ablation (fast-inserts / occupancy)",
        columns=["workload", "index", "fast_pct", "occ_pct"],
    )
    workloads = {
        "near-sorted (K=5%)": _keys_for(scale, 0.05),
        "less-sorted (K=25%)": _keys_for(scale, 0.25),
        "stress (Fig.12)": alternating_stress_stream(
            n_total=scale.n, seed=scale.seed
        ),
    }
    for wname, keys in workloads.items():
        for cname, cls in contenders.items():
            tree = cls(scale.tree_config)
            for k in keys:
                tree.insert(int(k), int(k))
            result.rows.append({
                "workload": wname,
                "index": cname,
                "fast_pct": tree.stats.fast_insert_fraction * 100,
                "occ_pct": tree.occupancy().avg_occupancy * 100,
            })
    return result


#: Registry used by the CLI and the benchmark suite.
EXPERIMENTS = {
    "fig1a": exp_fig1a,
    "fig1b": exp_fig1b,
    "fig3": exp_fig3,
    "fig5a": exp_fig5a,
    "fig5b": exp_fig5b,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "fig10a": exp_fig10a,
    "fig10b": exp_fig10b,
    "fig10c": exp_fig10c,
    "fig11": exp_fig11,
    "fig12": exp_fig12,
    "fig13": exp_fig13,
    "fig14": exp_fig14,
    "fig15": exp_fig15,
    "tab1": exp_tab1,
    "tab2": exp_tab2,
    "tab3": exp_tab3,
    "ablation": exp_ablation_quit_features,
    "mixed_rw": exp_mixed_rw,
    "cache": exp_cache,
    "fig13real": exp_fig13_real,
    "betree": exp_betree,
}
