"""Plain-text rendering of experiment results.

Every experiment returns an :class:`ExperimentResult`; ``render`` produces
the aligned table the harness prints (the textual analogue of the paper's
figure panels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """Output of one experiment (one paper table or figure).

    Attributes:
        exp_id: identifier used in DESIGN.md's per-experiment index
            (e.g. ``fig8``).
        title: human-readable experiment title.
        columns: column names, in print order.
        rows: one dict per output row.
        notes: free-form observations (paper-vs-measured commentary).
    """

    exp_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key_value: Any) -> dict[str, Any]:
        """First row whose ``key_column`` equals ``key_value``."""
        for row in self.rows:
            if row.get(key_column) == key_value:
                return row
        raise KeyError(f"no row with {key_column}={key_value!r}")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render a result as an aligned plain-text table with title/notes."""
    header = f"== {result.exp_id}: {result.title} =="
    if not result.rows:
        return header + "\n(no rows)"
    cols = result.columns
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in result.rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)
    ]
    lines = [header]
    lines.append("  ".join(c.rjust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_all(results: Sequence[ExperimentResult]) -> str:
    """Render several results separated by blank lines."""
    return "\n\n".join(render(r) for r in results)


def render_chart(
    result: ExperimentResult,
    x: str,
    ys: Sequence[str],
    width: int = 60,
    height: int = 16,
) -> str:
    """Render one or more numeric columns as an ASCII line chart.

    ``x`` values label the horizontal axis positions (equally spaced in
    row order, which matches the paper's categorical x-axes); each ``ys``
    column becomes a series drawn with its own glyph.
    """
    if not result.rows:
        return "(no rows)"
    glyphs = "*o+x#@%&"
    series = {
        col: [float(row[col]) for row in result.rows]
        for col in ys
    }
    all_values = [v for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    n = len(result.rows)
    grid = [[" "] * width for _ in range(height)]
    for si, (col, values) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for i, value in enumerate(values):
            cx = round(i * (width - 1) / max(1, n - 1))
            cy = height - 1 - round(
                (value - lo) / (hi - lo) * (height - 1)
            )
            grid[cy][cx] = glyph
    lines = [f"{result.exp_id}: {', '.join(ys)} vs {x}"]
    lines.append(f"{hi:>10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:>10.3g} +" + "".join(grid[-1]))
    x_labels = [str(row.get(x)) for row in result.rows]
    lines.append(
        " " * 12 + x_labels[0] + " ... " + x_labels[-1] + f"   [{x}]"
    )
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={col}" for i, col in enumerate(ys)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def to_json_dict(result: ExperimentResult) -> dict:
    """Serialize a result to a JSON-compatible dict."""
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [dict(r) for r in result.rows],
        "notes": list(result.notes),
    }


def from_json_dict(data: dict) -> ExperimentResult:
    """Rebuild a result from :func:`to_json_dict` output."""
    return ExperimentResult(
        exp_id=data["exp_id"],
        title=data["title"],
        columns=list(data["columns"]),
        rows=[dict(r) for r in data["rows"]],
        notes=list(data.get("notes", [])),
    )
