"""Fig. 1b — the qualitative comparison, quantified.

The paper's Fig. 1b radar compares tail / SWARE / QuIT along five axes:
sortedness-awareness, read cost, design complexity, memory utilization,
and tuning complexity.  This module computes measurable proxies for each
axis so the comparison is reproducible rather than anecdotal:

* sortedness-awareness — fast-path utilization on a near-sorted stream
  (SWARE's analogue: fraction of entries placed through bulk-load
  segments longer than one);
* read cost — point-lookup latency normalized to the classical B+-tree;
* design complexity — source lines implementing the index beyond the
  shared B+-tree substrate (measured from the actual modules);
* memory utilization — bytes per entry normalized to the classical
  B+-tree (lower is better);
* tuning complexity — number of performance-relevant knobs a deployer
  must size.
"""

from __future__ import annotations

import inspect
from typing import Optional

from .. import sware
from ..core import lil_tree, pole_tree, quit_tree, tail_tree
from ..core import fastpath, ikr, metadata
from ..workloads.queries import point_lookups
from .harness import BenchScale, time_point_lookups, timed_ingest
from .reporting import ExperimentResult
from ..sortedness.bods import BodsSpec, generate

#: Modules whose source constitutes each design's extra complexity.
_COMPLEXITY_MODULES = {
    "tail-B+-tree": (fastpath, tail_tree),
    "SWARE": (sware.bloom, sware.zonemap, sware.buffer, sware.sa_btree,
              sware.search),
    "QuIT": (fastpath, ikr, metadata, pole_tree, quit_tree),
    "lil-B+-tree": (fastpath, lil_tree),
}

#: Performance-relevant knobs per design (beyond the node capacities
#: every B+-tree shares).  SWARE: buffer size, page size, Bloom FP rate,
#: flush fill factor.  QuIT: none that require workload-specific sizing —
#: the IKR scale and reset threshold have analytically derived defaults.
_TUNING_KNOBS = {
    "tail-B+-tree": 0,
    "lil-B+-tree": 0,
    "QuIT": 0,
    "SWARE": 4,
}


def _loc(modules) -> int:
    return sum(
        len(inspect.getsource(m).splitlines()) for m in modules
    )


def exp_fig1b(scale: Optional[BenchScale] = None) -> ExperimentResult:
    """Fig. 1b: quantified comparison along the paper's five axes."""
    scale = scale or BenchScale.default()
    keys = generate(
        BodsSpec(n=scale.n, k_fraction=0.05, l_fraction=1.0,
                 seed=scale.seed)
    )
    targets = point_lookups(keys, scale.point_lookups, seed=scale.seed)
    base = timed_ingest("B+-tree", scale, keys)
    base_lookup = time_point_lookups(base.tree, targets)
    base_bytes_per_entry = base.tree.memory_bytes() / len(base.tree)

    result = ExperimentResult(
        exp_id="fig1b",
        title="qualitative comparison, quantified (near-sorted stream)",
        columns=[
            "index", "sortedness_awareness_pct", "read_cost_norm",
            "complexity_loc", "bytes_per_entry_norm", "tuning_knobs",
        ],
        notes=[
            "read_cost_norm and bytes_per_entry_norm are relative to the "
            "classical B+-tree (1.0); complexity_loc counts the source "
            "lines implementing the design on top of the shared tree.",
        ],
    )
    for name in ("tail-B+-tree", "SWARE", "lil-B+-tree", "QuIT"):
        run = timed_ingest(name, scale, keys)
        lookup = time_point_lookups(run.tree, targets)
        if name == "SWARE":
            fs = run.tree.flush_stats
            awareness = (
                (fs.bulk_loaded - fs.segments) / max(1, fs.bulk_loaded)
            ) * 100
            entries = len(run.tree)
        else:
            awareness = run.tree.stats.fast_insert_fraction * 100
            entries = len(run.tree)
        result.rows.append({
            "index": name,
            "sortedness_awareness_pct": awareness,
            "read_cost_norm": lookup / base_lookup,
            "complexity_loc": _loc(_COMPLEXITY_MODULES[name]),
            "bytes_per_entry_norm": (
                run.tree.memory_bytes() / entries / base_bytes_per_entry
            ),
            "tuning_knobs": _TUNING_KNOBS[name],
        })
    return result
