"""``quit-workload`` — BoDS-style workload generation and measurement.

Mirrors the Benchmark-on-Data-Sortedness tool the paper uses (§5): it
generates key streams with requested K-L sortedness to a file and
measures the K-L sortedness (plus the survey metrics of §2) of existing
streams.

Examples::

    quit-workload generate out.txt --n 1000000 --k 0.05 --l 1.0
    quit-workload measure out.txt
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..sortedness.bods import BodsSpec, generate
from ..sortedness.metrics import (
    dis_measure,
    inversion_count,
    kl_sortedness,
    out_of_order_count,
    runs_count,
)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for quit-workload."""
    parser = argparse.ArgumentParser(
        prog="quit-workload",
        description="Generate and measure K-L-sorted key streams (BoDS).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="write a BoDS stream to a file (one key/line)"
    )
    gen.add_argument("path", type=Path, help="output file")
    gen.add_argument("--n", type=int, default=1_000_000,
                     help="number of entries")
    gen.add_argument("--k", type=float, default=0.0,
                     help="out-of-order fraction in [0, 1]")
    gen.add_argument("--l", type=float, default=1.0,
                     help="max displacement fraction in [0, 1]")
    gen.add_argument("--alpha", type=float, default=1.0,
                     help="Beta-distribution alpha for positions")
    gen.add_argument("--beta", type=float, default=1.0,
                     help="Beta-distribution beta for positions")
    gen.add_argument("--seed", type=int, default=42)

    meas = sub.add_parser(
        "measure", help="measure the sortedness of a key stream file"
    )
    meas.add_argument("path", type=Path, help="input file (one key/line)")
    meas.add_argument(
        "--full", action="store_true",
        help="also compute O(n log n)+ survey metrics (inversions, Dis)",
    )
    return parser


def _generate(args: argparse.Namespace) -> int:
    try:
        spec = BodsSpec(
            n=args.n, k_fraction=args.k, l_fraction=args.l,
            alpha=args.alpha, beta=args.beta, seed=args.seed,
        )
    except ValueError as exc:
        print(f"invalid workload spec: {exc}", file=sys.stderr)
        return 2
    keys = generate(spec)
    np.savetxt(args.path, keys, fmt="%d")
    print(f"wrote {len(keys):,} keys to {args.path} "
          f"(K={args.k:.2%}, L={args.l:.2%}, seed={args.seed})")
    return 0


def _measure(args: argparse.Namespace) -> int:
    if not args.path.exists():
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    keys = np.loadtxt(args.path, dtype=np.int64, ndmin=1).tolist()
    if not keys:
        print("empty stream", file=sys.stderr)
        return 2
    m = kl_sortedness(keys)
    print(f"entries:               {m.n:,}")
    print(f"K (min removals):      {m.k:,}  ({m.k_fraction:.2%})")
    print(f"L (max displacement):  {m.l:,}  ({m.l_fraction:.2%})")
    print(f"predecessor breaks:    {out_of_order_count(keys):,}")
    print(f"ascending runs:        {runs_count(keys):,}")
    if args.full:
        print(f"inversions:            {inversion_count(keys):,}")
        print(f"Dis (max inv. span):   {dis_measure(keys):,}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _generate(args)
    return _measure(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
