"""Workload builders: ingestion streams, query sets, and the synthetic
stock-price substitutes for the paper's real-world datasets."""

from .generators import (
    SegmentSpec,
    alternating_stress_stream,
    scrambled_stream,
    segmented_stream,
    sorted_stream,
)
from .queries import (
    PAPER_SELECTIVITIES,
    mixed_selectivity_ranges,
    negative_lookups,
    point_lookups,
    range_queries,
)
from .stocks import (
    NIFTY_SPEC,
    SPXUSD_SPEC,
    InstrumentSpec,
    closing_prices,
    instrument_keys,
    to_index_keys,
)

__all__ = [
    "SegmentSpec",
    "segmented_stream",
    "alternating_stress_stream",
    "sorted_stream",
    "scrambled_stream",
    "PAPER_SELECTIVITIES",
    "point_lookups",
    "negative_lookups",
    "range_queries",
    "mixed_selectivity_ranges",
    "InstrumentSpec",
    "NIFTY_SPEC",
    "SPXUSD_SPEC",
    "closing_prices",
    "instrument_keys",
    "to_index_keys",
]
