"""Synthetic stock-price workloads (substitute for §5.5's NIFTY/SPXUSD
intra-day datasets — see DESIGN.md, substitution 3).

The paper indexes the ``closing_price`` column of one-minute bars for two
instruments whose long upward trend makes the stream near-sorted with
unknown K-L.  Without network access to the original CSVs, we synthesize
minute-bar series with the same macro structure: geometric drift,
mean-reverting (Ornstein-Uhlenbeck) noise, and occasional jumps, then
quantize to integer keys.

Prices repeat, but the reproduction's trees store unique keys, so
:func:`to_index_keys` composes ``(price_tick, arrival_seq)`` into a single
integer that preserves the price ordering while disambiguating duplicates
— the standard composite-key trick for secondary indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Shift used when composing (price, sequence) into one integer key.
SEQ_BITS = 24


@dataclass(frozen=True)
class InstrumentSpec:
    """Parameters of a synthetic intra-day instrument.

    Attributes:
        name: instrument label.
        n: number of one-minute bars.
        start_price: opening price of the series.
        total_drift: multiplicative growth over the whole series (e.g.
            3.0 = the price roughly triples).
        volatility: per-step OU noise scale, as a fraction of price.
        reversion: OU mean-reversion strength in (0, 1].
        jump_prob: per-step probability of a jump.
        jump_scale: jump magnitude as a fraction of price.
        tick: price quantum (e.g. 0.05 for NIFTY).
        seed: RNG seed.
    """

    name: str
    n: int = 200_000
    start_price: float = 6000.0
    total_drift: float = 3.0
    volatility: float = 0.0008
    reversion: float = 0.02
    jump_prob: float = 0.0005
    jump_scale: float = 0.01
    tick: float = 0.05
    seed: int = 42


#: Calibrated stand-ins for the paper's two instruments: NIFTY (India's
#: equity benchmark, ~1.4M minute bars, strong multi-year growth) and
#: SPXUSD (S&P 500, ~2.2M bars, steadier climb).  ``n`` is scaled down
#: with the rest of the reproduction; ratios match the originals.
#: The per-step noise is calibrated so that the ratio of local price
#: oscillation to the (scaled-down) leaf key span matches what the
#: paper's 510-entry leaves see on real minute bars — see DESIGN.md
#: substitution 3 and EXPERIMENTS.md (fig15).
NIFTY_SPEC = InstrumentSpec(
    name="NIFTY", n=140_000, start_price=6000.0, total_drift=3.3,
    volatility=5e-6, reversion=0.02, jump_prob=0.0015, jump_scale=0.02,
    tick=0.05, seed=1401,
)
SPXUSD_SPEC = InstrumentSpec(
    name="SPXUSD", n=220_000, start_price=900.0, total_drift=3.0,
    volatility=3e-6, reversion=0.01, jump_prob=0.002, jump_scale=0.02,
    tick=0.25, seed=2205,
)


def closing_prices(spec: InstrumentSpec) -> np.ndarray:
    """Generate the instrument's minute-bar closing prices.

    The series is ``trend * exp(ou_noise) * jump_factor`` quantized to
    ``spec.tick``; the result is float64.
    """
    if spec.n < 1:
        raise ValueError(f"n must be >= 1, got {spec.n}")
    rng = np.random.default_rng(spec.seed)
    steps = np.arange(spec.n)
    trend = spec.start_price * spec.total_drift ** (steps / max(1, spec.n - 1))
    # Ornstein-Uhlenbeck log-noise: mean-reverting local wiggle.
    noise = np.empty(spec.n)
    x = 0.0
    shocks = rng.normal(0.0, spec.volatility, size=spec.n)
    for i in range(spec.n):
        x += -spec.reversion * x + shocks[i]
        noise[i] = x
    # Occasional jumps that persist (regime shifts).
    jumps = rng.random(spec.n) < spec.jump_prob
    jump_sizes = np.where(
        jumps, rng.normal(0.0, spec.jump_scale, size=spec.n), 0.0
    )
    jump_level = np.cumsum(jump_sizes)
    prices = trend * np.exp(noise + jump_level)
    return np.round(prices / spec.tick) * spec.tick


def to_index_keys(prices: np.ndarray, tick: float) -> np.ndarray:
    """Compose quantized prices with their arrival sequence into unique,
    price-ordered integer keys.

    ``key = price_in_ticks << SEQ_BITS | arrival_index`` — near-sortedness
    of the price series carries over to the keys.
    """
    if len(prices) >= (1 << SEQ_BITS):
        raise ValueError(
            f"series too long for {SEQ_BITS} sequence bits: {len(prices)}"
        )
    ticks = np.round(prices / tick).astype(np.int64)
    seq = np.arange(len(prices), dtype=np.int64)
    return (ticks << SEQ_BITS) | seq


def instrument_keys(spec: InstrumentSpec) -> np.ndarray:
    """Closing prices of ``spec`` as unique index keys."""
    return to_index_keys(closing_prices(spec), spec.tick)
