"""Ingestion workload builders beyond plain BoDS streams.

Includes the alternating-sortedness stress workload of §5.2.3 (Fig. 12a):
consecutive key segments that flip between near-sorted and fully scrambled,
designed to trap fast-path predictors in stale states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sortedness.bods import BodsSpec, generate


@dataclass(frozen=True)
class SegmentSpec:
    """One segment of a segmented workload: ``n`` keys with the given
    K-L characteristics."""

    n: int
    k_fraction: float
    l_fraction: float = 1.0


def segmented_stream(
    segments: list[SegmentSpec],
    seed: int = 42,
    key_start: int = 0,
) -> np.ndarray:
    """Concatenate BoDS streams over consecutive key ranges.

    Segment ``i`` permutes its own contiguous slice of the key domain, so
    the overall stream trends upward (as in Fig. 12a) while local
    sortedness alternates per segment.
    """
    parts: list[np.ndarray] = []
    start = key_start
    for i, seg in enumerate(segments):
        spec = BodsSpec(
            n=seg.n,
            k_fraction=seg.k_fraction,
            l_fraction=seg.l_fraction,
            seed=seed + i,
            key_start=start,
        )
        parts.append(generate(spec))
        start += seg.n
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def alternating_stress_stream(
    n_total: int = 25_000,
    n_segments: int = 5,
    near_k: float = 0.10,
    scrambled_k: float = 1.0,
    l_fraction: float = 1.0,
    seed: int = 42,
) -> np.ndarray:
    """The Fig. 12a stress workload: ``n_segments`` equal segments
    alternating near-sorted (K=``near_k``) and scrambled
    (K=``scrambled_k``), starting near-sorted."""
    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    per = n_total // n_segments
    segs = [
        SegmentSpec(
            n=per if i < n_segments - 1 else n_total - per * (n_segments - 1),
            k_fraction=near_k if i % 2 == 0 else scrambled_k,
            l_fraction=l_fraction,
        )
        for i in range(n_segments)
    ]
    return segmented_stream(segs, seed=seed)


def sorted_stream(n: int, key_start: int = 0, key_step: int = 1) -> np.ndarray:
    """Fully sorted keys."""
    return np.arange(key_start, key_start + n * key_step, key_step,
                     dtype=np.int64)


def scrambled_stream(n: int, seed: int = 42) -> np.ndarray:
    """Uniformly shuffled keys 0..n-1."""
    rng = np.random.default_rng(seed)
    out = np.arange(n, dtype=np.int64)
    rng.shuffle(out)
    return out
