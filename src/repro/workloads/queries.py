"""Query workload builders (§5, "Default Workload").

The paper's query phase runs 5M uniform random point lookups on existing
keys (1% of the data) and 1000 range lookups at selectivities 0.1%, 1%,
and 10% of the key domain.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: The paper's range-query selectivities (fractions of the key domain).
PAPER_SELECTIVITIES = (0.001, 0.01, 0.10)


def point_lookups(
    existing_keys: Sequence[int] | np.ndarray,
    count: int,
    seed: int = 42,
) -> np.ndarray:
    """Uniform random point-lookup targets drawn from existing keys."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    keys = np.asarray(existing_keys)
    if keys.size == 0:
        raise ValueError("cannot sample lookups from an empty key set")
    rng = np.random.default_rng(seed)
    return keys[rng.integers(0, keys.size, size=count)]


def negative_lookups(
    key_min: int,
    key_max: int,
    count: int,
    existing: set[int] | None = None,
    seed: int = 42,
) -> np.ndarray:
    """Lookup targets guaranteed absent (useful for Bloom-filter tests)."""
    rng = np.random.default_rng(seed)
    out: list[int] = []
    span = key_max - key_min + 1
    while len(out) < count:
        cand = int(rng.integers(key_min, key_min + 2 * span))
        if existing is None or cand not in existing:
            if existing is None and key_min <= cand <= key_max:
                continue
            out.append(cand)
    return np.asarray(out, dtype=np.int64)


def range_queries(
    key_min: int,
    key_max: int,
    selectivity: float,
    count: int,
    seed: int = 42,
) -> list[tuple[int, int]]:
    """Random ``[start, end)`` ranges covering ``selectivity`` of the key
    domain each."""
    if not 0.0 < selectivity <= 1.0:
        raise ValueError(
            f"selectivity must be in (0, 1], got {selectivity}"
        )
    if key_max <= key_min:
        raise ValueError("key_max must exceed key_min")
    span = key_max - key_min
    width = max(1, int(span * selectivity))
    rng = np.random.default_rng(seed)
    out: list[tuple[int, int]] = []
    hi = key_max - width
    for _ in range(count):
        start = int(rng.integers(key_min, max(key_min + 1, hi)))
        out.append((start, start + width))
    return out


def mixed_selectivity_ranges(
    key_min: int,
    key_max: int,
    count_per_selectivity: int,
    selectivities: Sequence[float] = PAPER_SELECTIVITIES,
    seed: int = 42,
) -> dict[float, list[tuple[int, int]]]:
    """Range workloads at each paper selectivity, keyed by selectivity."""
    return {
        sel: range_queries(
            key_min, key_max, sel, count_per_selectivity, seed=seed + i
        )
        for i, sel in enumerate(selectivities)
    }
