"""WAL-shipping replication: primary/replica trees with failover.

Built entirely on the durability substrate (:mod:`repro.core.wal`,
:mod:`repro.core.durable`): a :class:`Primary` streams its write-ahead
log to :class:`Replica` nodes that bootstrap from checkpoint snapshots,
apply records with CRC verification, serve reads, and can be promoted
by a :class:`FailoverCoordinator` when the primary dies — with epoch
fencing against split-brain.  See DESIGN.md §7.
"""

from .coordinator import (
    ClusterStatus,
    EpochRegistry,
    FailoverCoordinator,
    FailoverQuorumError,
    PromotionReport,
)
from .primary import (
    EPOCH_FILENAME,
    AckQuorumError,
    FencedError,
    Primary,
    QuorumTimeoutError,
    read_epoch,
    write_epoch,
)
from .replica import CURSOR_FILENAME, Replica, ReplicaState
from .transport import (
    FetchResult,
    InProcessTransport,
    ReplicationError,
    ReplicationTransport,
    SnapshotPayload,
    StaleEpochError,
    TransportChaos,
    TransportError,
)

__all__ = [
    "AckQuorumError",
    "ClusterStatus",
    "CURSOR_FILENAME",
    "EPOCH_FILENAME",
    "EpochRegistry",
    "FailoverCoordinator",
    "FailoverQuorumError",
    "FencedError",
    "FetchResult",
    "InProcessTransport",
    "Primary",
    "PromotionReport",
    "QuorumTimeoutError",
    "read_epoch",
    "Replica",
    "ReplicaState",
    "ReplicationError",
    "ReplicationTransport",
    "SnapshotPayload",
    "StaleEpochError",
    "TransportChaos",
    "TransportError",
    "write_epoch",
]
