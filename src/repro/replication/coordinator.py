"""Failover: health checks, leader election, fencing, promotion.

:class:`EpochRegistry` stands in for the consensus/lease service every
real deployment keeps outside the data path (etcd, ZooKeeper, a Raft
group): a single monotonically increasing epoch number, plus explicit
per-node reachability so tests can partition a primary *from the
registry* deterministically instead of racing wall-clock lease timeouts.
A primary consults it before every acknowledgement (see
``Primary._check_leadership``), which is the deterministic equivalent of
"only serve writes while holding a live lease".

:class:`FailoverCoordinator` drives the control loop:

* :meth:`tick` health-checks the primary through its transport;
  ``failure_threshold`` consecutive failures trigger :meth:`failover`.
* :meth:`failover` elects among the reachable replicas — refusing to
  act below ``election_quorum`` (promoting from a minority could choose
  a node that missed synchronously acknowledged writes) — drains each
  candidate as far as the links allow, promotes the one with the
  highest ``applied_lsn``, bumps the registry epoch (which instantly
  fences the old primary's acknowledgements), delivers a best-effort
  fencing decree over the old transport, and re-points the remaining
  replicas at the new primary.

Why "most caught-up wins" is safe with quorum acks: positions within
one primary's stream are totally ordered, so the maximal replica's log
is a superset of every other replica's.  With ``required_acks`` a
majority and election refusing to run below a majority of replicas, any
acknowledged write lives on at least one electable node — and therefore
on the winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..concurrency import sanitizer
from ..testing import failpoints
from .primary import Primary
from .replica import Replica
from .transport import ReplicationTransport, TransportError


class FailoverQuorumError(RuntimeError):
    """Too few reachable replicas to elect safely; the cluster stays
    unavailable rather than risking acknowledged-write loss (CP over
    AP)."""


class EpochRegistry:
    """Monotone epoch counter with modelled per-node reachability."""

    def __init__(self, epoch: int = 1) -> None:
        self._epoch = epoch
        self._lock = sanitizer.make_lock("repl.epoch")
        self._partitioned: set[str] = set()

    def current(self) -> int:
        """The registry's own view (the coordinator is co-located)."""
        with self._lock:
            return self._epoch

    def current_for(self, node_id: str) -> int:
        """The epoch as seen by ``node_id`` — or unreachable."""
        with self._lock:
            if node_id in self._partitioned:
                raise TransportError(
                    f"registry unreachable from {node_id!r}"
                )
            return self._epoch

    def bump(self) -> int:
        """Start a new epoch (election); fences all older tenures."""
        with self._lock:
            self._epoch += 1
            return self._epoch

    def partition(self, node_id: str) -> None:
        """Cut ``node_id`` off from the registry (lease expiry model)."""
        with self._lock:
            self._partitioned.add(node_id)

    def heal(self, node_id: str) -> None:
        with self._lock:
            self._partitioned.discard(node_id)

    def heal_all(self) -> None:
        with self._lock:
            self._partitioned.clear()


@dataclass
class PromotionReport:
    """What one failover did."""

    old_node: str
    new_node: str
    old_epoch: int
    new_epoch: int
    winner_lsn: object
    candidates: int
    rebootstrapped: int
    scrub_issues: int
    scrub_repairs: int
    fencing_delivered: bool


@dataclass
class ClusterStatus:
    """Snapshot of the coordinator's view (for CLIs and tests)."""

    primary: str
    epoch: int
    strikes: int
    failovers: int
    primary_health: str = "healthy"
    replicas: list = field(default_factory=list)


class FailoverCoordinator:
    """Health-checks a primary and promotes a replica when it dies.

    Args:
        primary: current primary.
        primary_transport: the coordinator's own link to it.
        replicas: the follower set.
        registry: shared epoch registry.
        transport_factory: builds a replica→primary transport for the
            newly promoted primary (in-process:
            ``lambda p: InProcessTransport(p)``).
        failure_threshold: consecutive failed health checks before
            :meth:`tick` triggers a failover.
        election_quorum: minimum reachable replicas to elect; defaults
            to a majority of the current replica set.
    """

    def __init__(
        self,
        primary: Primary,
        primary_transport: ReplicationTransport,
        replicas: List[Replica],
        registry: EpochRegistry,
        *,
        transport_factory: Callable[[Primary], ReplicationTransport],
        failure_threshold: int = 3,
        election_quorum: Optional[int] = None,
    ) -> None:
        self.primary = primary
        self.primary_transport = primary_transport
        self.replicas = list(replicas)
        self.registry = registry
        self.transport_factory = transport_factory
        self.failure_threshold = failure_threshold
        self._election_quorum = election_quorum
        self.strikes = 0
        self.failovers = 0
        self.health_checks = 0

    @property
    def election_quorum(self) -> int:
        if self._election_quorum is not None:
            return self._election_quorum
        return len(self.replicas) // 2 + 1

    # -- health loop ---------------------------------------------------

    def tick(self) -> Optional[PromotionReport]:
        """One health-check round; returns a report when it failed over.

        A primary that answers pings but has degraded to read-only (its
        :class:`~repro.core.health.HealthMonitor` tripped on exhausted
        write retries) is just as unable to acknowledge writes as a dead
        one — it strikes the same way, so the cluster fails over to a
        replica whose disk still works instead of serving errors.
        """
        failpoints.fire("repl.health_check")
        self.health_checks += 1
        try:
            self.primary_transport.ping()
            healthy = self.primary.durable.health.writable
        except (TransportError, failpoints.FailpointError):
            healthy = False
        if not healthy:
            self.strikes += 1
            if self.strikes >= self.failure_threshold:
                return self.failover()
            return None
        self.strikes = 0
        return None

    # -- election ------------------------------------------------------

    def _reachable_replicas(self) -> List[Replica]:
        return [
            r
            for r in self.replicas
            if r.alive and r.durable is not None
        ]

    def failover(self) -> PromotionReport:
        """Elect, fence, promote, re-point.  See module docstring."""
        candidates = self._reachable_replicas()
        if len(candidates) < self.election_quorum:
            raise FailoverQuorumError(
                f"only {len(candidates)} of {len(self.replicas)} replicas "
                f"reachable; quorum is {self.election_quorum} — refusing "
                "to elect (an acknowledged write could be lost)"
            )
        # Drain: pull whatever the links still deliver, so the election
        # compares the freshest positions available.
        for replica in candidates:
            try:
                replica.catch_up(max_rounds=2)
            except Exception:
                pass  # best-effort: a dead link just loses the drain
        # Elect on (epoch, position): positions are only comparable
        # within one tenure, and a newer tenure's primary holds every
        # write acknowledged in older tenures (by induction through
        # elections), so lexicographic max is the most-caught-up node.
        winner = max(candidates, key=lambda r: (r.epoch, r.position))
        old_primary = self.primary
        old_epoch = self.registry.current()
        new_epoch = self.registry.bump()
        # From this instant the old primary can no longer confirm its
        # lease: every later acknowledgement attempt raises FencedError
        # even if the decree below never reaches it.
        failpoints.fire("repl.fence")
        fencing_delivered = True
        try:
            self.primary_transport.fence(new_epoch)
        except (TransportError, failpoints.FailpointError):
            fencing_delivered = False
        failpoints.fire("repl.promote")
        new_primary, scrub_report = winner.promote(
            epoch=new_epoch,
            registry=self.registry,
            required_acks=old_primary.required_acks,
        )
        self.replicas.remove(winner)
        rebootstrapped = 0
        for replica in self.replicas:
            if not replica.alive:
                continue
            replica.attach(self.transport_factory(new_primary))
            try:
                replica.bootstrap()
                new_primary.attach(replica)
                rebootstrapped += 1
            except (TransportError, failpoints.FailpointError):
                continue
        self.primary = new_primary
        self.primary_transport = self.transport_factory(new_primary)
        self.strikes = 0
        self.failovers += 1
        return PromotionReport(
            old_node=old_primary.node_id,
            new_node=new_primary.node_id,
            old_epoch=old_epoch,
            new_epoch=new_epoch,
            winner_lsn=winner.position,
            candidates=len(candidates),
            rebootstrapped=rebootstrapped,
            scrub_issues=len(scrub_report.issues),
            scrub_repairs=scrub_report.repairs,
            fencing_delivered=fencing_delivered,
        )

    # -- bookkeeping ---------------------------------------------------

    def add_replica(self, replica: Replica) -> None:
        """Register a (rejoined) follower with the cluster."""
        if replica not in self.replicas:
            self.replicas.append(replica)
        self.primary.attach(replica)

    def status(self) -> ClusterStatus:
        return ClusterStatus(
            primary=self.primary.node_id,
            epoch=self.registry.current(),
            strikes=self.strikes,
            failovers=self.failovers,
            primary_health=self.primary.durable.health.state.value,
            replicas=[
                {
                    "name": r.name,
                    "state": r.state.value,
                    "alive": r.alive,
                    "applied_lsn": str(r.position),
                    "lag_bytes": r.lag_bytes,
                    "epoch": r.epoch,
                    "health": (
                        r.durable.health.state.value
                        if r.durable is not None
                        else "n/a"
                    ),
                }
                for r in self.replicas
            ],
        )
