"""Replica: bootstrap from a snapshot, then tail the primary's WAL.

A replica is itself locally durable — shipped records are applied
through its own :class:`~repro.core.durable.DurableTree` (log-then-apply
into its own directory), so its state is ``fetched snapshot + local
WAL`` and survives its own restarts.  That is also what makes promotion
cheap: the promoted node's directory already *is* a primary-shaped
durability root.

State machine::

    IDLE --bootstrap()--> FOLLOWING --promote()--> PROMOTED
      ^                      |  ^
      |                      |  `-- resume() after a restart
      `---- (re-bootstrap on WAL truncation / re-attach) ----'

While ``FOLLOWING``, :meth:`Replica.poll` pulls one batch through the
transport and applies it:

* every record's CRC32 is re-verified on this side of the wire;
* records at or below ``applied_lsn`` are deduplicated (the transport
  may re-deliver);
* ``OP_EPOCH`` markers move the replica's epoch forward — a marker (or
  a fetch) carrying an *older* epoch means a deposed primary is still
  talking and is rejected with :class:`StaleEpochError`;
* the cursor (``applied_lsn``) is persisted after each applied batch,
  *after* an fsync of the local WAL, so a restart never resumes ahead
  of its own durable state (re-applying the overlap is idempotent).

Reads are served under a reader-writer lock against the applying
thread, so a replica can answer ``get``/``range_query`` traffic while
streaming — the read-scale-out half of the replication story.
"""

from __future__ import annotations

import enum
import os
import shutil
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Type, Union

from ..concurrency import sanitizer
from ..concurrency.locks import RWLock
from ..core.bptree import BPlusTree
from ..core.config import TreeConfig
from ..core.durable import SNAPSHOT_NAME, WAL_DIRNAME, DurableTree
from ..core.persist import PersistenceError
from ..core.scrubber import Scrubber
from ..core.stats import ScrubReport
from ..core.wal import (
    OP_DELETE,
    OP_EPOCH,
    OP_INSERT,
    OP_INSERT_MANY,
    WALError,
    WALPosition,
)
from ..testing import failpoints
from .primary import EPOCH_FILENAME, Primary
from .transport import (
    ReplicationError,
    ReplicationTransport,
    StaleEpochError,
    TransportError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coordinator import EpochRegistry

CURSOR_FILENAME = "replica.cursor"


class ReplicaState(enum.Enum):
    IDLE = "idle"
    FOLLOWING = "following"
    PROMOTED = "promoted"
    STOPPED = "stopped"


class Replica:
    """A read-serving follower of a :class:`Primary`'s WAL stream.

    Args:
        directory: this replica's own durability root.
        transport: link to the primary (swap via :meth:`attach` after a
            failover).
        tree_class / config: variant to rebuild into.
        fsync: local WAL fsync policy; the cursor is only persisted
            after an explicit sync, so even ``"none"`` cannot resume
            ahead of durable state.
        segment_bytes: local WAL segment rotation size.
        name: node identity (used as ``node_id`` on promotion).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        transport: ReplicationTransport,
        *,
        tree_class: Type[BPlusTree] = BPlusTree,
        config: Optional[TreeConfig] = None,
        fsync: str = "none",
        segment_bytes: int = 4 * 1024 * 1024,
        name: str = "replica",
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.transport = transport
        self.tree_class = tree_class
        self.config = config
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.name = name
        self.state = ReplicaState.IDLE
        self.alive = True
        self.durable: Optional[DurableTree] = None
        self.position: Optional[WALPosition] = None
        self.epoch = 0
        self.lag_bytes = 0
        self.records_applied = 0
        self.entries_applied = 0
        self.duplicates_skipped = 0
        self.crc_failures = 0
        self.stale_epoch_rejects = 0
        self.bootstraps = 0
        self.peer_heals = 0
        self._lock = RWLock(name="repl.replica")

    #: ``applied_lsn`` is the durable cursor: the stream position of the
    #: last record applied (and persisted) by this replica.
    @property
    def applied_lsn(self) -> Optional[WALPosition]:
        return self.position

    # -- lifecycle -----------------------------------------------------

    def attach(self, transport: ReplicationTransport) -> None:
        """Point this replica at a (new) primary.

        Positions are meaningless across primaries — call
        :meth:`bootstrap` afterwards.
        """
        self.transport = transport

    def _wipe_local_state(self) -> None:  # holds: repl.replica
        if self.durable is not None:
            self.durable.close()
            self.durable = None
        for name in (SNAPSHOT_NAME, EPOCH_FILENAME, CURSOR_FILENAME):
            (self.directory / name).unlink(missing_ok=True)
        (self.directory / (SNAPSHOT_NAME + ".tmp")).unlink(missing_ok=True)
        shutil.rmtree(self.directory / WAL_DIRNAME, ignore_errors=True)

    def bootstrap(self) -> None:
        """(Re)build local state from the primary's latest snapshot."""
        self._check_alive()
        payload = self.transport.fetch_snapshot()
        with self._lock.write_locked():
            self._wipe_local_state()
            if payload.data is not None:
                snap = self.directory / SNAPSHOT_NAME
                tmp = snap.with_name(snap.name + ".tmp")
                tmp.write_bytes(payload.data)
                os.replace(tmp, snap)
            self.durable, _ = DurableTree.recover(
                self.directory, self.tree_class, self.config,
                fsync=self.fsync, segment_bytes=self.segment_bytes,
            )
            self.position = payload.base
            self.epoch = max(self.epoch, payload.epoch)
            self._persist_cursor_locked()
            self.state = ReplicaState.FOLLOWING
            self.bootstraps += 1

    def resume(self) -> None:
        """Restart from local disk (crash recovery of the replica).

        Rebuilds ``snapshot + local WAL`` and resumes streaming from the
        persisted cursor; falls back to a full bootstrap when no cursor
        was ever written — or when the local artifacts are too damaged
        to replay (corrupt snapshot, unreadable WAL): a replica always
        has a stronger copy one fetch away, so it rebuilds from the
        primary instead of refusing to start the way a standalone
        :meth:`DurableTree.recover` must.
        """
        self.alive = True
        cursor = self._read_cursor()
        if cursor is None:
            self.bootstrap()
            return
        try:
            with self._lock.write_locked():
                if self.durable is not None:
                    self.durable.close()
                    self.durable = None
                self.durable, _ = DurableTree.recover(
                    self.directory, self.tree_class, self.config,
                    fsync=self.fsync, segment_bytes=self.segment_bytes,
                )
                self.epoch, self.position = cursor
                self.state = ReplicaState.FOLLOWING
        except (PersistenceError, WALError):
            self.bootstrap()

    def heal_from_peer(self) -> bool:
        """Rebuild this node from its primary after local corruption.

        This is the :class:`~repro.core.scrubber.Scrubber`'s
        ``peer_heal`` hook: when a scrub finds a rotted local artifact
        (already quarantined — the wipe below leaves ``quarantine/``
        untouched), the replica throws its damaged local state away,
        re-bootstraps from the primary's snapshot, and streams back to
        the tail.  Returns True on success; False when the peer is
        unreachable or this node is not following (the scrubber then
        falls back to its local repair, or leaves the quarantine for an
        operator).
        """
        if not self.alive or self.state is not ReplicaState.FOLLOWING:
            return False
        try:
            self.bootstrap()
            self.catch_up()
        except (TransportError, ReplicationError):
            return False
        self.peer_heals += 1
        return True

    def make_scrubber(self, **kwargs: Any) -> Scrubber:
        """A :class:`Scrubber` bound to this replica's *current* tree.

        The provider indirection matters: every bootstrap (including a
        peer heal) replaces ``self.durable``, so the scrubber must
        re-resolve it each cycle rather than hold a stale reference.
        """
        def current() -> DurableTree:
            durable = self.durable
            if durable is None:
                raise ReplicationError(
                    f"replica {self.name} has no local state to scrub "
                    "(bootstrap first)"
                )
            return durable

        kwargs.setdefault("peer_heal", self.heal_from_peer)
        return Scrubber(current, **kwargs)

    def kill(self) -> None:
        """Simulate process death (nothing flushed, nothing closed).

        The local WAL's group flusher — if the replica persists with
        ``fsync="group"`` — is aborted without a final flush, exactly
        as a dead process would leave it."""
        self.alive = False
        self.state = ReplicaState.STOPPED
        if self.durable is not None:
            self.durable.abort()

    def close(self) -> None:
        if self.durable is not None:
            self.durable.close()
        self.state = ReplicaState.STOPPED

    def _check_alive(self) -> None:
        if not self.alive:
            raise TransportError(f"replica {self.name} is dead")

    # -- cursor persistence --------------------------------------------

    def _persist_cursor_locked(self) -> None:  # holds: repl.replica
        # Local WAL first: the cursor on disk must never be ahead of the
        # applied records it stands for.
        self.durable.wal.sync()
        path = self.directory / CURSOR_FILENAME
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w") as fh:
            fh.write(
                f"{self.epoch} {self.position.segment} "
                f"{self.position.offset}\n"
            )
            fh.flush()
            if sanitizer.enabled():
                sanitizer.note_fsync("replica.cursor")
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _read_cursor(self) -> Optional[tuple[int, WALPosition]]:
        try:
            text = (self.directory / CURSOR_FILENAME).read_text()
            epoch_s, seg_s, off_s = text.split()
            return int(epoch_s), WALPosition(int(seg_s), int(off_s))
        except (FileNotFoundError, ValueError):
            return None

    # -- streaming -----------------------------------------------------

    def poll(self, *, max_records: int = 512) -> int:
        """Fetch and apply one batch; returns records applied.

        Transparently re-bootstraps when the primary reports the cursor
        was truncated away by a checkpoint.
        """
        self._check_alive()
        if self.state is not ReplicaState.FOLLOWING:
            raise ReplicationError(
                f"replica {self.name} is {self.state.value}, not following"
            )
        result = self.transport.fetch_records(
            self.position, max_records=max_records
        )
        if result.truncated:
            self.bootstrap()
            result = self.transport.fetch_records(
                self.position, max_records=max_records
            )
            if result.truncated:
                raise ReplicationError(
                    f"replica {self.name}: position {self.position} still "
                    "truncated immediately after bootstrap"
                )
        if result.epoch < self.epoch:
            self.stale_epoch_rejects += 1
            raise StaleEpochError(
                f"replica {self.name} (epoch {self.epoch}) refused a "
                f"batch from a deposed primary (epoch {result.epoch})"
            )
        if result.epoch > self.epoch:
            # A newer tenure than the one our cursor belongs to: WAL
            # positions are meaningless across primaries (each node
            # numbers its own segments), so resuming by position against
            # a new primary could silently mis-apply.  Re-bootstrap.
            self.bootstrap()
            result = self.transport.fetch_records(
                self.position, max_records=max_records
            )
            if result.truncated or result.epoch != self.epoch:
                raise ReplicationError(
                    f"replica {self.name}: unstable primary during "
                    f"re-bootstrap (epoch {result.epoch} vs {self.epoch})"
                )
        self.lag_bytes = result.lag_bytes
        applied = 0
        for record in result.records:
            if (
                self.position is not None
                and record.next_position <= self.position
            ):
                self.duplicates_skipped += 1
                continue
            failpoints.fire("repl.apply_record")
            if zlib.crc32(record.payload) != record.crc:
                self.crc_failures += 1
                raise ReplicationError(
                    f"replica {self.name}: CRC mismatch in shipped record "
                    f"at {record.position}"
                )
            try:
                op = record.op
            except (ValueError, SyntaxError):
                self.crc_failures += 1
                raise ReplicationError(
                    f"replica {self.name}: undecodable record at "
                    f"{record.position}"
                ) from None
            with self._lock.write_locked():
                self._apply_locked(op)
                self.position = record.next_position
            applied += 1
            self.records_applied += 1
        moved = applied > 0
        if self.position is None or result.position > self.position:
            # Adopt the primary's resume cursor even when it is ahead of
            # the last record delivered: a checkpoint truncate can leave
            # a segment-boundary gap (or an empty WAL) after the stream
            # base, and the primary only ever skips ranges that held no
            # records beyond what this replica already applied.
            with self._lock.write_locked():
                self.position = result.position
            moved = True
        if moved:
            with self._lock.write_locked():
                self._persist_cursor_locked()
        return applied

    def _apply_locked(self, op: tuple) -> None:
        tag = op[0]
        if tag == OP_INSERT:
            self.durable.insert(op[1], op[2])
            self.entries_applied += 1
        elif tag == OP_DELETE:
            self.durable.delete(op[1])
            self.entries_applied += 1
        elif tag == OP_INSERT_MANY:
            self.durable.insert_many(op[1])
            self.entries_applied += len(op[1])
        elif tag == OP_EPOCH:
            if op[1] < self.epoch:
                self.stale_epoch_rejects += 1
                raise StaleEpochError(
                    f"replica {self.name} (epoch {self.epoch}) refused an "
                    f"epoch marker from a deposed primary ({op[1]})"
                )
            self.epoch = op[1]
        # Unknown tags are skipped: a newer primary may ship op kinds
        # this replica version does not know; they carry no data it can
        # mis-apply (same policy as recovery).

    def catch_up(
        self,
        target: Optional[WALPosition] = None,
        *,
        max_rounds: int = 8,
        deadline: Optional[float] = None,
    ) -> WALPosition:
        """Poll until ``applied_lsn`` reaches ``target`` (or the tail).

        Raises :class:`TransportError` when ``max_rounds`` polls cannot
        get there (link too lossy, primary gone) or when ``deadline``
        (absolute ``time.monotonic()`` seconds, checked between polls)
        passes first — the caller decides whether that fails an ack or
        just retries later.
        """
        self._check_alive()
        if target is not None and self.position is not None \
                and self.position >= target:
            return self.position
        for _ in range(max_rounds):
            if deadline is not None and time.monotonic() >= deadline:
                raise TransportError(
                    f"replica {self.name}: catch-up deadline expired at "
                    f"{self.position} (target {target})"
                )
            self.poll()
            if target is not None and self.position >= target:
                return self.position
            if target is None and self.lag_bytes == 0:
                return self.position
        if target is not None and self.position >= target:
            return self.position
        if target is None and self.lag_bytes == 0:
            return self.position
        raise TransportError(
            f"replica {self.name} stuck at {self.position} "
            f"(target {target}, lag {self.lag_bytes}B) "
            f"after {max_rounds} polls"
        )

    # -- promotion -----------------------------------------------------

    def promote(
        self,
        *,
        epoch: int,
        registry: Optional["EpochRegistry"] = None,
        required_acks: int = 0,
    ) -> tuple[Primary, Any]:
        """Become the primary of ``epoch``.

        Scrubs fast-path metadata first (replayed state never trusts
        derived pointers — same discipline as crash recovery), then
        wraps this node's durable tree in a :class:`Primary` and
        checkpoints so new replicas bootstrap from a fresh snapshot.

        Returns ``(primary, scrub_report)``.
        """
        self._check_alive()
        with self._lock.write_locked():
            scrub_report = self.durable.scrub()
            self.state = ReplicaState.PROMOTED
        primary = Primary(
            self.durable,
            epoch=epoch,
            registry=registry,
            node_id=self.name,
            required_acks=required_acks,
        )
        primary.checkpoint()
        return primary, scrub_report

    # -- reads ---------------------------------------------------------

    @property
    def layout(self) -> str:
        """Leaf storage layout of the replicated tree."""
        return self.durable.layout

    def _state_or_raise(self) -> DurableTree:
        durable = self.durable
        if durable is None:
            raise ReplicationError(
                f"replica {self.name} has no local state "
                "(bootstrap first)"
            )
        return durable

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock.read_locked():
            return self._state_or_raise().get(key, default)

    def get_many(self, keys: Iterable[Any], default: Any = None) -> list[Any]:
        with self._lock.read_locked():
            return self._state_or_raise().get_many(keys, default)

    def range_query(self, start: Any, end: Any) -> list[tuple[Any, Any]]:
        with self._lock.read_locked():
            return self._state_or_raise().range_query(start, end)

    def items(self) -> list[tuple[Any, Any]]:
        with self._lock.read_locked():
            return list(self._state_or_raise().items())

    def __len__(self) -> int:
        with self._lock.read_locked():
            return len(self.durable) if self.durable is not None else 0

    def check(self, check_min_fill: bool = False) -> list[str]:
        with self._lock.read_locked():
            return self._state_or_raise().check(check_min_fill=check_min_fill)

    def range_iter(self, start: Any, end: Any) -> Iterator[tuple[Any, Any]]:
        """Range scan with the lazy-iterator surface of the other tree
        facades.  The replica applies shipped records under its write
        lock, so the result is materialized under the read lock and the
        snapshot iterated — an open cursor must never pin the lock
        across caller-controlled iteration."""
        with self._lock.read_locked():
            snapshot = self._state_or_raise().range_query(start, end)
        return iter(snapshot)

    def scrub(self) -> ScrubReport:
        """Scrub the local tree's derived state (what :meth:`promote`
        runs before serving writes), exposed for facade parity."""
        with self._lock.write_locked():
            return self._state_or_raise().scrub()
