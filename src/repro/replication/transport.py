"""Replication transport: how replicas reach their primary.

The wire protocol is three calls — ``ping`` (health), ``fetch_snapshot``
(bootstrap), ``fetch_records`` (stream) — plus ``fence`` (coordinator →
primary decree).  :class:`ReplicationTransport` is the pluggable
interface; :class:`InProcessTransport` is the reference implementation
that talks to a :class:`~repro.replication.primary.Primary` object in
the same process (the unit the chaos harness runs against).  A network
transport implements the same four methods over its favourite RPC stack
and everything above it — :class:`~repro.replication.replica.Replica`,
:class:`~repro.replication.coordinator.FailoverCoordinator` — is
unchanged.

Fault injection comes in two flavours, both living here so every
transport failure mode is exercised through the same seam:

* **failpoints** — ``repl.transport.drop`` / ``delay`` / ``reorder``
  and ``repl.snapshot_fetch`` fire on every call; arming one with
  ``mode="raise"`` turns that call into a deterministic failure (the
  replication layer treats :class:`~repro.testing.failpoints.\
FailpointError` exactly like a :class:`TransportError`).
* **chaos knobs** — :class:`TransportChaos` drives *probabilistic*
  drops (empty response, cursor unmoved), delays (only a prefix of the
  batch is delivered), and reorder/duplicate delivery (the previous
  batch is served again, so replicas must deduplicate by position).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.wal import WALPosition, WALRecord
from ..testing import failpoints

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .primary import Primary


class TransportError(RuntimeError):
    """The peer is unreachable (partitioned, dead, or refusing)."""


class ReplicationError(RuntimeError):
    """Base class for replication-protocol failures."""


class StaleEpochError(ReplicationError):
    """A record stream (or fetch) from a deposed primary was rejected."""


@dataclass
class SnapshotPayload:
    """Bootstrap material served by a primary.

    Attributes:
        data: raw bytes of the primary's checkpoint snapshot file, or
            ``None`` when the primary has never checkpointed (the
            replica then starts from an empty tree).
        base: WAL position the snapshot state corresponds to — the
            replica streams records from here.
        epoch: the serving primary's epoch.
    """

    data: Optional[bytes]
    base: WALPosition
    epoch: int


@dataclass
class FetchResult:
    """One batch of shipped WAL records.

    Attributes:
        records: complete, CRC-framed records in log order (possibly
            empty — nothing new, or a chaos drop).
        position: cursor to resume from after applying ``records``.
        epoch: the serving primary's current epoch.
        tail: the primary's WAL tail when the batch was cut.
        lag_bytes: bytes between ``position`` and ``tail`` (gauge).
        truncated: the requested position predates the primary's
            retained WAL — re-bootstrap from a snapshot.
    """

    records: list[WALRecord] = field(default_factory=list)
    position: WALPosition = WALPosition(0, 0)
    epoch: int = 0
    tail: WALPosition = WALPosition(0, 0)
    lag_bytes: int = 0
    truncated: bool = False


class ReplicationTransport:
    """Interface a replica (and the coordinator) speaks to a primary."""

    def ping(self) -> None:
        """Health probe; raises :class:`TransportError` when down."""
        raise NotImplementedError

    def fetch_snapshot(self) -> SnapshotPayload:
        """Bootstrap payload: snapshot bytes + base position + epoch."""
        raise NotImplementedError

    def fetch_records(
        self,
        position: WALPosition,
        *,
        max_records: int = 512,
        max_bytes: int = 1 << 20,
    ) -> FetchResult:
        """Records at/after ``position``, bounded by the caps."""
        raise NotImplementedError

    def fence(self, epoch: int) -> None:
        """Deliver a fencing decree: a newer epoch has been elected."""
        raise NotImplementedError


@dataclass
class TransportChaos:
    """Probabilistic link faults for :class:`InProcessTransport`.

    All probabilities are per ``fetch_records`` call, evaluated on a
    seeded private RNG so chaos schedules replay deterministically.
    """

    drop_probability: float = 0.0
    delay_probability: float = 0.0
    duplicate_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)


class InProcessTransport(ReplicationTransport):
    """Reference transport: direct calls into a same-process primary.

    Partitions are modelled explicitly (:meth:`partition` /
    :meth:`heal`): while partitioned every call raises
    :class:`TransportError`, exactly what a socket timeout becomes in a
    network implementation.
    """

    def __init__(
        self, primary: "Primary", *, chaos: Optional[TransportChaos] = None
    ) -> None:
        self.primary = primary
        self.chaos = chaos
        self.partitioned = False
        self.drops = 0
        self.delays = 0
        self.duplicates = 0
        self._last_batch: Optional[FetchResult] = None

    # -- link state ----------------------------------------------------

    def partition(self) -> None:
        """Sever the link (both directions)."""
        self.partitioned = True

    def heal(self) -> None:
        """Restore the link."""
        self.partitioned = False

    def _check_link(self) -> None:
        if self.partitioned:
            raise TransportError("link partitioned")
        if not getattr(self.primary, "alive", True):
            raise TransportError("primary process is dead")

    # -- protocol ------------------------------------------------------

    def ping(self) -> None:
        self._check_link()

    def fetch_snapshot(self) -> SnapshotPayload:
        self._check_link()
        failpoints.fire("repl.snapshot_fetch")
        return self.primary.snapshot_payload()

    def fetch_records(
        self,
        position: WALPosition,
        *,
        max_records: int = 512,
        max_bytes: int = 1 << 20,
    ) -> FetchResult:
        self._check_link()
        failpoints.fire("repl.transport.drop")
        chaos = self.chaos
        if chaos is not None and chaos.rng.random() < chaos.drop_probability:
            # Lost response: the replica's cursor stays put and it
            # simply retries later.
            self.drops += 1
            tail = self.primary.tail_position()
            return FetchResult(
                records=[], position=position, epoch=self.primary.epoch,
                tail=tail, lag_bytes=0, truncated=False,
            )
        failpoints.fire("repl.transport.reorder")
        if (
            chaos is not None
            and self._last_batch is not None
            and self._last_batch.records
            and chaos.rng.random() < chaos.duplicate_probability
        ):
            # Duplicate delivery (a retried request whose first answer
            # was not lost after all): serve the previous batch again.
            # The replica must deduplicate by position.
            self.duplicates += 1
            return self._last_batch
        result = self.primary.fetch_records(
            position, max_records=max_records, max_bytes=max_bytes
        )
        failpoints.fire("repl.transport.delay")
        if (
            chaos is not None
            and len(result.records) > 1
            and chaos.rng.random() < chaos.delay_probability
        ):
            # Slow link: only a prefix arrives this round.
            self.delays += 1
            keep = chaos.rng.randrange(1, len(result.records))
            kept = result.records[:keep]
            result = FetchResult(
                records=kept,
                position=kept[-1].next_position,
                epoch=result.epoch,
                tail=result.tail,
                lag_bytes=result.lag_bytes,
                truncated=False,
            )
        self._last_batch = result
        return result

    def fence(self, epoch: int) -> None:
        self._check_link()
        self.primary.fence(epoch)
