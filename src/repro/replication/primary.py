"""Primary: a :class:`~repro.core.durable.DurableTree` that ships its WAL.

The primary owns the authoritative copy of the index.  Every mutation is
made durable locally (log-then-apply, exactly as ``DurableTree`` alone)
and the resulting WAL is exposed to replicas as a *stream*:

* :meth:`Primary.snapshot_payload` serves the latest checkpoint snapshot
  plus the WAL position it corresponds to (bootstrap);
* :meth:`Primary.fetch_records` serves framed records from any position
  a replica resumes at, following rotation, and answers ``truncated``
  when a checkpoint has folded the requested range into the snapshot.

**Epochs and fencing.**  Each primary tenure has an epoch number,
persisted in an ``EPOCH`` file beside the snapshot and stamped into the
WAL as an ``OP_EPOCH`` marker record, so the stream itself carries the
tenure it belongs to.  Before acknowledging any write the primary
confirms it still holds the current epoch against the
:class:`~repro.replication.coordinator.EpochRegistry` (the stand-in for
a lease/consensus service): if the registry is unreachable or reports a
newer epoch, the write is **rejected** with :class:`FencedError` rather
than acknowledged — a deposed or partitioned primary fails safe instead
of silently diverging (split-brain).

**Acknowledgement modes.**  With ``required_acks=0`` a write is
acknowledged once locally durable (asynchronous replication: a failover
may lose the tail not yet shipped).  With ``required_acks=k`` the write
is additionally shipped synchronously and acknowledged only after *k*
attached replicas have applied it — the mode the chaos harness uses to
assert that no acknowledged write is ever lost across failovers.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional

from ..concurrency import sanitizer
from ..core.durable import DurableTree
from ..core.stats import ScrubReport
from ..core.wal import (
    CommitTicket,
    WALPosition,
    WALReader,
    WALStreamError,
    WALTruncatedError,
    first_position,
)
from ..testing import failpoints
from .transport import FetchResult, ReplicationError, SnapshotPayload, TransportError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.wal import WriteAheadLog
    from .coordinator import EpochRegistry
    from .replica import Replica

EPOCH_FILENAME = "EPOCH"


class FencedError(ReplicationError):
    """Write rejected: this primary no longer holds the current epoch
    (or cannot prove it does).  The caller must not treat the write as
    acknowledged."""


class AckQuorumError(ReplicationError):
    """Write durable locally but not replicated to ``required_acks``
    replicas; it is **not acknowledged** (it may still surface after a
    failover that keeps this node's log — surviving is allowed, being
    relied on is not)."""

    def __init__(self, message: str, *, acks: int, required: int) -> None:
        super().__init__(message)
        self.acks = acks
        self.required = required


class QuorumTimeoutError(AckQuorumError):
    """The ack quorum did not confirm within the configured
    ``ack_deadline``.  Same contract as :class:`AckQuorumError` — the
    write is durable locally but **not acknowledged** — but typed so
    callers can tell "replicas refused/failed" from "replicas are slow
    or hung": the former warrants a topology look, the latter a retry
    after backoff.  Without a deadline a single hung replica transport
    blocks acked writers forever; this is the bound."""


def read_epoch(directory: Path) -> int:
    """Epoch persisted in ``directory`` (0 when never written)."""
    try:
        return int((Path(directory) / EPOCH_FILENAME).read_text().strip())
    except (FileNotFoundError, ValueError):
        return 0


def write_epoch(directory: Path, epoch: int) -> None:
    """Persist ``epoch`` atomically (tmp + replace + fsync)."""
    path = Path(directory) / EPOCH_FILENAME
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as fh:
        fh.write(f"{epoch}\n")
        fh.flush()
        if sanitizer.enabled():
            sanitizer.note_fsync("repl.epoch_file")
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class Primary:
    """Replication-aware facade over a :class:`DurableTree`.

    Args:
        durable: the locally durable index this node serves.
        epoch: tenure number; defaults to the persisted ``EPOCH`` file
            (or the registry's current epoch, or 1).  Never goes
            backwards relative to the persisted value.
        registry: epoch registry to confirm leadership against before
            each acknowledgement; ``None`` runs unfenced (single-node).
        node_id: this node's identity at the registry.
        required_acks: replicas that must apply a write before it is
            acknowledged (0 = asynchronous replication).
        ack_deadline: seconds any single quorum wait may take before it
            degrades to :class:`QuorumTimeoutError` (``None`` preserves
            the historical unbounded wait).  Applies to the implicit
            wait after every synchronous write and, unless overridden
            per call, to :meth:`drain_acks`.
    """

    def __init__(
        self,
        durable: DurableTree,
        *,
        epoch: Optional[int] = None,
        registry: Optional["EpochRegistry"] = None,
        node_id: str = "primary",
        required_acks: int = 0,
        ack_deadline: Optional[float] = None,
    ) -> None:
        self.durable = durable
        self.registry = registry
        self.node_id = node_id
        self.required_acks = required_acks
        self.ack_deadline = ack_deadline
        #: Quorum waits that hit ``ack_deadline`` and degraded to
        #: :class:`QuorumTimeoutError` instead of blocking on.
        self.quorum_timeouts = 0
        self.alive = True
        self.fenced = False
        self.fenced_by: Optional[int] = None
        self.writes_rejected = 0
        self.batches_served = 0
        self.records_served = 0
        #: Quorum-confirmation rounds run by :meth:`_await_acks` — with
        #: the pipelined submit surface one round covers a whole batch
        #: of writes, so ``ack_rounds`` ≪ writes is the amortization.
        self.ack_rounds = 0
        #: Serve-time corruption repairs: a :class:`WALStreamError`
        #: while shipping records (bit rot below the tail) healed by a
        #: checkpoint — the live tree still holds every acked write, so
        #: snapshotting it and truncating the damaged log is a full
        #: repair; the asking replica re-bootstraps from the result.
        self.stream_repairs = 0
        self._replicas: list["Replica"] = []
        #: Commit tickets handed out by ``submit_*`` whose quorum
        #: confirmation is still owed; drained (one shipping round for
        #: all of them) by :meth:`drain_acks`.  Guarded by `_meta_lock`.
        self._pending_tickets: list[CommitTicket] = []
        self._meta_lock = sanitizer.make_lock("repl.primary.meta")
        self._reader = WALReader(self.wal.directory)
        stored = read_epoch(self.directory)
        if epoch is None:
            epoch = registry.current() if registry is not None else max(stored, 1)
        self.epoch = max(int(epoch), stored)
        if self.epoch != stored:
            write_epoch(self.directory, self.epoch)
        # Stream base: the position a bootstrapping replica must stream
        # from after loading the snapshot this primary serves.
        base = durable.last_checkpoint_position
        if base is None:
            base = first_position(self.wal.directory) or self.wal.tail_position()
        self._base: WALPosition = base
        # Stamp the tenure into the stream before any data record.
        self.wal.log_epoch(self.epoch)

    # -- plumbing ------------------------------------------------------

    @property
    def wal(self) -> "WriteAheadLog":
        return self.durable.wal

    @property
    def directory(self) -> Path:
        return self.durable.directory

    @property
    def tree(self) -> Any:
        return self.durable.tree

    @property
    def layout(self) -> str:
        """Leaf storage layout of the replicated tree."""
        return self.durable.layout

    def tail_position(self) -> WALPosition:
        return self.wal.tail_position()

    # -- replica management --------------------------------------------

    def attach(self, replica: "Replica") -> None:
        """Register a replica as a synchronous-ack target."""
        if replica not in self._replicas:
            self._replicas.append(replica)

    def detach(self, replica: "Replica") -> None:
        if replica in self._replicas:
            self._replicas.remove(replica)

    @property
    def replicas(self) -> tuple:
        return tuple(self._replicas)

    # -- fencing -------------------------------------------------------

    def fence(self, epoch: int) -> None:
        """Decree from the coordinator: ``epoch`` has been elected."""
        if epoch > self.epoch:
            self.fenced = True
            self.fenced_by = epoch

    def _check_leadership(self) -> None:
        if self.fenced:
            self.writes_rejected += 1
            raise FencedError(
                f"{self.node_id} (epoch {self.epoch}) was fenced by "
                f"epoch {self.fenced_by}"
            )
        if self.registry is None:
            return
        try:
            current = self.registry.current_for(self.node_id)
        except TransportError as exc:
            # Fail safe: a primary that cannot confirm its lease must
            # not acknowledge writes (it may already be deposed).
            self.writes_rejected += 1
            raise FencedError(
                f"{self.node_id} cannot confirm epoch {self.epoch}: {exc}"
            ) from exc
        if current != self.epoch:
            self.fenced = True
            self.fenced_by = current
            self.writes_rejected += 1
            raise FencedError(
                f"{self.node_id} (epoch {self.epoch}) superseded by "
                f"epoch {current}"
            )

    # -- writes --------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> None:
        """Fenced, locally durable, and (in sync mode) replicated upsert."""
        self._check_leadership()
        self.durable.insert(key, value)
        self._await_acks()

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def delete(self, key: Any) -> bool:
        self._check_leadership()
        existed = self.durable.delete(key)
        self._await_acks()
        return existed

    def insert_many(self, items: Iterable[tuple]) -> int:
        self._check_leadership()
        added = self.durable.insert_many(items)
        self._await_acks()
        return added

    # -- pipelined writes ----------------------------------------------

    def submit_insert(self, key: Any, value: Any = None) -> CommitTicket:
        """Pipelined fenced upsert: returns the local-durability ticket.

        Leadership is checked *at submit* (a fenced primary must not
        even enqueue).  The ticket resolves at local durability — under
        ``fsync="group"``, when the batch's fsync returns.  In sync
        mode (``required_acks > 0``) the write is quorum-confirmed only
        at the next :meth:`drain_acks`, which ships **one** catch-up
        round for every ticket submitted since the last drain — that is
        how quorum acks amortize over group-commit batch boundaries.
        """
        self._check_leadership()
        ticket = self.durable.submit_insert(key, value)
        self._track_ticket(ticket)
        return ticket

    def submit_delete(self, key: Any) -> CommitTicket:
        """Pipelined fenced delete; ``result()`` is whether it existed."""
        self._check_leadership()
        ticket = self.durable.submit_delete(key)
        self._track_ticket(ticket)
        return ticket

    def submit_many(self, items: Iterable[tuple]) -> CommitTicket:
        """Pipelined fenced batched upsert (one WAL record)."""
        self._check_leadership()
        ticket = self.durable.submit_many(items)
        self._track_ticket(ticket)
        return ticket

    def _track_ticket(self, ticket: CommitTicket) -> None:
        if self.required_acks <= 0:
            return
        with self._meta_lock:
            self._pending_tickets.append(ticket)

    def drain_acks(self, timeout: Optional[float] = None) -> int:
        """Await local durability of every pending submit, then run one
        quorum round covering all of them.

        ``timeout`` bounds the whole drain (local waits + quorum round);
        when ``None`` it falls back to the primary's ``ack_deadline``
        (which may itself be ``None`` = unbounded).  Returns the number
        of tickets drained.  Raises the first ticket's failure (never
        acked), :class:`FencedError`, :class:`AckQuorumError`, or —
        when the bound trips during the quorum round —
        :class:`QuorumTimeoutError`, exactly as the synchronous write
        path would; the replica catch-up cost is paid once per drain,
        not once per write.
        """
        if timeout is None:
            timeout = self.ack_deadline
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._meta_lock:
            pending = self._pending_tickets
            self._pending_tickets = []
        for ticket in pending:
            remaining = (
                None
                if deadline is None
                else max(0.001, deadline - time.monotonic())
            )
            ticket.wait(remaining)
        if pending:
            self._check_leadership()
            self._await_acks(deadline)
        return len(pending)

    def _await_acks(self, deadline: Optional[float] = None) -> None:
        if self.required_acks <= 0:
            return
        if deadline is None and self.ack_deadline is not None:
            deadline = time.monotonic() + self.ack_deadline
        self.ack_rounds += 1
        target = self.wal.tail_position()
        acks = 0
        timed_out = False
        for replica in list(self._replicas):
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                break
            try:
                if replica.epoch != self.epoch:
                    # The replica's cursor belongs to a different tenure;
                    # positions are not comparable across primaries, so a
                    # catch_up early-exit would be meaningless.  Force a
                    # poll — it re-bootstraps into this tenure (or raises
                    # StaleEpochError when *we* are the deposed one).
                    replica.poll()
                    if replica.epoch != self.epoch:
                        continue
                replica.catch_up(target, deadline=deadline)
                acks += 1
            except (TransportError, ReplicationError, failpoints.FailpointError):
                continue
            if acks >= self.required_acks:
                return
        if timed_out or (
            deadline is not None and time.monotonic() >= deadline
        ):
            self.quorum_timeouts += 1
            raise QuorumTimeoutError(
                f"write durable locally but only {acks}/"
                f"{self.required_acks} required replicas confirmed "
                f"within the ack deadline",
                acks=acks,
                required=self.required_acks,
            )
        raise AckQuorumError(
            f"write durable locally but replicated to {acks}/"
            f"{self.required_acks} required replicas",
            acks=acks,
            required=self.required_acks,
        )

    # -- reads (delegation) --------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        return self.durable.get(key, default)

    def __getitem__(self, key: Any) -> Any:
        return self.durable[key]

    def __contains__(self, key: Any) -> bool:
        return key in self.durable

    def get_many(self, keys: Iterable[Any], default: Any = None) -> list[Any]:
        return self.durable.get_many(keys, default)

    def range_query(self, start: Any, end: Any) -> list[tuple[Any, Any]]:
        return self.durable.range_query(start, end)

    def range_iter(self, start: Any, end: Any) -> Iterator[tuple]:
        """Lazy range scan over the locally durable tree.  Like every
        read on the primary it is served unfenced — reads never need the
        epoch check because they acknowledge nothing."""
        return self.durable.range_iter(start, end)

    def items(self) -> Iterable[tuple[Any, Any]]:
        return self.durable.items()

    def __len__(self) -> int:
        return len(self.durable)

    def check(self, check_min_fill: bool = False) -> list[str]:
        return self.durable.check(check_min_fill=check_min_fill)

    def scrub(self) -> ScrubReport:
        return self.durable.scrub()

    # -- serving the stream --------------------------------------------

    def snapshot_payload(self) -> SnapshotPayload:
        """Bootstrap payload: snapshot bytes + the stream base position.

        Consistent pair: the base only moves at :meth:`checkpoint`,
        which replaces the snapshot and updates the base under the same
        lock this read takes.
        """
        with self._meta_lock:
            base = self._base
            snap = self.durable.snapshot_path
            data = snap.read_bytes() if snap.exists() else None
        return SnapshotPayload(data=data, base=base, epoch=self.epoch)

    def fetch_records(
        self,
        position: WALPosition,
        *,
        max_records: int = 512,
        max_bytes: int = 1 << 20,
    ) -> FetchResult:
        """Serve records from ``position``; ``truncated`` when the
        position falls outside the retained WAL window."""
        failpoints.fire("repl.ship_record")
        with self._meta_lock:
            base = self._base
        tail = self.wal.tail_position()
        if position < base or position > tail:
            return FetchResult(
                records=[], position=position, epoch=self.epoch,
                tail=tail, truncated=True,
            )
        try:
            try:
                records, resume = self._reader.read(
                    position, max_records=max_records, max_bytes=max_bytes
                )
            except WALTruncatedError:
                # position == base whose segment a checkpoint deleted:
                # nothing exists between the base and the earliest
                # surviving byte, so skip the cursor ahead rather than
                # re-bootstrap.
                restart = first_position(self.wal.directory)
                if restart is None:
                    # Truncate emptied the directory and no append has
                    # recreated a segment yet: everything at or below
                    # the base is in the snapshot, so the cursor jumps
                    # straight to the tail.
                    return FetchResult(
                        records=[], position=tail, epoch=self.epoch,
                        tail=tail, lag_bytes=0, truncated=False,
                    )
                if restart < position:
                    return FetchResult(
                        records=[], position=position, epoch=self.epoch,
                        tail=tail, truncated=True,
                    )
                records, resume = self._reader.read(
                    restart, max_records=max_records, max_bytes=max_bytes
                )
        except WALStreamError:
            # Bit rot below the tail, caught while *serving*: the bytes
            # on disk are damaged, but the live tree applied every one
            # of those records before they rotted.  Checkpoint — a fresh
            # snapshot of authoritative state plus a WAL truncate — is a
            # complete repair; answering ``truncated`` sends the replica
            # to that snapshot instead of the corrupt range.
            self.stream_repairs += 1
            self.checkpoint()
            return FetchResult(
                records=[], position=position, epoch=self.epoch,
                tail=self.wal.tail_position(), truncated=True,
            )
        self.batches_served += 1
        self.records_served += len(records)
        return FetchResult(
            records=records,
            position=resume,
            epoch=self.epoch,
            tail=tail,
            lag_bytes=self._reader.bytes_behind(resume),
            truncated=False,
        )

    # -- lifecycle -----------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot + WAL truncate, then advance the stream base."""
        count = self.durable.checkpoint()
        with self._meta_lock:
            self._base = self.durable.last_checkpoint_position
        return count

    def kill(self) -> None:
        """Simulate process death: transports refuse, nothing flushes.

        The WAL's group flusher (if any) is aborted without a final
        flush — queued records die with the process."""
        self.alive = False
        self.durable.abort()

    def close(self) -> None:
        self.durable.close()

    def __enter__(self) -> "Primary":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if exc_info[0] is not None and issubclass(
            exc_info[0], failpoints.SimulatedCrash
        ):
            return
        self.close()
