"""``quit-serve`` — serve a durable tree over the network, and talk to one.

Server side::

    quit-serve serve /var/lib/quit/state --port 7421 --fsync group

recovers the directory, binds, and serves until SIGTERM/SIGINT, then
performs a **graceful drain**: stop accepting, settle every in-flight
ticket, checkpoint, exit 0.  ``--replicas K --required-acks Q`` serves
the directory as a replication primary with in-process replicas (demo /
test topology, like ``quit-durability replicate``), with ``--ack-deadline``
bounding every quorum wait.

Client side (against a running server)::

    quit-serve put  HOST:PORT KEY VALUE
    quit-serve get  HOST:PORT KEY
    quit-serve del  HOST:PORT KEY
    quit-serve scan HOST:PORT START END [--limit N]
    quit-serve status HOST:PORT

Keys and values are parsed as Python literals when possible (``42`` is
an int) and fall back to strings, matching what the tree stores.
"""

from __future__ import annotations

import argparse
import ast
import asyncio
import os
import signal
import sys
from pathlib import Path
from typing import Any, Optional, Sequence, TextIO

from ..bench.harness import VARIANTS
from ..core import DurableTree, TreeConfig
from .client import NetError, QuitClient
from .server import QuitServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quit-serve",
        description="Serve a QuIT durability directory over a socket, "
                    "or run client ops against a running server.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    srv = sub.add_parser(
        "serve",
        help="recover DIR and serve it until SIGTERM/SIGINT "
             "(then drain: settle tickets, checkpoint, exit 0)",
    )
    srv.add_argument("directory", type=Path)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default: 0 = pick a free one, printed)",
    )
    srv.add_argument(
        "--variant", default="QuIT", choices=sorted(VARIANTS),
        help="tree variant to recover into (default: QuIT)",
    )
    srv.add_argument(
        "--leaf-capacity", type=int, default=None,
        help="node capacity override (default: from the snapshot)",
    )
    srv.add_argument(
        "--fsync", default="group",
        choices=["always", "interval", "none", "group"],
        help="WAL fsync policy (default: group — pipelined requests "
             "coalesce into one fsync per batch)",
    )
    srv.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission budget: concurrent requests (default: 64)",
    )
    srv.add_argument(
        "--queue-high-water", type=int, default=256,
        help="waiting requests beyond which arrivals are shed "
             "(default: 256)",
    )
    srv.add_argument(
        "--queue-wait", type=float, default=1.0,
        help="queue deadline: max seconds a request may wait for an "
             "admission slot (default: 1.0)",
    )
    srv.add_argument(
        "--replicas", type=int, default=0,
        help="attach N in-process replicas (demo/test topology)",
    )
    srv.add_argument(
        "--required-acks", type=int, default=0,
        help="replica acks required before a write is acknowledged",
    )
    srv.add_argument(
        "--ack-deadline", type=float, default=None,
        help="seconds to wait for the ack quorum before degrading to "
             "QuorumTimeoutError (default: wait without bound)",
    )
    srv.add_argument(
        "--chaos-admin", action="store_true",
        help="enable the OP_ADMIN fault-injection surface "
             "(test harnesses only)",
    )

    def add_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("address", help="server address, HOST:PORT")
        p.add_argument(
            "--deadline", type=float, default=5.0,
            help="per-request wall-clock budget in seconds "
                 "(default: 5.0)",
        )

    g = sub.add_parser("get", help="look one key up")
    add_client_args(g)
    g.add_argument("key")

    p = sub.add_parser("put", help="upsert one key (idempotent retry)")
    add_client_args(p)
    p.add_argument("key")
    p.add_argument("value")

    d = sub.add_parser("del", help="delete one key")
    add_client_args(d)
    d.add_argument("key")

    sc = sub.add_parser("scan", help="range scan [START, END]")
    add_client_args(sc)
    sc.add_argument("start")
    sc.add_argument("end")
    sc.add_argument(
        "--limit", type=int, default=0,
        help="stop after N items (default: 0 = no limit)",
    )

    st = sub.add_parser("status", help="server status + net_* counters")
    add_client_args(st)

    return parser


def _literal(text: str) -> Any:
    """CLI operand -> tree key/value: literal when parseable, else str."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _address(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad address {text!r}: expected HOST:PORT")
    return host, int(port)


def _config(args: argparse.Namespace) -> Optional[TreeConfig]:
    if args.leaf_capacity is None:
        return None
    return TreeConfig(
        leaf_capacity=args.leaf_capacity,
        internal_capacity=args.leaf_capacity,
    )


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------

def cmd_serve(args: argparse.Namespace, out: TextIO) -> int:
    tree_class = VARIANTS[args.variant]
    durable, report = DurableTree.recover(
        args.directory, tree_class, _config(args), fsync=args.fsync
    )
    replicas = []
    if args.replicas > 0:
        from ..replication import InProcessTransport, Primary, Replica

        backend: Any = Primary(
            durable,
            node_id="primary",
            required_acks=args.required_acks,
            ack_deadline=args.ack_deadline,
        )
        replica_root = args.directory.parent / (
            args.directory.name + "-replicas"
        )
        for i in range(args.replicas):
            replica = Replica(
                replica_root / f"replica{i}",
                InProcessTransport(backend),
                tree_class=tree_class,
                name=f"replica{i}",
            )
            replica.bootstrap()
            backend.attach(replica)
            replicas.append(replica)
    else:
        backend = durable

    async def _serve() -> int:
        server = QuitServer(
            backend,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            queue_high_water=args.queue_high_water,
            queue_wait=args.queue_wait,
            admin=args.chaos_admin,
        )
        server.replicas = replicas
        await server.start()
        loop = asyncio.get_running_loop()

        def _drain() -> None:  # pragma: no cover - signal context
            loop.create_task(server.drain())

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _drain)
            except (NotImplementedError, ValueError, RuntimeError):
                try:
                    signal.signal(
                        sig, lambda *_: server.request_drain_threadsafe()
                    )
                except ValueError:
                    pass  # non-main thread (test runner): no signals
        print(
            f"serving {args.directory} ({args.variant}, "
            f"{len(backend)} entries, {len(replicas)} replica(s)) "
            f"on {server.host}:{server.port}",
            file=out,
        )
        print(f"serving until SIGTERM/SIGINT (pid {os.getpid()})", file=out)
        out.flush()
        await server.serve_until_drained()
        return server.stats.net_drained_tickets

    try:
        settled = asyncio.run(_serve())
    finally:
        close = getattr(backend, "close", None)
        if close is not None:
            close()
        for replica in replicas:
            replica.close()
    print(
        f"graceful drain: settled {settled} in-flight request(s); "
        "checkpointed; WAL truncated",
        file=out,
    )
    return 0


# ----------------------------------------------------------------------
# client subcommands
# ----------------------------------------------------------------------

def _client(args: argparse.Namespace) -> QuitClient:
    host, port = _address(args.address)
    return QuitClient(host, port, deadline=args.deadline)


def cmd_get(args: argparse.Namespace, out: TextIO) -> int:
    with _client(args) as client:
        sentinel = object()
        value = client.get(_literal(args.key), sentinel)
    if value is sentinel:
        print("(missing)", file=out)
        return 1
    print(repr(value), file=out)
    return 0


def cmd_put(args: argparse.Namespace, out: TextIO) -> int:
    with _client(args) as client:
        ack = client.insert_acked(_literal(args.key), _literal(args.value))
    print(
        f"ok applied={ack.applied} deduped={ack.deduped} "
        f"boot={ack.boot_id:08x}",
        file=out,
    )
    return 0


def cmd_del(args: argparse.Namespace, out: TextIO) -> int:
    with _client(args) as client:
        existed = client.delete(_literal(args.key))
    print(f"ok existed={existed}", file=out)
    return 0


def cmd_scan(args: argparse.Namespace, out: TextIO) -> int:
    shown = 0
    with _client(args) as client:
        for key, value in client.range_iter(
            _literal(args.start), _literal(args.end)
        ):
            print(f"{key!r}\t{value!r}", file=out)
            shown += 1
            if args.limit and shown >= args.limit:
                break
    print(f"({shown} item(s))", file=out)
    return 0


def cmd_status(args: argparse.Namespace, out: TextIO) -> int:
    with _client(args) as client:
        status = client.status()
    stats = status.pop("stats", {})
    for key in sorted(status):
        print(f"{key:<22} {status[key]}", file=out)
    for key in sorted(stats):
        print(f"stats.{key:<16} {stats[key]}", file=out)
    return 0


COMMANDS = {
    "serve": cmd_serve,
    "get": cmd_get,
    "put": cmd_put,
    "del": cmd_del,
    "scan": cmd_scan,
    "status": cmd_status,
}


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args, out)
    except NetError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=out)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
