"""Network tier: serve a durable QuIT over a socket, robustly.

``repro.net`` is the RPC boundary of the stack: a length-prefixed
binary protocol (:mod:`~repro.net.protocol`), an asyncio server with
admission control and graceful drain (:mod:`~repro.net.server`,
:mod:`~repro.net.admission`), and a resilient synchronous client with
deadlines, idempotent retries, and typed refusals
(:mod:`~repro.net.client`).  The ``quit-serve`` CLI
(:mod:`~repro.net.cli`) wraps both ends.
"""

from .admission import (
    AdmissionController,
    QueueDeadlineError,
    ServerStats,
    ShedError,
)
from .client import (
    Ack,
    DeadlineError,
    NetError,
    QuitClient,
    RequestError,
    RetriesExhaustedError,
    ServerFencedError,
    ServerReadOnlyError,
    TransientNetworkError,
)
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import BackgroundServer, QuitServer

__all__ = [
    "Ack",
    "AdmissionController",
    "BackgroundServer",
    "DeadlineError",
    "NetError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueDeadlineError",
    "QuitClient",
    "QuitServer",
    "RequestError",
    "RetriesExhaustedError",
    "ServerFencedError",
    "ServerReadOnlyError",
    "ServerStats",
    "ShedError",
    "TransientNetworkError",
]
