"""Admission control for the network tier: budgets, shedding, queues.

The FB+-tree lesson applied at the RPC boundary: the slow path must
never stall the fast path.  Here that means a request the server cannot
start promptly is **refused fast** — a cheap ``RETRY_LATER`` with an
advisory backoff — instead of being queued without bound until every
client's deadline has silently expired and the work is done for nobody.

Three regimes, in order of consultation:

1. **shed** — the waiting queue is at/past ``queue_high_water`` (or the
   server is draining): refuse immediately, before any tree work, with
   an advisory backoff that grows with queue depth;
2. **queue** — a free slot is likely soon: wait for one, but never past
   the request's own deadline budget nor ``queue_wait`` (the *queue
   deadline* — a bound on how stale admitted work may be);
3. **admit** — an in-flight slot is held until :meth:`release`; the
   concurrent-admissions high-water mark is the ``net_inflight_max``
   stat the overload tests pin the budget with.

Everything here runs on the server's event loop thread, so the state
needs no locks (and adds none to ``LOCK_ORDER``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, fields


class ShedError(RuntimeError):
    """The request was refused at admission (load shed or draining).

    ``advisory`` is the backoff (seconds) the server suggests before a
    retry; clients treat it as a floor under their own backoff.
    """

    def __init__(self, reason: str, advisory: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.advisory = advisory


class QueueDeadlineError(RuntimeError):
    """The request's deadline budget expired while waiting for a slot."""


@dataclass
class ServerStats:
    """Counters for one :class:`~repro.net.server.QuitServer` life.

    The ``net_*`` family mirrors the tree's ``TreeStats`` discipline:
    work-proportional counters, written only with declared field names
    (the ``stats-parity`` lint rule audits every write site).

    Attributes:
        net_connections: connections accepted over this server's life.
        net_requests: request frames admitted into a handler (sheds and
            protocol errors are counted separately, not here).
        net_reads: read-family ops served (get/get_many/scan/count/len).
        net_writes: mutation ops that reached the apply path.
        net_applied: mutations actually applied (writes minus dedups
            and refusals).
        net_dedup_hits: mutations answered from the idempotency table —
            a retry of an already-applied request, not re-applied.
        net_sheds: requests refused fast with ``RETRY_LATER`` (queue
            past high water, or draining).
        net_queue_waits: admissions that had to wait for a slot.
        net_deadline_refusals: requests refused because their deadline
            budget expired (at admission or before the ack settled).
        net_readonly_refusals: mutations refused because the store is
            read-only/failed (reads kept serving).
        net_fenced_refusals: mutations refused because this node was
            fenced by a newer epoch.
        net_quorum_refusals: mutations locally durable but refused an
            ack because the replica quorum could not confirm in time.
        net_errors: internal errors surfaced as ``ST_INTERNAL``.
        net_protocol_errors: frames rejected before dispatch.
        net_admin_ops: admin (chaos-control) ops served.
        net_inflight_max: high-water mark of concurrently admitted
            requests — never exceeds the configured budget.
        net_queued_max: high-water mark of requests waiting for a slot.
        net_drained_tickets: in-flight requests settled by a graceful
            drain before the listener shut down.
    """

    net_connections: int = 0
    net_requests: int = 0
    net_reads: int = 0
    net_writes: int = 0
    net_applied: int = 0
    net_dedup_hits: int = 0
    net_sheds: int = 0
    net_queue_waits: int = 0
    net_deadline_refusals: int = 0
    net_readonly_refusals: int = 0
    net_fenced_refusals: int = 0
    net_quorum_refusals: int = 0
    net_errors: int = 0
    net_protocol_errors: int = 0
    net_admin_ops: int = 0
    net_inflight_max: int = 0
    net_queued_max: int = 0
    net_drained_tickets: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (STATUS responses, reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class AdmissionController:
    """Bounded in-flight budget with queue deadlines and load shedding.

    Args:
        max_inflight: concurrent requests allowed past admission.
        queue_high_water: waiting requests beyond which new arrivals
            are shed instead of queued.
        queue_wait: the queue deadline — the longest any request may
            wait for a slot regardless of its own (longer) budget.
        advisory_base: floor of the advisory backoff handed to shed
            clients; scaled up with queue depth.
    """

    def __init__(
        self,
        *,
        max_inflight: int = 64,
        queue_high_water: int = 256,
        queue_wait: float = 1.0,
        advisory_base: float = 0.05,
        stats: ServerStats,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        if queue_high_water < 0:
            raise ValueError(
                f"queue_high_water must be >= 0, got {queue_high_water}"
            )
        self.max_inflight = max_inflight
        self.queue_high_water = queue_high_water
        self.queue_wait = queue_wait
        self.advisory_base = advisory_base
        self.stats = stats
        self.draining = False
        self._inflight = 0
        self._queued = 0
        self._sem = asyncio.Semaphore(max_inflight)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return self._queued

    def advisory(self) -> float:
        """Suggested client backoff, proportional to the backlog."""
        depth = self._queued + self._inflight
        capacity = self.max_inflight + max(1, self.queue_high_water)
        return self.advisory_base * (1.0 + 4.0 * depth / capacity)

    async def admit(self, deadline: float) -> None:
        """Admit one request or refuse it; ``deadline`` is absolute
        (``time.monotonic()`` scale).

        Raises :class:`ShedError` (queue full / draining / queue
        deadline hit with budget left) or :class:`QueueDeadlineError`
        (the request's own budget expired while waiting).
        """
        stats = self.stats
        if self.draining:
            stats.net_sheds += 1
            raise ShedError("draining", self.advisory_base)
        # A request "would wait" when no slot is free OR someone is
        # already queued (a momentarily free slot belongs to the queue,
        # not to the newcomer).  Only those are measured against the
        # high water — ``queue_high_water=0`` therefore means "never
        # queue": admit straight into free slots, shed the rest.
        if (self._sem.locked() or self._queued > 0) and (
            self._queued >= self.queue_high_water
        ):
            stats.net_sheds += 1
            raise ShedError("queue past high water", self.advisory())
        budget = deadline - time.monotonic()
        if budget <= 0:
            stats.net_deadline_refusals += 1
            raise QueueDeadlineError("deadline expired before admission")
        if self._sem.locked():
            stats.net_queue_waits += 1
        self._queued += 1
        if self._queued > stats.net_queued_max:
            stats.net_queued_max = self._queued
        try:
            wait = min(budget, self.queue_wait)
            try:
                await asyncio.wait_for(self._sem.acquire(), wait)
            except asyncio.TimeoutError:
                if deadline - time.monotonic() <= 0:
                    stats.net_deadline_refusals += 1
                    raise QueueDeadlineError(
                        "deadline expired waiting for an admission slot"
                    ) from None
                # Budget remains but the queue deadline tripped: the
                # backlog is too old to keep growing — shed.
                stats.net_sheds += 1
                raise ShedError(
                    f"no admission slot within {self.queue_wait}s",
                    self.advisory(),
                ) from None
        finally:
            self._queued -= 1
        self._inflight += 1
        if self._inflight > stats.net_inflight_max:
            stats.net_inflight_max = self._inflight
        if self.draining:
            # Drain began while this request waited: hand the slot back
            # rather than starting work the shutdown must then outwait.
            self.release()
            stats.net_sheds += 1
            raise ShedError("draining", self.advisory_base)

    def release(self) -> None:
        """Return an admitted request's slot."""
        self._inflight -= 1
        self._sem.release()
