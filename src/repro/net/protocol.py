"""Length-prefixed binary wire protocol for the QuIT network tier.

Everything on the wire is framed with stdlib ``struct`` — no
third-party serialization.  Payloads reuse the WAL's encoding idiom:
the ``repr`` of a Python literal, parsed back with
``ast.literal_eval``, so exactly the key/value types the tree itself
round-trips (ints, floats, strings, bytes, tuples, ...) travel the
wire, and nothing else can (``literal_eval`` never executes code).

Frames
------

Request (client -> server)::

    !I   frame length (bytes after this field)
    !B   opcode (OP_*)
    !Q   request id — the idempotency id: unique per *logical* request,
         reused verbatim on every retry of it
    !d   deadline budget in seconds (remaining time the client is
         willing to wait; the server refuses work it cannot finish
         inside the budget instead of doing it for nobody)
    ...  payload (repr literal, UTF-8)

Response (server -> client)::

    !I   frame length
    !B   status (ST_*)
    !Q   request id being answered (responses may be interleaved under
         pipelining; clients match by id, never by order)
    !I   server boot id (random per process start: lets a client — and
         the chaos harness — tell server tenures apart)
    !B   flags (FLAG_APPLIED / FLAG_DEDUPED)
    ...  payload

Every mutation is an upsert or a delete, so retrying one is
*state*-idempotent even without the server's dedup table; the table's
job is to also preserve the **logical result** (``delete``'s
existed-bool, ``insert_many``'s added-count) across at-least-once
delivery, making the retry invisible to the caller.
"""

from __future__ import annotations

import ast
import struct
from typing import TYPE_CHECKING, Any, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio
    import socket

#: Protocol revision; bumped on any frame-layout change.
PROTOCOL_VERSION = 1

#: Hard per-frame cap: a frame length beyond this is a protocol error,
#: not an allocation request (defends both sides against garbage).
MAX_FRAME = 16 * 1024 * 1024

_LEN = struct.Struct("!I")
_REQ_HEAD = struct.Struct("!BQd")
_RESP_HEAD = struct.Struct("!BQIB")

# -- opcodes -----------------------------------------------------------

OP_GET = 1
OP_PUT = 2
OP_DELETE = 3
OP_GET_MANY = 4
OP_PUT_MANY = 5
OP_SCAN = 6
OP_COUNT = 7
OP_LEN = 8
OP_STATUS = 9
OP_CHECK = 10
OP_SCRUB = 11
#: Test/chaos control surface; refused unless the server was started
#: with ``admin=True`` (the soak harness's fault-injection side channel).
OP_ADMIN = 12

#: Opcodes that mutate state — the only ones the dedup table tracks.
MUTATING_OPS = frozenset({OP_PUT, OP_DELETE, OP_PUT_MANY})

#: Human-readable opcode names (logs, errors, stats).
OP_NAMES = {
    OP_GET: "get",
    OP_PUT: "put",
    OP_DELETE: "delete",
    OP_GET_MANY: "get_many",
    OP_PUT_MANY: "put_many",
    OP_SCAN: "scan",
    OP_COUNT: "count",
    OP_LEN: "len",
    OP_STATUS: "status",
    OP_CHECK: "check",
    OP_SCRUB: "scrub",
    OP_ADMIN: "admin",
}

# -- statuses ----------------------------------------------------------

ST_OK = 0
#: Load shed / draining: nothing happened; retry after the advisory
#: backoff carried in the payload ``(advisory_seconds, reason)``.
ST_RETRY_LATER = 1
#: The store is read-only (degraded disk) — reads keep serving, this
#: mutation was refused before any state change.  Clients surface it
#: without retrying (the condition outlives any sane backoff).
ST_READ_ONLY = 2
#: The request's deadline budget expired before the server finished
#: (possibly before it even started).  Nothing was acknowledged.
ST_DEADLINE = 3
#: Malformed frame / unknown op / bad payload shape.
ST_BAD_REQUEST = 4
#: The server hit an unexpected error applying the op.
ST_INTERNAL = 5
#: This node was fenced by a newer epoch — it must not acknowledge
#: writes; clients surface it without retry (retrying the same node
#: cannot help; a director must point them at the new primary).
ST_FENCED = 6

ST_NAMES = {
    ST_OK: "ok",
    ST_RETRY_LATER: "retry_later",
    ST_READ_ONLY: "read_only",
    ST_DEADLINE: "deadline_exceeded",
    ST_BAD_REQUEST: "bad_request",
    ST_INTERNAL: "internal_error",
    ST_FENCED: "fenced",
}

#: Response flag: the mutation was applied by *this* request.
FLAG_APPLIED = 0x01
#: Response flag: a duplicate idempotency id was answered from the
#: dedup table — the original apply's result, no second apply.
FLAG_DEDUPED = 0x02


class ProtocolError(RuntimeError):
    """The peer sent bytes this protocol version cannot accept."""


def encode_payload(obj: Any) -> bytes:
    """Serialize ``obj`` as a round-trippable Python literal."""
    text = repr(obj)
    try:
        if ast.literal_eval(text) != obj:
            raise ValueError("payload does not round-trip")
    except (ValueError, SyntaxError) as exc:
        raise ProtocolError(
            f"payload {type(obj).__name__!r} is not literal-encodable: {exc}"
        ) from exc
    return text.encode("utf-8")


def decode_payload(data: bytes) -> Any:
    """Parse a payload produced by :func:`encode_payload`."""
    if not data:
        return None
    try:
        return ast.literal_eval(data.decode("utf-8"))
    except (ValueError, SyntaxError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable payload: {exc}") from exc


def encode_request(op: int, request_id: int, budget: float, obj: Any) -> bytes:
    """One request frame, length prefix included."""
    payload = encode_payload(obj)
    body = _REQ_HEAD.pack(op, request_id, budget) + payload
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"request frame {len(body)}B exceeds {MAX_FRAME}B")
    return _LEN.pack(len(body)) + body


def decode_request(body: bytes) -> Tuple[int, int, float, Any]:
    """Parse a request frame body -> ``(op, request_id, budget, payload)``."""
    if len(body) < _REQ_HEAD.size:
        raise ProtocolError(f"short request frame ({len(body)}B)")
    op, request_id, budget = _REQ_HEAD.unpack_from(body)
    if op not in OP_NAMES:
        raise ProtocolError(f"unknown opcode {op}")
    return op, request_id, budget, decode_payload(body[_REQ_HEAD.size:])


def encode_response(
    status: int, request_id: int, boot_id: int, flags: int, obj: Any
) -> bytes:
    """One response frame, length prefix included."""
    payload = encode_payload(obj)
    body = _RESP_HEAD.pack(status, request_id, boot_id, flags) + payload
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"response frame {len(body)}B exceeds {MAX_FRAME}B")
    return _LEN.pack(len(body)) + body


def decode_response(body: bytes) -> Tuple[int, int, int, int, Any]:
    """Parse a response body -> ``(status, request_id, boot_id, flags,
    payload)``."""
    if len(body) < _RESP_HEAD.size:
        raise ProtocolError(f"short response frame ({len(body)}B)")
    status, request_id, boot_id, flags = _RESP_HEAD.unpack_from(body)
    if status not in ST_NAMES:
        raise ProtocolError(f"unknown status {status}")
    return status, request_id, boot_id, flags, decode_payload(
        body[_RESP_HEAD.size:]
    )


def read_frame_blocking(sock: socket.socket) -> Optional[bytes]:
    """Read one frame body from a blocking socket.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ConnectionError` on EOF mid-frame (the peer died while
    talking) and :class:`ProtocolError` on an oversized length prefix.
    """
    head = _read_exact(sock, _LEN.size, eof_ok=True)
    if head is None:
        return None
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length}B exceeds {MAX_FRAME}B")
    body = _read_exact(sock, length, eof_ok=False)
    if body is None:  # pragma: no cover - eof_ok=False never returns None
        raise ConnectionError("peer closed mid-frame")
    return body


def _read_exact(sock: socket.socket, n: int, *, eof_ok: bool) -> Optional[bytes]:
    parts = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ConnectionError(
                f"peer closed with {remaining}/{n}B of a frame outstanding"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


async def read_frame_async(
    reader: "asyncio.StreamReader",
) -> Optional[bytes]:
    """Read one frame body from an ``asyncio.StreamReader``.

    Same contract as :func:`read_frame_blocking`.
    """
    import asyncio

    try:
        head = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionError("peer closed mid-length-prefix") from exc
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length}B exceeds {MAX_FRAME}B")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("peer closed mid-frame") from exc
