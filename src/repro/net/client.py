"""``QuitClient``: a resilient synchronous client for ``QuitServer``.

The client mirrors the tree facade surface (``get`` / ``insert`` /
``delete`` / ``get_many`` / ``insert_many`` / ``range_query`` /
``range_iter`` / ``count_range`` / ``check`` / ``scrub``) over the
:mod:`repro.net.protocol` wire format, and makes every call robust
end-to-end:

* **deadlines** — each logical request gets a wall-clock budget
  (``deadline`` seconds, per call or per client); every attempt frames
  the *remaining* budget so the server can refuse work it cannot finish
  in time, and the client never blocks past it;
* **idempotency ids** — one random 64-bit id per logical request,
  reused verbatim on every retry, so the server's dedup table turns
  at-least-once delivery into exactly-once apply;
* **retries** — transient failures (connection reset/refused, read
  timeout, server ``RETRY_LATER`` shed, server-side deadline with
  budget left here) are retried with the storage stack's own
  :class:`~repro.core.health.RetryPolicy` (capped exponential backoff
  under the request deadline).  Typed refusals that retrying cannot fix
  — ``ST_READ_ONLY``, ``ST_FENCED``, bad requests — surface
  immediately as :class:`ServerReadOnlyError` / :class:`ServerFencedError`
  / :class:`RequestError` without burning a single retry.

``RetryPolicy`` only retries transient ``OSError``s, so the transport
layer normalizes every retryable network failure into
:class:`TransientNetworkError` (an ``OSError`` with ``EAGAIN``) before
handing it to the policy; the typed server refusals are *not*
``OSError``s and pass straight through.  When the policy gives up it
raises the stack's ``ReadOnlyError`` — the client converts that into
:class:`RetriesExhaustedError` so callers can tell "my retries ran out"
from "the server is read-only".
"""

from __future__ import annotations

import dataclasses
import errno
import random
import socket
import time
from typing import Any, Iterable, Iterator, NamedTuple, Optional

from ..core.health import ReadOnlyError, RetryPolicy
from . import protocol


class NetError(RuntimeError):
    """Base for every typed client-side network error."""


class DeadlineError(NetError):
    """The request's deadline budget expired without a definitive
    answer.  A mutation may or may not have applied — re-issuing the
    *same logical request* (same client call pattern) is safe because
    retries reuse the idempotency id within a call, but a fresh call is
    a fresh id."""


class RetriesExhaustedError(NetError):
    """Transient failures persisted past the retry policy's attempt and
    deadline budget.  The last transport failure is chained."""


class ServerReadOnlyError(NetError):
    """The server refused the mutation: its store is read-only or
    failed (disk degraded past retry).  Not retried — the condition
    outlives any sane backoff; reads still work."""


class ServerFencedError(NetError):
    """The server refused the mutation: it was fenced by a newer
    epoch.  Not retried — this node will never ack again; a director
    must point the client at the new primary."""


class RequestError(NetError):
    """The server rejected or failed the request for a non-retryable
    reason (malformed payload, internal error)."""


class TransientNetworkError(OSError):
    """A retryable transport-level failure, normalized so
    :class:`~repro.core.health.RetryPolicy` (which retries transient
    ``OSError``s by errno) drives the backoff."""

    def __init__(self, message: str) -> None:
        super().__init__(errno.EAGAIN, message)


class Ack(NamedTuple):
    """Full acknowledgement detail for one mutation (soak-harness
    surface; the plain API methods unwrap ``result``).

    ``applied`` — this delivery performed the apply; ``deduped`` — a
    retry was answered from the server's idempotency table (the apply
    happened on an earlier delivery); ``boot_id`` — the answering
    server tenure; ``request_id`` — the idempotency id used.
    """

    applied: bool
    deduped: bool
    boot_id: int
    request_id: int
    result: Any


#: Client-side retry defaults: more patient than the storage stack's
#: (network blips outlast disk blips) but still deadline-capped.
DEFAULT_RETRY = RetryPolicy(
    attempts=8, base_delay=0.01, max_delay=0.25, deadline=5.0
)


class QuitClient:
    """Synchronous client for a :class:`~repro.net.server.QuitServer`.

    Args:
        host / port: server address.
        deadline: default per-request wall-clock budget (seconds);
            every public method takes a ``deadline=`` override.
        retry: transient-failure policy (attempts/backoff); its
            ``deadline`` field is re-derived per request from the
            request budget.
        connect_timeout: cap on a single TCP connect.
        scan_page: keys fetched per SCAN page by :meth:`range_iter`.

    One socket, lazily (re)connected; any transport error closes it so
    the next attempt starts clean.  Not thread-safe — use one client
    per thread (they are cheap)."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        deadline: float = 5.0,
        retry: RetryPolicy = DEFAULT_RETRY,
        connect_timeout: float = 2.0,
        scan_page: int = 512,
    ) -> None:
        self.host = host
        self.port = port
        self.deadline = deadline
        self.retry = retry
        self.connect_timeout = connect_timeout
        self.scan_page = scan_page
        #: boot id of the last server tenure that answered; the soak
        #: harness watches it change across kills/restarts.
        self.last_boot_id: Optional[int] = None
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def __enter__(self) -> "QuitClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _connected(self, budget: float) -> socket.socket:
        if self._sock is not None:
            return self._sock
        timeout = max(0.001, min(self.connect_timeout, budget))
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        except OSError as exc:
            raise TransientNetworkError(f"connect failed: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def _exchange(
        self, op: int, request_id: int, payload: Any, deadline: float
    ) -> tuple[int, int, Any]:
        """One attempt: send one frame, read until its response.

        Any transport failure closes the socket and surfaces as
        :class:`TransientNetworkError`; returns ``(status, flags,
        payload)`` and records the answering boot id."""
        budget = deadline - time.monotonic()
        if budget <= 0:
            raise DeadlineError(
                f"deadline expired before sending "
                f"{protocol.OP_NAMES.get(op, op)}"
            )
        sock = self._connected(budget)
        frame = protocol.encode_request(op, request_id, budget, payload)
        try:
            sock.settimeout(max(0.001, budget))
            sock.sendall(frame)
            while True:
                body = protocol.read_frame_blocking(sock)
                if body is None:
                    raise ConnectionError("server closed the connection")
                status, rid, boot_id, flags, resp = protocol.decode_response(
                    body
                )
                if rid != request_id and rid != 0:
                    continue  # stale response from an earlier attempt
                self.last_boot_id = boot_id
                return status, flags, resp
        except (ConnectionError, TimeoutError, socket.timeout) as exc:
            self.close()
            raise TransientNetworkError(f"transport failure: {exc}") from exc
        except OSError as exc:
            self.close()
            if exc.errno in (errno.EPIPE, errno.ECONNRESET, errno.ECONNABORTED):
                raise TransientNetworkError(
                    f"transport failure: {exc}"
                ) from exc
            raise

    # ------------------------------------------------------------------
    # Request core: deadline + idempotency id + retry policy
    # ------------------------------------------------------------------

    def request(
        self, op: int, payload: Any, *, deadline: Optional[float] = None
    ) -> Ack:
        """Issue one logical request with full robustness semantics.

        Allocates the idempotency id, then drives attempts through the
        retry policy until an answer, a typed refusal, or the deadline.
        Raises the typed errors documented on this module; returns an
        :class:`Ack` on success.
        """
        budget = self.deadline if deadline is None else deadline
        until = time.monotonic() + budget
        request_id = random.getrandbits(63) | 1
        policy = dataclasses.replace(self.retry, deadline=budget)

        def attempt() -> Ack:
            status, flags, resp = self._exchange(op, request_id, payload, until)
            if status == protocol.ST_OK:
                return Ack(
                    applied=bool(flags & protocol.FLAG_APPLIED),
                    deduped=bool(flags & protocol.FLAG_DEDUPED),
                    boot_id=self.last_boot_id or 0,
                    request_id=request_id,
                    result=resp,
                )
            if status == protocol.ST_RETRY_LATER:
                advisory, reason = resp
                remaining = until - time.monotonic()
                if remaining <= 0:
                    raise DeadlineError(f"shed and out of budget: {reason}")
                # Honor the server's advisory as a floor under the
                # policy's own backoff, without blowing the budget.
                time.sleep(min(float(advisory), max(0.0, remaining - 0.001)))
                raise TransientNetworkError(f"server shed load: {reason}")
            if status == protocol.ST_DEADLINE:
                if until - time.monotonic() > 0:
                    # The *server* refused for time (queue wait, fsync
                    # stall) but our budget remains: retrying the same
                    # id is safe and may land on a less loaded moment.
                    raise TransientNetworkError(
                        f"server-side deadline: {resp}"
                    )
                raise DeadlineError(str(resp))
            if status == protocol.ST_READ_ONLY:
                raise ServerReadOnlyError(str(resp))
            if status == protocol.ST_FENCED:
                raise ServerFencedError(str(resp))
            raise RequestError(
                f"{protocol.ST_NAMES.get(status, status)}: {resp}"
            )

        try:
            return policy.run(attempt)
        except ReadOnlyError as exc:
            # The policy's exhaustion signal, not a server refusal
            # (that one is ServerReadOnlyError and skips the policy).
            raise RetriesExhaustedError(
                f"{protocol.OP_NAMES.get(op, op)} still failing after "
                f"{policy.attempts} attempt(s) / {budget:.3f}s"
            ) from (exc.__cause__ or exc)

    # ------------------------------------------------------------------
    # Read surface (mirrors the tree facade)
    # ------------------------------------------------------------------

    def get(self, key: Any, default: Any = None, *,
            deadline: Optional[float] = None) -> Any:
        found, value = self.request(protocol.OP_GET, key, deadline=deadline).result
        return value if found else default

    def __getitem__(self, key: Any) -> Any:
        found, value = self.request(protocol.OP_GET, key).result
        if not found:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        found, _ = self.request(protocol.OP_GET, key).result
        return bool(found)

    def get_many(self, keys: Iterable[Any], default: Any = None, *,
                 deadline: Optional[float] = None) -> list:
        payload = (list(keys), default)
        return list(
            self.request(protocol.OP_GET_MANY, payload, deadline=deadline).result
        )

    def range_iter(self, start: Any, end: Any, *,
                   deadline: Optional[float] = None) -> Iterator[tuple]:
        """Lazy range scan, paged over SCAN requests (each page gets a
        fresh deadline budget; the cursor resumes after the last key)."""
        cursor, exclusive = start, False
        while True:
            items, done = self.request(
                protocol.OP_SCAN,
                (cursor, end, self.scan_page, exclusive),
                deadline=deadline,
            ).result
            for key, value in items:
                yield (key, value)
            if done:
                return
            cursor, exclusive = items[-1][0], True

    def range_query(self, start: Any, end: Any, *,
                    deadline: Optional[float] = None) -> list:
        return list(self.range_iter(start, end, deadline=deadline))

    def count_range(self, start: Any, end: Any, *,
                    deadline: Optional[float] = None) -> int:
        return self.request(
            protocol.OP_COUNT, (start, end), deadline=deadline
        ).result

    def __len__(self) -> int:
        return self.request(protocol.OP_LEN, None).result

    # ------------------------------------------------------------------
    # Mutation surface
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None, *,
               deadline: Optional[float] = None) -> None:
        self.insert_acked(key, value, deadline=deadline)

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def insert_acked(self, key: Any, value: Any = None, *,
                     deadline: Optional[float] = None) -> Ack:
        """Upsert, returning the full :class:`Ack` (the soak harness
        records ``applied``/``deduped``/``boot_id`` per request)."""
        return self.request(protocol.OP_PUT, (key, value), deadline=deadline)

    def delete(self, key: Any, *, deadline: Optional[float] = None) -> bool:
        return bool(self.delete_acked(key, deadline=deadline).result)

    def delete_acked(self, key: Any, *,
                     deadline: Optional[float] = None) -> Ack:
        """Delete, returning the full :class:`Ack`; ``result`` is the
        existed-bool from the apply (preserved across dedup)."""
        return self.request(protocol.OP_DELETE, key, deadline=deadline)

    def insert_many(self, items: Iterable[tuple], *,
                    deadline: Optional[float] = None) -> int:
        """Batched upsert: one frame, one WAL record, one group-commit
        slot server-side.  Returns the number of new keys added (the
        original apply's count, preserved across dedup)."""
        batch = [(k, v) for k, v in items]
        if not batch:
            return 0
        return int(
            self.request(protocol.OP_PUT_MANY, batch, deadline=deadline).result
        )

    # ------------------------------------------------------------------
    # Pipelined ingest (bench / bulk surface)
    # ------------------------------------------------------------------

    def pipeline_insert_many(
        self,
        batches: Iterable[list],
        *,
        window: int = 32,
        deadline: Optional[float] = None,
    ) -> int:
        """Send PUT_MANY frames keeping up to ``window`` outstanding.

        The network analogue of the in-process submit/drain pattern:
        frames stream into the server's admission window and group
        commit batches them; responses (possibly out of order) are
        collected by id.  Returns the summed added-count.  Happy-path
        surface: a transport failure or refusal raises without internal
        retry — bulk loads re-run; they do not need per-frame dedup.
        """
        budget = self.deadline if deadline is None else deadline
        until = time.monotonic() + budget
        outstanding: dict[int, None] = {}
        total = 0

        def reap(block_until_below: int) -> int:
            reaped = 0
            sock = self._sock
            while sock is not None and len(outstanding) > block_until_below:
                remaining = until - time.monotonic()
                if remaining <= 0:
                    raise DeadlineError("pipeline deadline expired")
                sock.settimeout(max(0.001, remaining))
                body = protocol.read_frame_blocking(sock)
                if body is None:
                    raise ConnectionError("server closed mid-pipeline")
                status, rid, boot_id, flags, resp = (
                    protocol.decode_response(body)
                )
                self.last_boot_id = boot_id
                if rid not in outstanding:
                    continue
                del outstanding[rid]
                if status != protocol.ST_OK:
                    raise RequestError(
                        f"pipelined put_many refused: "
                        f"{protocol.ST_NAMES.get(status, status)}: {resp}"
                    )
                reaped += int(resp)
            return reaped

        try:
            for batch in batches:
                remaining = until - time.monotonic()
                if remaining <= 0:
                    raise DeadlineError("pipeline deadline expired")
                sock = self._connected(remaining)
                rid = random.getrandbits(63) | 1
                frame = protocol.encode_request(
                    protocol.OP_PUT_MANY, rid, remaining, list(batch)
                )
                sock.settimeout(max(0.001, remaining))
                sock.sendall(frame)
                outstanding[rid] = None
                if len(outstanding) >= window:
                    total += reap(window - 1)
            total += reap(0)
        except (ConnectionError, TimeoutError, socket.timeout, OSError):
            self.close()
            raise
        return total

    # ------------------------------------------------------------------
    # Introspection / maintenance surface
    # ------------------------------------------------------------------

    def status(self, *, deadline: Optional[float] = None) -> dict:
        return dict(self.request(protocol.OP_STATUS, None, deadline=deadline).result)

    @property
    def layout(self) -> str:
        """Leaf storage layout of the *served* tree (one STATUS round
        trip) — the label benchmark and equivalence tooling key on."""
        return str(self.status()["layout"])

    def check(self, check_min_fill: bool = False, *,
              deadline: Optional[float] = None) -> list[str]:
        del check_min_fill  # the server audits without min-fill, like recovery
        return list(self.request(protocol.OP_CHECK, None, deadline=deadline).result)

    def scrub(self, *, deadline: Optional[float] = None) -> dict:
        return dict(self.request(protocol.OP_SCRUB, None, deadline=deadline).result)

    def admin(self, *command: Any, deadline: Optional[float] = None) -> Any:
        """Chaos-control side channel (server must run ``admin=True``)."""
        return self.request(
            protocol.OP_ADMIN, tuple(command), deadline=deadline
        ).result
