"""``QuitServer``: an asyncio socket front-end over a durable tree.

The server wraps a :class:`~repro.core.durable.DurableTree` (or a
:class:`~repro.replication.primary.Primary`) and speaks the
length-prefixed binary protocol of :mod:`repro.net.protocol`.  Its job
is *end-to-end request robustness* — the storage stack below already
survives crashes, disk faults, and failovers; this layer makes sure the
RPC boundary never converts those slow paths into a stalled fast path:

* **deadlines** — every request carries a budget; work that cannot
  finish inside it is refused (``ST_DEADLINE``), at admission if
  possible, so the server never burns capacity on answers nobody is
  waiting for;
* **admission control** — a bounded in-flight budget with queue
  deadlines and load shedding (:mod:`repro.net.admission`): past high
  water the server answers ``RETRY_LATER`` + advisory backoff in
  microseconds instead of queueing without bound;
* **idempotency** — retried mutations (same request id) are answered
  from a bounded dedup table with the original logical result, so
  at-least-once delivery from the client yields exactly-once apply
  per server tenure (cross-tenure retries re-apply upserts, which the
  WAL already guarantees is a state no-op);
* **pipelined durability** — mutations go through the ``submit_*`` /
  :class:`~repro.core.wal.CommitTicket` surface, so concurrent
  requests' fsyncs coalesce into group-commit batches, and (on a
  ``Primary``) quorum confirmation is amortized: one ``drain_acks``
  round settles every request submitted since the last round;
* **health integration** — a read-only (degraded-disk) store keeps
  serving reads while refusing writes with a typed ``ST_READ_ONLY``
  the client surfaces without retry;
* **graceful drain** — stop accepting, settle every in-flight ticket,
  checkpoint, exit clean (the ``quit-serve`` CLI wires SIGTERM/SIGINT
  into :meth:`QuitServer.request_drain_threadsafe`).

All server state lives on the event-loop thread — no new locks, no new
``LOCK_ORDER`` entries.  The only excursions off the loop are blocking
waits (ticket fsync acks, quorum drains, checkpoint) via the default
executor.
"""

from __future__ import annotations

import asyncio
import collections
import random
import threading
import time
from typing import Any, Optional

from ..concurrency import sanitizer
from ..core.health import ReadOnlyError
from ..core.wal import WALError
from ..testing import iofaults
from . import protocol
from .admission import (
    AdmissionController,
    QueueDeadlineError,
    ServerStats,
    ShedError,
)

#: Budget cap: a client may not park a request on the server for longer
#: than this regardless of the budget it framed (guards the drain and
#: the dedup table against immortal requests).
MAX_BUDGET = 60.0

#: Fallback budget for a frame that carries none (<= 0).
DEFAULT_BUDGET = 5.0

_READ_OPS = frozenset(
    {
        protocol.OP_GET,
        protocol.OP_GET_MANY,
        protocol.OP_SCAN,
        protocol.OP_COUNT,
        protocol.OP_LEN,
    }
)


class QuitServer:
    """Serve a durable tree (or replication primary) over a socket.

    Args:
        backend: a :class:`~repro.core.durable.DurableTree` or
            :class:`~repro.replication.primary.Primary`; anything with
            the ``get/get_many/range_iter/count_range`` read surface
            and the ``submit_insert/submit_delete/submit_many`` write
            surface.
        host / port: bind address (``port=0`` picks a free port,
            published as :attr:`port` after :meth:`start`).
        max_inflight / queue_high_water / queue_wait: admission knobs
            (see :class:`~repro.net.admission.AdmissionController`).
        dedup_capacity: retained idempotency results; oldest entries
            fall out first (a retry older than the window re-applies,
            which upsert/delete semantics absorb).
        scan_limit_max: hard cap on items per SCAN page.
        admin: enable the chaos-control admin opcode (test harnesses
            only — never in production serving).
        checkpoint_on_drain: write a snapshot + truncate the WAL as the
            final drain step, so the next start replays ~nothing.
    """

    def __init__(
        self,
        backend: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        queue_high_water: int = 256,
        queue_wait: float = 1.0,
        dedup_capacity: int = 8192,
        scan_limit_max: int = 4096,
        admin: bool = False,
        checkpoint_on_drain: bool = True,
        drain_timeout: float = 30.0,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self.admin = admin
        self.checkpoint_on_drain = checkpoint_on_drain
        self.drain_timeout = drain_timeout
        self.scan_limit_max = scan_limit_max
        self.boot_id = random.getrandbits(32)
        self.stats = ServerStats()
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            queue_high_water=queue_high_water,
            queue_wait=queue_wait,
            stats=self.stats,
        )
        #: Replicas the CLI attached (admin partition targets).
        self.replicas: list[Any] = []
        self._dedup_capacity = dedup_capacity
        self._dedup: "collections.OrderedDict[int, tuple[int, int, Any]]" = (
            collections.OrderedDict()
        )
        self._inprogress: dict[int, asyncio.Future] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._drain_started = False
        self._drained: Optional[asyncio.Event] = None
        # Quorum amortization (Primary with required_acks > 0): waiters
        # registered between drain rounds are settled by one
        # ``drain_acks`` call each round.
        self._quorum = (
            getattr(backend, "required_acks", 0) > 0
            and hasattr(backend, "drain_acks")
        )
        #: Waiters registered for the next ack round, with their
        #: deadlines so the drain bridge can bound its own wait.
        self._ack_waiters: list[tuple[asyncio.Future, float]] = []
        self._ack_drainer: Optional[asyncio.Task] = None
        # Armed in start() under QUIT_SANITIZE=1: reports loop-thread
        # stalls (blocking work that dodged the executor) as sanitizer
        # violations.
        self._watchdog: Optional[sanitizer.LoopStallWatchdog] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port`."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._watchdog = sanitizer.make_loop_watchdog(self._loop)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_until_drained(self) -> None:
        """Block until a drain (requested via :meth:`drain` or
        :meth:`request_drain_threadsafe`) has fully settled."""
        if self._drained is None:
            raise RuntimeError("server not started")
        await self._drained.wait()

    def request_drain_threadsafe(self) -> None:
        """Schedule a graceful drain from any thread (signal handlers,
        test drivers).  Idempotent."""
        loop = self._loop
        if loop is None:
            raise RuntimeError("server not started")
        loop.call_soon_threadsafe(
            lambda: self._loop.create_task(self.drain())  # type: ignore[union-attr]
        )

    async def drain(self) -> int:
        """Graceful drain: stop accepting, refuse new work, settle every
        in-flight request (tickets included), checkpoint, release.

        Returns the number of in-flight requests that were settled
        (also recorded as ``net_drained_tickets``).  Idempotent; later
        calls return 0 immediately.
        """
        if self._drain_started:
            if self._drained is not None:
                await self._drained.wait()
            return 0
        self._drain_started = True
        self.admission.draining = True
        # 1. Stop accepting new connections.
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # 2. Settle in-flight requests.  New frames on live connections
        #    are already being refused (admission shed: "draining").
        pending = [t for t in self._tasks if not t.done()]
        settled = len(pending)
        if pending:
            done, not_done = await asyncio.wait(
                pending, timeout=self.drain_timeout
            )
            for task in not_done:  # pragma: no cover - requires a hang
                task.cancel()
                settled -= 1
        self.stats.net_drained_tickets += settled
        # 3. Every ticket acked: barrier the WAL and leave a snapshot
        #    behind so restart replays ~nothing.
        if self.checkpoint_on_drain:
            checkpoint = getattr(self.backend, "checkpoint", None)
            if checkpoint is not None:
                loop = asyncio.get_running_loop()
                try:
                    await loop.run_in_executor(None, checkpoint)
                except (ReadOnlyError, WALError, OSError):
                    # A drain on a degraded disk still settles and
                    # exits; the WAL holds everything acked.
                    pass
        # 4. Close lingering connections.
        for writer in list(self._conn_writers):
            try:
                writer.close()
            except Exception:  # pragma: no cover - best effort
                pass
        if self._watchdog is not None:
            self._watchdog.uninstall()
            self._watchdog = None
        if self._drained is not None:
            self._drained.set()
        return settled

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.net_connections += 1
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    body = await protocol.read_frame_async(reader)
                except (
                    protocol.ProtocolError,
                    ConnectionError,
                    asyncio.IncompleteReadError,
                ):
                    self.stats.net_protocol_errors += 1
                    break
                if body is None:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._serve_frame(body, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            self._conn_writers.discard(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover - best effort
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        status: int,
        request_id: int,
        flags: int,
        payload: Any,
    ) -> None:
        frame = protocol.encode_response(
            status, request_id, self.boot_id, flags, payload
        )
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(frame)
            try:
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away; nothing to do with the answer

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    async def _serve_frame(
        self,
        body: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            op, request_id, budget, payload = protocol.decode_request(body)
        except protocol.ProtocolError as exc:
            self.stats.net_protocol_errors += 1
            await self._respond(
                writer, write_lock, protocol.ST_BAD_REQUEST, 0, 0, str(exc)
            )
            return
        if budget <= 0 or budget != budget:  # NaN guard
            budget = DEFAULT_BUDGET
        deadline = time.monotonic() + min(budget, MAX_BUDGET)
        try:
            await self.admission.admit(deadline)
        except ShedError as exc:
            await self._respond(
                writer,
                write_lock,
                protocol.ST_RETRY_LATER,
                request_id,
                0,
                (round(exc.advisory, 4), exc.reason),
            )
            return
        except QueueDeadlineError as exc:
            await self._respond(
                writer, write_lock, protocol.ST_DEADLINE, request_id, 0, str(exc)
            )
            return
        try:
            status, flags, result = await self._dispatch(
                op, request_id, deadline, payload
            )
        except Exception as exc:  # pragma: no cover - defensive surface
            self.stats.net_errors += 1
            status, flags, result = protocol.ST_INTERNAL, 0, repr(exc)
        finally:
            self.admission.release()
        await self._respond(
            writer, write_lock, status, request_id, flags, result
        )

    async def _dispatch(
        self, op: int, request_id: int, deadline: float, payload: Any
    ) -> tuple[int, int, Any]:
        self.stats.net_requests += 1
        if op in _READ_OPS:
            self.stats.net_reads += 1
            return await self._serve_read(op, payload)
        if op in protocol.MUTATING_OPS:
            return await self._serve_mutation(op, request_id, deadline, payload)
        if op == protocol.OP_STATUS:
            return protocol.ST_OK, 0, self._status_payload()
        # check/scrub walk the whole tree (and scrub re-reads artifact
        # bytes): loop-thread poison, so both run in the executor.
        loop = asyncio.get_running_loop()
        if op == protocol.OP_CHECK:
            issues = await loop.run_in_executor(
                None, lambda: list(self.backend.check(check_min_fill=False))
            )
            return protocol.ST_OK, 0, issues
        if op == protocol.OP_SCRUB:
            report = await loop.run_in_executor(None, self.backend.scrub)
            return protocol.ST_OK, 0, {
                "variant": report.variant,
                "issues": list(report.issues),
                "repairs": report.repairs,
            }
        if op == protocol.OP_ADMIN:
            return await self._serve_admin(payload)
        self.stats.net_protocol_errors += 1
        return protocol.ST_BAD_REQUEST, 0, f"unhandled opcode {op}"

    # -- reads ---------------------------------------------------------

    async def _serve_read(self, op: int, payload: Any) -> tuple[int, int, Any]:
        backend = self.backend
        try:
            if op == protocol.OP_GET:
                key = payload
                sentinel = object()
                value = backend.get(key, sentinel)
                if value is sentinel:
                    return protocol.ST_OK, 0, (False, None)
                return protocol.ST_OK, 0, (True, value)
            if op == protocol.OP_GET_MANY:
                keys, default = payload
                return protocol.ST_OK, 0, list(
                    backend.get_many(list(keys), default)
                )
            if op == protocol.OP_SCAN:
                start, end, limit, exclusive_start = payload
                limit = max(1, min(int(limit), self.scan_limit_max))
                items = []
                done = True
                for key, value in backend.range_iter(start, end):
                    if exclusive_start and key == start:
                        continue
                    if len(items) >= limit:
                        done = False
                        break
                    items.append((key, value))
                return protocol.ST_OK, 0, (items, done)
            if op == protocol.OP_COUNT:
                start, end = payload
                return protocol.ST_OK, 0, backend.count_range(start, end)
            if op == protocol.OP_LEN:
                return protocol.ST_OK, 0, len(backend)
        except (TypeError, ValueError) as exc:
            self.stats.net_protocol_errors += 1
            return protocol.ST_BAD_REQUEST, 0, f"bad read payload: {exc}"
        return protocol.ST_BAD_REQUEST, 0, f"unhandled read op {op}"

    # -- mutations -----------------------------------------------------

    async def _serve_mutation(
        self, op: int, request_id: int, deadline: float, payload: Any
    ) -> tuple[int, int, Any]:
        self.stats.net_writes += 1
        # Dedup first: a retry of an applied mutation must not touch
        # the tree again, whatever the health or load situation.
        cached = self._dedup.get(request_id)
        if cached is not None:
            self.stats.net_dedup_hits += 1
            status, _flags, result = cached
            return status, protocol.FLAG_DEDUPED, result
        racing = self._inprogress.get(request_id)
        if racing is not None:
            # The first delivery is still applying (client timed out
            # early and retried): piggyback on its outcome.
            self.stats.net_dedup_hits += 1
            try:
                status, _flags, result = await asyncio.wait_for(
                    asyncio.shield(racing), max(0.0, deadline - time.monotonic())
                )
            except asyncio.TimeoutError:
                self.stats.net_deadline_refusals += 1
                return (
                    protocol.ST_DEADLINE,
                    0,
                    "deadline expired awaiting the original delivery",
                )
            return status, protocol.FLAG_DEDUPED, result
        if time.monotonic() >= deadline:
            self.stats.net_deadline_refusals += 1
            return protocol.ST_DEADLINE, 0, "deadline expired before apply"
        loop = asyncio.get_running_loop()
        outcome: asyncio.Future = loop.create_future()
        self._inprogress[request_id] = outcome
        try:
            result_triple = await self._apply_mutation(op, deadline, payload)
        except BaseException as exc:
            if not outcome.done():
                outcome.set_exception(exc)
                # A piggybacked retry may or may not be waiting; either
                # way the exception must not be "unretrieved".
                outcome.exception()
            raise
        else:
            if not outcome.done():
                outcome.set_result(result_triple)
        finally:
            self._inprogress.pop(request_id, None)
        status, flags, result = result_triple
        if status == protocol.ST_OK:
            self._remember(request_id, (status, flags, result))
        return status, flags, result

    def _remember(self, request_id: int, triple: tuple[int, int, Any]) -> None:
        table = self._dedup
        table[request_id] = triple
        table.move_to_end(request_id)
        while len(table) > self._dedup_capacity:
            table.popitem(last=False)

    async def _apply_mutation(
        self, op: int, deadline: float, payload: Any
    ) -> tuple[int, int, Any]:
        backend = self.backend
        try:
            # Submits only append + enqueue under the served
            # fsync='group' policy; the blocking part (the fsync ack)
            # is awaited off-loop in _await_ticket.
            if op == protocol.OP_PUT:
                key, value = payload
                ticket = backend.submit_insert(key, value)  # loop-safe: group-commit enqueue
            elif op == protocol.OP_DELETE:
                ticket = backend.submit_delete(payload)  # loop-safe: group-commit enqueue
            else:  # OP_PUT_MANY
                items = [(k, v) for k, v in payload]
                ticket = backend.submit_many(items)  # loop-safe: group-commit enqueue
        except ReadOnlyError as exc:
            self.stats.net_readonly_refusals += 1
            return protocol.ST_READ_ONLY, 0, str(exc)
        except (TypeError, ValueError) as exc:
            self.stats.net_protocol_errors += 1
            return protocol.ST_BAD_REQUEST, 0, f"bad mutation payload: {exc}"
        except Exception as exc:
            refused = self._classify_write_failure(exc)
            if refused is not None:
                return refused
            raise
        # Local durability: group-commit tickets resolve when their
        # batch's fsync lands; other policies return resolved tickets.
        try:
            await self._await_ticket(ticket, deadline)
        except ReadOnlyError as exc:
            self.stats.net_readonly_refusals += 1
            return protocol.ST_READ_ONLY, 0, str(exc)
        except WALError as exc:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.stats.net_deadline_refusals += 1
                return (
                    protocol.ST_DEADLINE,
                    0,
                    "deadline expired before the fsync ack",
                )
            self.stats.net_errors += 1
            return protocol.ST_INTERNAL, 0, f"durability failure: {exc}"
        # Quorum confirmation (Primary in sync mode), amortized: one
        # drain round settles every concurrently submitted request.
        if self._quorum:
            refused = await self._await_quorum(deadline)
            if refused is not None:
                return refused
        self.stats.net_applied += 1
        return protocol.ST_OK, protocol.FLAG_APPLIED, ticket.value

    def _classify_write_failure(
        self, exc: Exception
    ) -> Optional[tuple[int, int, Any]]:
        """Map replication-layer refusals to wire statuses (imported
        lazily so ``repro.net`` does not require ``repro.replication``)."""
        from ..replication import AckQuorumError, FencedError

        if isinstance(exc, FencedError):
            self.stats.net_fenced_refusals += 1
            return protocol.ST_FENCED, 0, str(exc)
        if isinstance(exc, AckQuorumError):
            self.stats.net_quorum_refusals += 1
            return (
                protocol.ST_RETRY_LATER,
                0,
                (self.admission.advisory(), f"quorum: {exc}"),
            )
        return None

    async def _await_ticket(self, ticket: Any, deadline: float) -> None:
        if ticket.done():
            ticket.wait(0)  # loop-safe: already resolved, re-raises without blocking
            return
        remaining = max(0.001, deadline - time.monotonic())
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, ticket.wait, remaining)

    async def _await_quorum(
        self, deadline: float
    ) -> Optional[tuple[int, int, Any]]:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._ack_waiters.append((fut, deadline))
        if self._ack_drainer is None or self._ack_drainer.done():
            self._ack_drainer = loop.create_task(self._drain_ack_rounds())
        try:
            await asyncio.wait_for(
                asyncio.shield(fut), max(0.001, deadline - time.monotonic())
            )
        except asyncio.TimeoutError:
            self.stats.net_deadline_refusals += 1
            return (
                protocol.ST_DEADLINE,
                0,
                "deadline expired before quorum confirmation",
            )
        except Exception as exc:
            refused = self._classify_write_failure(exc)
            if refused is not None:
                return refused
            self.stats.net_errors += 1
            return protocol.ST_INTERNAL, 0, f"quorum failure: {exc}"
        return None

    async def _drain_ack_rounds(self) -> None:
        """One ``drain_acks`` executor round per batch of waiters."""
        loop = asyncio.get_running_loop()
        while self._ack_waiters:
            waiters, self._ack_waiters = self._ack_waiters, []
            # The round is bounded by the latest waiter deadline (every
            # earlier one gives up via its own wait_for), capped so a
            # rogue budget can never pin the executor slot.
            horizon = max(dl for _fut, dl in waiters) - time.monotonic()
            budget = max(0.001, min(horizon, MAX_BUDGET))
            try:
                await loop.run_in_executor(
                    None, self.backend.drain_acks, budget
                )
            except Exception as exc:
                for fut, _dl in waiters:
                    if not fut.done():
                        fut.set_exception(exc)
                        fut.exception()  # consumed by _await_quorum or nobody
            else:
                for fut, _dl in waiters:
                    if not fut.done():
                        fut.set_result(None)

    # -- status / admin ------------------------------------------------

    def _status_payload(self) -> dict:
        backend = self.backend
        durable = getattr(backend, "durable", backend)
        health = getattr(durable, "health", None)
        payload = {
            "role": "primary" if hasattr(backend, "drain_acks") else "durable",
            "entries": len(backend),
            "boot_id": self.boot_id,
            "draining": self.admission.draining,
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "health": health.state.value if health is not None else "n/a",
            "layout": getattr(backend, "layout", "n/a"),
            "stats": self.stats.as_dict(),
        }
        epoch = getattr(backend, "epoch", None)
        if epoch is not None:
            payload["epoch"] = epoch
        return payload

    async def _serve_admin(self, payload: Any) -> tuple[int, int, Any]:
        if not self.admin:
            self.stats.net_protocol_errors += 1
            return protocol.ST_BAD_REQUEST, 0, "admin surface disabled"
        self.stats.net_admin_ops += 1
        try:
            cmd, *args = payload
            if cmd == "sleep":
                await asyncio.sleep(float(args[0]))
                return protocol.ST_OK, 0, None
            if cmd == "iofault_arm":
                site, kind, kwargs = args
                iofaults.arm(site, kind, **dict(kwargs))
                return protocol.ST_OK, 0, None
            if cmd == "iofault_disarm":
                iofaults.disarm(args[0])
                return protocol.ST_OK, 0, None
            if cmd == "partition":
                index, severed = int(args[0]), bool(args[1])
                transport = self.replicas[index].transport
                if severed:
                    transport.partition()
                else:
                    transport.heal()
                return protocol.ST_OK, 0, None
        except (IndexError, TypeError, ValueError, KeyError) as exc:
            self.stats.net_protocol_errors += 1
            return protocol.ST_BAD_REQUEST, 0, f"bad admin payload: {exc}"
        self.stats.net_protocol_errors += 1
        return protocol.ST_BAD_REQUEST, 0, f"unknown admin command {payload!r}"


class BackgroundServer:
    """Run a :class:`QuitServer` on a daemon thread with its own loop.

    The in-process analogue of ``quit-serve serve`` — tests, examples,
    and the network bench use it to get a live port without forking::

        with BackgroundServer(durable) as bg:
            client = QuitClient("127.0.0.1", bg.port)
            ...

    ``stop()`` performs the same graceful drain the CLI performs on
    SIGTERM; ``kill()`` abandons the loop without settling (the chaos
    tests' stand-in for SIGKILL — note the backend's group flusher, if
    any, keeps running until the owner aborts/closes the backend).
    """

    def __init__(self, backend: Any, **server_kwargs: Any) -> None:
        self._backend = backend
        self._kwargs = server_kwargs
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self.server: Optional[QuitServer] = None

    @property
    def port(self) -> int:
        if self.server is None:
            raise RuntimeError("server not started")
        return self.server.port

    @property
    def stats(self) -> ServerStats:
        if self.server is None:
            raise RuntimeError("server not started")
        return self.server.stats

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="quit-net-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(10.0):
            raise RuntimeError("background server failed to start in 10s")
        if self._failure is not None:
            raise RuntimeError("background server failed") from self._failure
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._failure = exc
            self._started.set()

    async def _main(self) -> None:
        self.server = QuitServer(self._backend, **self._kwargs)
        await self.server.start()
        self._started.set()
        await self.server.serve_until_drained()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain, then join the loop thread."""
        if self.server is not None and self._thread is not None:
            if self._thread.is_alive():
                self.server.request_drain_threadsafe()
            self._thread.join(timeout)
            if self._thread.is_alive():  # pragma: no cover - hang guard
                raise RuntimeError("background server did not drain in time")

    def kill(self) -> None:
        """Abandon without settling: close the listener and every
        connection so clients see resets, exactly like a process kill.
        The loop thread is left to unwind as a daemon."""
        server = self.server
        if server is None or server._loop is None:
            return

        def _slam() -> None:
            server.admission.draining = True
            if server._watchdog is not None:
                server._watchdog.uninstall()
                server._watchdog = None
            if server._server is not None:
                server._server.close()
            for writer in list(server._conn_writers):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            for task in list(server._tasks):
                task.cancel()
            if server._drained is not None:
                server._drained.set()

        try:
            server._loop.call_soon_threadsafe(_slam)
        except RuntimeError:  # loop already closed
            return
        if self._thread is not None:
            self._thread.join(5.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
