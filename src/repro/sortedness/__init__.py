"""Sortedness quantification (K-L metric) and the BoDS workload generator."""

from .bods import BodsSpec, generate, generate_keys, generate_pairs
from .metrics import (
    KLSortedness,
    dis_measure,
    exchanges_lower_bound,
    find_outliers_iqr,
    inversion_count,
    is_sorted,
    k_out_of_order,
    kl_sortedness,
    longest_nondecreasing_subsequence_length,
    max_displacement,
    out_of_order_count,
    running_max_violations,
    runs_count,
    sorted_prefix_length,
)

__all__ = [
    "BodsSpec",
    "generate",
    "generate_keys",
    "generate_pairs",
    "KLSortedness",
    "kl_sortedness",
    "k_out_of_order",
    "max_displacement",
    "inversion_count",
    "is_sorted",
    "out_of_order_count",
    "running_max_violations",
    "sorted_prefix_length",
    "longest_nondecreasing_subsequence_length",
    "find_outliers_iqr",
    "runs_count",
    "dis_measure",
    "exchanges_lower_bound",
]
