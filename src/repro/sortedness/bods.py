"""BoDS-style workload generator (Benchmark on Data Sortedness [36, 37]).

Generates integer key streams with controlled K-L sortedness: a sorted
base sequence in which a ``k_fraction`` of entries are displaced by up to
``l_fraction * n`` positions.  Displaced positions are drawn from a
Beta(alpha, beta) distribution over the stream (``alpha = beta = 1`` gives
the paper's uniform placement); displacement magnitudes are uniform in
``[1, L]`` with random direction.

The construction mirrors BoDS: displaced values are pulled out of the
sorted sequence and re-inserted near their target positions, so requested
K and L are honoured approximately (the accompanying tests check the
measured K-L of generated streams against the request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np


@dataclass(frozen=True)
class BodsSpec:
    """Specification of a BoDS workload.

    Attributes:
        n: number of entries.
        k_fraction: fraction of out-of-order entries (0 = sorted,
            1 = scrambled).
        l_fraction: maximum displacement as a fraction of ``n``.
        alpha / beta: Beta-distribution skew of displaced positions
            (1, 1 = uniform, matching the paper's default).
        seed: RNG seed.
        key_start / key_step: affine map from rank to key value.
    """

    n: int
    k_fraction: float = 0.0
    l_fraction: float = 1.0
    alpha: float = 1.0
    beta: float = 1.0
    seed: int = 42
    key_start: int = 0
    key_step: int = 1

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"n must be >= 0, got {self.n}")
        if not 0.0 <= self.k_fraction <= 1.0:
            raise ValueError(
                f"k_fraction must be in [0, 1], got {self.k_fraction}"
            )
        if not 0.0 <= self.l_fraction <= 1.0:
            raise ValueError(
                f"l_fraction must be in [0, 1], got {self.l_fraction}"
            )
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if self.key_step == 0:
            raise ValueError("key_step must be non-zero")


def generate(spec: BodsSpec) -> np.ndarray:
    """Generate the key stream described by ``spec``.

    Returns an int64 array of length ``spec.n``; keys are the permuted
    values ``key_start + rank * key_step`` (all distinct).
    """
    n = spec.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    ranks = _permuted_ranks(spec)
    return (spec.key_start + ranks.astype(np.int64) * spec.key_step)


def _permuted_ranks(spec: BodsSpec) -> np.ndarray:
    """Permutation of 0..n-1 with the requested K-L characteristics."""
    n = spec.n
    rng = np.random.default_rng(spec.seed)
    num_displaced = int(round(spec.k_fraction * n))
    if num_displaced == 0:
        return np.arange(n)
    max_disp = max(1, int(round(spec.l_fraction * n)))
    if num_displaced >= n:
        # Fully scrambled: shuffle within windows of L*n so that the
        # displacement bound still holds (one window = full shuffle).
        out = np.arange(n)
        window = max(2, max_disp)
        for lo in range(0, n, window):
            rng.shuffle(out[lo: lo + window])
        return out

    # Positions whose values get displaced, skewed by Beta(alpha, beta):
    # sample without replacement with weights proportional to the Beta
    # density at each position's normalized rank.
    if num_displaced >= n:
        positions = np.arange(n)
    elif spec.alpha == 1.0 and spec.beta == 1.0:
        positions = np.sort(rng.choice(n, size=num_displaced, replace=False))
    else:
        centers = (np.arange(n) + 0.5) / n
        weights = centers ** (spec.alpha - 1.0) * (1.0 - centers) ** (
            spec.beta - 1.0
        )
        weights /= weights.sum()
        positions = np.sort(
            rng.choice(n, size=num_displaced, replace=False, p=weights)
        )

    # Each displaced value lands uniformly within +-L of its position,
    # truncated at the stream boundaries.  Sampling inside the truncated
    # window (rather than clipping) avoids piling displaced values onto
    # the first and last slots.
    lows = np.maximum(0, positions - max_disp)
    highs = np.minimum(n - 1, positions + max_disp)
    targets = rng.integers(lows, highs + 1)

    displaced_mask = np.zeros(n, dtype=bool)
    displaced_mask[positions] = True
    stayers = np.flatnonzero(~displaced_mask)

    # Merge: walk the output slots; displaced values claim their target
    # slots (sequentially when several collide), stayers fill the rest in
    # order.  This bounds each displaced value's final displacement by
    # ~L + K (collision slippage), keeping the requested L honoured for
    # the K regimes the paper sweeps.
    order = np.argsort(targets, kind="stable")
    disp_values = positions[order]
    disp_targets = targets[order]
    out = np.empty(n, dtype=np.int64)
    di = si = 0
    nd, ns = len(disp_values), len(stayers)
    for slot in range(n):
        if di < nd and (disp_targets[di] <= slot or si >= ns):
            out[slot] = disp_values[di]
            di += 1
        else:
            out[slot] = stayers[si]
            si += 1
    return out


def generate_keys(
    n: int,
    k_fraction: float = 0.0,
    l_fraction: float = 1.0,
    alpha: float = 1.0,
    beta: float = 1.0,
    seed: int = 42,
) -> np.ndarray:
    """Convenience wrapper: generate a BoDS stream from scalars."""
    return generate(
        BodsSpec(
            n=n,
            k_fraction=k_fraction,
            l_fraction=l_fraction,
            alpha=alpha,
            beta=beta,
            seed=seed,
        )
    )


def generate_pairs(
    spec: BodsSpec,
    value_of: Optional[callable] = None,
) -> Iterator[tuple[int, int]]:
    """Yield ``(key, value)`` pairs for the stream described by ``spec``.

    ``value_of`` maps a key to its payload; defaults to the key itself
    (the paper's workloads use integer key-value pairs).
    """
    keys = generate(spec)
    if value_of is None:
        for key in keys:
            k = int(key)
            yield k, k
    else:
        for key in keys:
            k = int(key)
            yield k, value_of(k)
