"""Data-sortedness metrics (§2 of the paper).

The paper quantifies sortedness with the K-L metric of BoDS [37] (inspired
by Ben-Moshe et al. [5]): ``K`` is the number of out-of-order entries and
``L`` the maximum displacement of an out-of-order entry from its in-order
position.  This module provides those plus the simpler measures the paper
surveys: predecessor-order violations (Fig. 2a), running-max violations,
and inversion counts (Knuth's measure of presortedness).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence


def is_sorted(seq: Sequence) -> bool:
    """True when ``seq`` is non-decreasing."""
    return all(a <= b for a, b in zip(seq, seq[1:]))


def out_of_order_count(seq: Sequence) -> int:
    """Entries smaller than their immediate predecessor (Fig. 2a).

    The simplest notion of unorderedness for a monotonically increasing
    stream: an entry is out of order when it breaks the local run.
    """
    return sum(1 for a, b in zip(seq, seq[1:]) if b < a)


def running_max_violations(seq: Sequence) -> int:
    """Entries smaller than the running maximum.

    This is the quantity that determines whether a tail-leaf fast path can
    possibly serve an entry: anything below the frontier must top-insert.
    """
    count = 0
    best = None
    for x in seq:
        if best is not None and x < best:
            count += 1
        else:
            best = x
    return count


def inversion_count(seq: Sequence) -> int:
    """Number of inverted pairs ``i < j`` with ``seq[i] > seq[j]``
    (merge-sort based, O(n log n))."""
    arr = list(seq)
    if len(arr) < 2:
        return 0
    _, inversions = _sort_count(arr)
    return inversions


def _sort_count(arr: list) -> tuple[list, int]:
    n = len(arr)
    if n <= 1:
        return arr, 0
    mid = n // 2
    left, a = _sort_count(arr[:mid])
    right, b = _sort_count(arr[mid:])
    merged: list = []
    inv = a + b
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            inv += len(left) - i
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged, inv


def longest_nondecreasing_subsequence_length(seq: Sequence) -> int:
    """Length of the longest non-decreasing subsequence (O(n log n)).

    ``n - LNDS`` is the minimum number of entries that must be removed to
    leave the stream sorted — the canonical ``K`` of the K-L metric.
    """
    tails: list = []
    for x in seq:
        idx = bisect_right(tails, x)
        if idx == len(tails):
            tails.append(x)
        else:
            tails[idx] = x
    return len(tails)


def k_out_of_order(seq: Sequence) -> int:
    """``K``: minimum removals to make the stream sorted."""
    if not seq:
        return 0
    return len(seq) - longest_nondecreasing_subsequence_length(seq)


def max_displacement(seq: Sequence) -> int:
    """``L``: maximum distance between an entry's arrival position and its
    position in the sorted order (0 for a sorted stream).

    Ties are resolved stably, so duplicated keys in arrival order count as
    in place.
    """
    order = sorted(range(len(seq)), key=lambda i: (seq[i], i))
    best = 0
    for rank, original in enumerate(order):
        dist = abs(rank - original)
        if dist > best:
            best = dist
    return best


@dataclass(frozen=True)
class KLSortedness:
    """The K-L sortedness of a stream, in absolute and fractional form."""

    n: int
    k: int
    l: int

    @property
    def k_fraction(self) -> float:
        """K as a fraction of the stream length."""
        return self.k / self.n if self.n else 0.0

    @property
    def l_fraction(self) -> float:
        """L as a fraction of the stream length."""
        return self.l / self.n if self.n else 0.0


def kl_sortedness(seq: Sequence) -> KLSortedness:
    """Measure the K-L sortedness of ``seq`` (Fig. 2c)."""
    return KLSortedness(
        n=len(seq), k=k_out_of_order(seq), l=max_displacement(seq)
    )


def sorted_prefix_length(seq: Sequence) -> int:
    """Length of the maximal sorted (non-decreasing) prefix."""
    for i in range(1, len(seq)):
        if seq[i] < seq[i - 1]:
            return i
    return len(seq)


def runs_count(seq: Sequence) -> int:
    """Mannila's *Runs* measure: number of maximal ascending runs.

    A sorted sequence is one run; each descent starts a new one.  The
    paper cites Mannila [28] among the presortedness measures it surveys.
    """
    if not seq:
        return 0
    return 1 + out_of_order_count(seq)


def dis_measure(seq: Sequence) -> int:
    """Mannila's *Dis* measure: the largest distance an inversion spans,
    i.e. ``max(j - i)`` over pairs ``i < j`` with ``seq[i] > seq[j]``.

    O(n log n): the running-maximum array is non-decreasing, so for each
    ``j`` the earliest ``i`` whose prefix maximum exceeds ``seq[j]`` is
    found by binary search.
    """
    n = len(seq)
    if n < 2:
        return 0
    prefix_max = list(seq)
    for i in range(1, n):
        if prefix_max[i - 1] > prefix_max[i]:
            prefix_max[i] = prefix_max[i - 1]
    best = 0
    for j in range(1, n):
        x = seq[j]
        if prefix_max[j - 1] <= x:
            continue
        lo, hi = 0, j - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if prefix_max[mid] > x:
                hi = mid
            else:
                lo = mid + 1
        if j - lo > best:
            best = j - lo
    return best


def exchanges_lower_bound(seq: Sequence) -> int:
    """Lower bound on adjacent exchanges needed to sort = the inversion
    count (bubble-sort distance)."""
    return inversion_count(seq)


def find_outliers_iqr(seq: Sequence, scale: float = 1.5) -> list[int]:
    """Indices of IQR outliers in ``seq`` (the classical detector that
    inspired IKR, §4.1): values outside
    ``[Q1 - scale*IQR, Q3 + scale*IQR]``."""
    if len(seq) < 4:
        return []
    ordered = sorted(seq)
    n = len(ordered)
    q1 = ordered[n // 4]
    q3 = ordered[(3 * n) // 4]
    iqr = q3 - q1
    lo = q1 - scale * iqr
    hi = q3 + scale * iqr
    return [i for i, x in enumerate(seq) if x < lo or x > hi]
