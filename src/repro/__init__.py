"""Reproduction of "QuIT your B+-tree for the Quick Insertion Tree"
(EDBT 2025).

Public API: the five tree variants, configuration, sortedness tooling, the
SWARE baseline, and the benchmark harness.  See README.md for a tour.
"""

from .core import (
    BPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
    TreeStats,
    TREE_VARIANTS,
)

__version__ = "1.0.0"

__all__ = [
    "BPlusTree",
    "TailBPlusTree",
    "LilBPlusTree",
    "PoleBPlusTree",
    "QuITTree",
    "TreeConfig",
    "TreeStats",
    "TREE_VARIANTS",
    "__version__",
]
