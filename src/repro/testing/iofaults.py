"""Injectable disk faults for the durability stack.

Where :mod:`repro.testing.failpoints` models *process* failure (raise or
die at a named control-flow site), this module models *disk* failure:
the storage layer routes every file operation it performs through the
shims below (:func:`write`, :func:`fsync`, :func:`replace`,
:func:`read_bytes`), each tagged with a registered ``io.*`` site name,
and tests arm faults against those sites:

* ``"eio"`` — the call raises ``OSError(EIO)`` (transient device error);
* ``"enospc"`` — the call raises ``OSError(ENOSPC)`` (disk full);
* ``"torn"`` — a write persists only a prefix of the payload before
  raising ``EIO`` (short/torn write); a read returns only a prefix;
* ``"bitrot"`` — the operation *succeeds* but the bytes are silently
  corrupted (one byte flipped), modelling latent media rot that only a
  checksum scrub can catch.  For ``fsync`` the flip lands in the file
  that was just synced — rot discovered long after the ack.

Faults fire deterministically (``hits_before``/``times``) or
probabilistically (``probability``/``seed``), exactly like failpoints.
The passthrough fast path is a single module-dict truthiness check so
the production hot path pays nothing measurable; the arming lock is
only ever held to *decide*, never across actual I/O (the runtime lock
sanitizer would flag an fsync under it).

Site names are compile-time checked against call sites by the
``iofault-parity`` lint rule, the same bidirectional guarantee
``failpoint-parity`` gives the crash sites.
"""

from __future__ import annotations

import errno
import os
import random
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, Optional, Union

from repro.concurrency import sanitizer

#: Every instrumented I/O site in the package.  ``inject``/``arm``
#: reject unknown names so a typo cannot silently never fire, and the
#: ``iofault-parity`` lint rule checks this tuple against the shim call
#: sites in both directions.
KNOWN_IO_SITES: tuple[str, ...] = (
    "io.wal.write",         # WAL record/batch append
    "io.wal.fsync",         # WAL segment fsync
    "io.wal.read",          # WAL segment read (replay, reader, scrub)
    "io.snapshot.write",    # checkpoint temp-file write
    "io.snapshot.fsync",    # checkpoint temp-file fsync
    "io.snapshot.replace",  # atomic rename into place
    "io.snapshot.read",     # snapshot load/verify read
)

#: The fault taxonomy: how an armed site misbehaves.
KNOWN_KINDS: tuple[str, ...] = ("eio", "enospc", "torn", "bitrot")


class IOFaultConfigError(ValueError):
    """Bad arming request: unknown site/kind or invalid knobs."""


@dataclass
class _Fault:
    """One armed fault and its firing discipline (mirrors failpoints'
    ``_Armed``)."""

    site: str
    kind: str
    hits_before: int = 0
    times: Optional[int] = None  # fires remaining; None = unlimited
    probability: float = 1.0
    rng: Optional[random.Random] = None
    hits: int = 0
    fired: int = 0

    def should_fire(self) -> bool:
        self.hits += 1
        if self.hits <= self.hits_before:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability < 1.0:
            roll = (self.rng or random).random()
            if roll >= self.probability:
                return False
        self.fired += 1
        return True


_lock = sanitizer.make_lock("iofaults")
_active: dict[str, _Fault] = {}


def _validate(site: str, kind: str) -> None:
    if site not in KNOWN_IO_SITES:
        raise IOFaultConfigError(
            f"unknown io-fault site {site!r}; known: "
            f"{', '.join(KNOWN_IO_SITES)}"
        )
    if kind not in KNOWN_KINDS:
        raise IOFaultConfigError(
            f"unknown io-fault kind {kind!r}; known: "
            f"{', '.join(KNOWN_KINDS)}"
        )


def arm(
    site: str,
    kind: str,
    *,
    hits_before: int = 0,
    times: Optional[int] = None,
    probability: float = 1.0,
    seed: Optional[int] = None,
) -> None:
    """Arm ``site`` to misbehave as ``kind`` until :func:`disarm`.

    ``hits_before`` skips that many calls first; ``times`` caps how
    often the fault fires (``None`` = every matching call);
    ``probability``/``seed`` make firing a seeded coin flip.
    """
    _validate(site, kind)
    if times is not None and times < 0:
        raise IOFaultConfigError("times must be >= 0")
    if not 0.0 <= probability <= 1.0:
        raise IOFaultConfigError("probability must be within [0, 1]")
    fault = _Fault(
        site=site,
        kind=kind,
        hits_before=hits_before,
        times=times,
        probability=probability,
        rng=random.Random(seed) if seed is not None else None,
    )
    with _lock:
        _active[site] = fault


def disarm(site: str) -> None:
    """Disarm ``site`` (no-op when it was not armed)."""
    with _lock:
        _active.pop(site, None)


def reset() -> None:
    """Disarm everything and clear counters (test isolation)."""
    with _lock:
        _active.clear()
        _counts.clear()


@contextmanager
def inject(
    site: str,
    kind: str,
    *,
    hits_before: int = 0,
    times: Optional[int] = None,
    probability: float = 1.0,
    seed: Optional[int] = None,
) -> Iterator[None]:
    """Context manager: arm on entry, disarm on exit."""
    arm(
        site,
        kind,
        hits_before=hits_before,
        times=times,
        probability=probability,
        seed=seed,
    )
    try:
        yield
    finally:
        disarm(site)


def armed() -> dict[str, str]:
    """Currently armed sites mapped to their fault kind."""
    with _lock:
        return {site: fault.kind for site, fault in _active.items()}


#: Cumulative fired-fault counts per ``(site, kind)`` — lets tests
#: assert a schedule really injected what it claims to have injected.
_counts: dict[tuple[str, str], int] = {}


def injected_counts() -> dict[tuple[str, str], int]:
    """Snapshot of fired faults per ``(site, kind)``."""
    with _lock:
        return dict(_counts)


def injected_total() -> int:
    """Total faults fired since the last :func:`reset`."""
    with _lock:
        return sum(_counts.values())


def _claim(site: str) -> Optional[_Fault]:
    """Decide (under the lock) whether ``site`` fires right now.

    Returns the armed fault when it fires; the caller performs the
    faulty behaviour *outside* the lock.
    """
    with _lock:
        fault = _active.get(site)
        if fault is None or not fault.should_fire():
            return None
        key = (site, fault.kind)
        _counts[key] = _counts.get(key, 0) + 1
        return fault


def _os_error(fault: _Fault, site: str) -> OSError:
    code = errno.ENOSPC if fault.kind == "enospc" else errno.EIO
    return OSError(
        code, f"injected {fault.kind} at {site}", site
    )


def _flip_byte(data: bytes, position: Optional[int] = None) -> bytes:
    if not data:
        return data
    i = (len(data) // 2) if position is None else position
    corrupted = bytearray(data)
    corrupted[i] ^= 0xFF
    return bytes(corrupted)


# ---------------------------------------------------------------------------
# The shims.  Fast path: one module-dict truthiness check, then the real
# operation.  Sites are string literals at every call site so the
# iofault-parity rule can see them.
# ---------------------------------------------------------------------------


def write(site: str, fh: IO[bytes], data: bytes) -> int:
    """``fh.write(data)`` through the fault table.

    ``torn`` persists roughly half the payload and then raises ``EIO``
    (the caller must assume the tail is garbage until rewound);
    ``bitrot`` writes the full length with one byte flipped and
    *returns success*.
    """
    if _active:
        fault = _claim(site)
        if fault is not None:
            if fault.kind in ("eio", "enospc"):
                raise _os_error(fault, site)
            if fault.kind == "torn":
                fh.write(data[: max(1, len(data) // 2)])
                raise _os_error(fault, site)
            # bitrot: silent corruption, reported as a clean write.
            fh.write(_flip_byte(data))
            return len(data)
    fh.write(data)
    return len(data)


def fsync(site: str, fh: IO[bytes]) -> None:
    """``os.fsync(fh.fileno())`` through the fault table.

    ``torn`` degenerates to ``EIO`` (there is no partial fsync);
    ``bitrot`` lets the fsync succeed and then flips a byte of the
    synced file in place — the ack was honest, the media was not.
    """
    if _active:
        fault = _claim(site)
        if fault is not None:
            if fault.kind in ("eio", "enospc", "torn"):
                raise _os_error(fault, site)
            os.fsync(fh.fileno())
            _rot_file_tail(fh)
            return
    os.fsync(fh.fileno())


def _rot_file_tail(fh: IO[bytes]) -> None:
    # The WAL opens segments write-only, so the rot needs its own
    # read-write handle on the same path.
    path = getattr(fh, "name", None)
    if not isinstance(path, (str, bytes, os.PathLike)):
        return
    with open(path, "r+b") as rot:
        rot.seek(0, os.SEEK_END)
        size = rot.tell()
        if size == 0:
            return
        offset = size // 2
        rot.seek(offset)
        byte = rot.read(1)
        if byte:
            rot.seek(offset)
            rot.write(bytes([byte[0] ^ 0xFF]))


def replace(
    site: str, src: Union[str, Path], dst: Union[str, Path]
) -> None:
    """``os.replace(src, dst)`` through the fault table.

    ``eio``/``enospc``/``torn`` fail the rename and leave ``src`` in
    place (rename is atomic — there is no torn middle state, so
    ``torn`` degenerates to ``EIO``); ``bitrot`` performs the rename
    but flips a byte of the file first.
    """
    if _active:
        fault = _claim(site)
        if fault is not None:
            if fault.kind in ("eio", "enospc", "torn"):
                raise _os_error(fault, site)
            path = Path(src)
            path.write_bytes(_flip_byte(path.read_bytes()))
    os.replace(src, dst)


def read_bytes(site: str, path: Union[str, Path]) -> bytes:
    """``Path(path).read_bytes()`` through the fault table.

    ``torn`` returns a prefix (short read); ``bitrot`` returns the full
    payload with one byte flipped.
    """
    if _active:
        fault = _claim(site)
        if fault is not None:
            if fault.kind in ("eio", "enospc"):
                raise _os_error(fault, site)
            data = Path(path).read_bytes()
            if fault.kind == "torn":
                return data[: len(data) // 2]
            return _flip_byte(data)
    return Path(path).read_bytes()
