"""Named failpoints: deterministic fault injection for the durability layer.

The WAL, snapshot, and checkpoint code paths call :func:`fire` at the
moments where a crash is interesting (just before an fsync, between the
temp-file write and the atomic replace, between the snapshot replace and
the WAL truncate, ...).  In production the call is a dictionary miss —
one ``if not _active`` check — so the instrumentation stays resident.

Tests arm a failpoint by name inside a ``with`` block::

    with failpoints.active("wal.before_fsync", mode="crash"):
        durable.insert(1, "one")      # raises SimulatedCrash mid-append

Modes:

* ``"raise"`` — raise :class:`FailpointError`, an ordinary exception the
  caller is expected to handle (exercises error paths).
* ``"crash"`` — raise :class:`SimulatedCrash`, which derives from
  ``BaseException`` so no ``except Exception`` handler in the durability
  code can accidentally swallow it: it models the process dying at that
  instruction.  Whatever bytes reached the filesystem stay; nothing else
  does.
* ``"probability"`` — crash with probability ``p`` per hit (seeded RNG).

``hits_before`` skips the first N hits, so a test can kill the Nth fsync
of a workload rather than the first.  Arming is process-global (the
durability code has no handle to thread test state through), guarded by a
lock; :func:`fire` itself is lock-free on the inactive path.
"""

from __future__ import annotations

import contextlib
import random
import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Every failpoint the durability layer is instrumented with.  ``fire``
#: rejects unknown names whenever any failpoint is armed (the inactive
#: fast path stays a single dict check), so a renamed call site cannot
#: silently detach its tests; add new sites here first.
KNOWN_FAILPOINTS: tuple[str, ...] = (
    "wal.before_append",
    "wal.after_append",
    "wal.before_fsync",
    "wal.before_rotate",
    "wal.before_truncate_segment",
    # Group-commit pipeline (fsync="group"): fired on the flusher
    # thread around each batch's single fsync, and just before the
    # batch's tickets resolve.  A "crash" at any of them models the
    # process dying mid-batch: pre_fsync loses the whole batch (none of
    # it was acked), post_fsync/ack keep the batch durable but unacked
    # — either way no acknowledged write is ever lost.
    "wal.group.pre_fsync",
    "wal.group.post_fsync",
    "wal.group.ack",
    "snapshot.before_tmp_write",
    "snapshot.after_tmp_write",
    "snapshot.after_replace",
    "checkpoint.before_truncate",
    "checkpoint.after_truncate",
    # Replication layer (repro.replication): primary serving side,
    # replica apply side, coordinator decisions, and the in-process
    # transport's fault-injection hooks.  A "raise" at a transport site
    # models exactly a dropped/failed network call — the replication
    # code handles FailpointError as it would a TransportError.
    "repl.snapshot_fetch",
    "repl.ship_record",
    "repl.apply_record",
    "repl.promote",
    "repl.fence",
    "repl.health_check",
    "repl.transport.drop",
    "repl.transport.delay",
    "repl.transport.reorder",
)

_KNOWN = frozenset(KNOWN_FAILPOINTS)


class FailpointError(RuntimeError):
    """Recoverable injected failure (``mode="raise"``)."""


class SimulatedCrash(BaseException):
    """Injected process death (``mode="crash"``).

    Derives from ``BaseException`` so durability-layer ``except
    Exception`` cleanup cannot catch it — a real crash runs no cleanup
    either.  Tests catch it explicitly.
    """


@dataclass
class _Armed:
    mode: str
    hits_before: int = 0
    probability: float = 1.0
    rng: Optional[random.Random] = None
    hits: int = 0
    fired: int = 0

    def should_fire(self) -> bool:
        self.hits += 1
        if self.hits <= self.hits_before:
            return False
        if self.mode == "probability":
            if self.rng is None:
                raise RuntimeError(
                    "probability-mode failpoint armed without an RNG"
                )
            return self.rng.random() < self.probability
        return True


_lock = threading.Lock()
_active: dict[str, _Armed] = {}
_hit_counts: dict[str, int] = {}


def registered() -> tuple[str, ...]:
    """All failpoint names the durability layer fires (for sweeps)."""
    return KNOWN_FAILPOINTS


def fire(name: str) -> None:
    """Trigger point called by instrumented code.  No-op unless armed."""
    if not _active:
        return
    if name not in _KNOWN:
        raise ValueError(
            f"fire() called with unregistered failpoint {name!r}; "
            f"add it to KNOWN_FAILPOINTS (known: "
            f"{', '.join(KNOWN_FAILPOINTS)})"
        )
    with _lock:
        _hit_counts[name] = _hit_counts.get(name, 0) + 1
        armed_point = _active.get(name)
        if armed_point is None or not armed_point.should_fire():
            return
        armed_point.fired += 1
        mode = armed_point.mode
    if mode == "raise":
        raise FailpointError(f"injected failure at {name}")
    raise SimulatedCrash(f"simulated crash at {name}")


@contextlib.contextmanager
def active(
    name: str,
    mode: str = "raise",
    *,
    hits_before: int = 0,
    probability: float = 1.0,
    seed: int = 0,
) -> Iterator[_Armed]:
    """Arm failpoint ``name`` for the duration of the block.

    Yields the armed state; ``state.fired`` afterwards tells whether the
    point actually triggered (useful for probabilistic sweeps).
    """
    if name not in _KNOWN:
        raise ValueError(
            f"unknown failpoint {name!r}; known: {', '.join(KNOWN_FAILPOINTS)}"
        )
    if mode not in ("raise", "crash", "probability"):
        raise ValueError(f"unknown failpoint mode {mode!r}")
    state = _Armed(
        mode=mode,
        hits_before=hits_before,
        probability=probability,
        rng=random.Random(seed) if mode == "probability" else None,
    )
    with _lock:
        if name in _active:
            raise RuntimeError(f"failpoint {name!r} is already armed")
        _active[name] = state
    try:
        yield state
    finally:
        with _lock:
            _active.pop(name, None)


def armed() -> tuple[str, ...]:
    """Names currently armed (diagnostics)."""
    with _lock:
        return tuple(_active)


def hit_counts() -> dict[str, int]:
    """Consistent snapshot of every hit counter (multi-thread safe).

    Reading counters one ``hit_count`` call at a time from a monitoring
    thread can interleave with concurrent ``fire`` calls; this returns
    all of them under one lock acquisition.
    """
    with _lock:
        return dict(_hit_counts)


def hit_count(name: str) -> int:
    """How often ``name`` has been reached while any failpoint was armed.

    Counting is only live while at least one failpoint is armed — the
    production fast path must stay a single dict check — so arm an
    unrelated point (or the one being measured with a huge
    ``hits_before``) to census hit counts.
    """
    with _lock:
        return _hit_counts.get(name, 0)


def reset() -> None:
    """Disarm everything and zero the hit counters (test isolation)."""
    with _lock:
        _active.clear()
        _hit_counts.clear()
