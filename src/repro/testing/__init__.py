"""Fault-injection utilities shared by the durability layer and tests."""

from . import iofaults
from .failpoints import (
    KNOWN_FAILPOINTS,
    FailpointError,
    SimulatedCrash,
    active,
    armed,
    fire,
    hit_count,
    hit_counts,
    registered,
    reset,
)

__all__ = [
    "iofaults",
    "KNOWN_FAILPOINTS",
    "FailpointError",
    "SimulatedCrash",
    "active",
    "armed",
    "fire",
    "hit_count",
    "hit_counts",
    "registered",
    "reset",
]
