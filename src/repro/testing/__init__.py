"""Fault-injection utilities shared by the durability layer and tests."""

from .failpoints import (
    KNOWN_FAILPOINTS,
    FailpointError,
    SimulatedCrash,
    active,
    armed,
    fire,
    hit_count,
    hit_counts,
    registered,
    reset,
)

__all__ = [
    "KNOWN_FAILPOINTS",
    "FailpointError",
    "SimulatedCrash",
    "active",
    "armed",
    "fire",
    "hit_count",
    "hit_counts",
    "registered",
    "reset",
]
