"""Multi-process network chaos soak for the ``repro.net`` tier.

The disk-level soaks (:mod:`repro.testing.chaos`) prove the storage
stack keeps acked writes through crashes and bad media.  This harness
proves the same promise **end-to-end across the RPC boundary**: real
client *processes* drive a real ``quit-serve`` server *process* over
loopback TCP while the harness

* SIGKILLs the server and restarts it on the same port (clients ride
  through on retries with fresh connections),
* injects ``io.*`` disk faults through the admin side channel,
* partitions the attached replica (with ``required_acks=1`` +
  ``ack_deadline`` this turns writes into bounded
  ``QuorumTimeoutError`` → ``RETRY_LATER`` refusals until the heal),
* and finally SIGTERMs the server, asserting a graceful drain: exit
  code 0 with every in-flight ticket settled.

Invariants checked (:class:`NetChaosReport.ok`):

1. **zero acked-write loss** — every key whose *last* client-observed
   event was an acked put/delete has exactly that state after a cold
   recovery of the server directory; ops that errored out leave their
   key in-doubt (either outcome accepted) until the next ack;
2. **zero duplicate applies** — dedup probes (the same idempotency id
   delivered twice on purpose) must come back ``FLAG_DEDUPED`` and
   never ``FLAG_APPLIED`` twice within one server tenure (tenures are
   told apart by the response ``boot_id``), and a deduped delete must
   preserve the original logical result;
3. **bounded client-observed error windows** — the longest stretch any
   client went without a successful request stays under a bound (the
   kill→restart ride-through, not an unbounded hang);
4. **must-bite** — a schedule that killed no server, armed no fault,
   and cut no link proves nothing, so the report refuses to pass it.

Clients write disjoint key ranges, so each key's event order is exactly
one process's program order — no cross-client races in the oracle.
"""

from __future__ import annotations

import ast
import os
import random
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from multiprocessing import Process
from pathlib import Path
from typing import Any, Optional

from ..net import client as net_client
from ..net import protocol

#: Seconds per client allowed between consecutive successful requests
#: before the soak calls the outage unbounded.  Covers a SIGKILL, a
#: recovery replay, and the retry backoff ladder with slack for CI.
ERROR_WINDOW_BOUND = 20.0

#: Keys per client process; ranges are disjoint by construction.
KEYSPAN = 10_000


@dataclass
class NetChaosReport:
    """Outcome of one :func:`run_network_soak`."""

    clients: int = 0
    duration: float = 0.0
    acked_puts: int = 0
    acked_deletes: int = 0
    dedup_probes: int = 0
    errors_observed: int = 0
    retries_exhausted: int = 0
    kills: int = 0
    restarts: int = 0
    io_faults_armed: int = 0
    partitions: int = 0
    boot_ids_seen: int = 0
    lost_acks: int = 0
    duplicate_applies: int = 0
    result_mismatches: int = 0
    max_error_window: float = 0.0
    drain_exit_code: Optional[int] = None
    drain_settled: bool = False
    final_entries: int = 0
    notes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Invariants held AND the schedule actually bit."""
        return (
            self.lost_acks == 0
            and self.duplicate_applies == 0
            and self.result_mismatches == 0
            and self.max_error_window <= ERROR_WINDOW_BOUND
            and self.drain_exit_code == 0
            and self.drain_settled
            and self.kills > 0
            and self.io_faults_armed > 0
            and self.partitions > 0
            and self.acked_puts > 0
            and self.dedup_probes > 0
            # Clients must demonstrably have ridden through at least
            # one server tenure change (a kill that nobody acked across
            # proves nothing).  Surfaced errors are NOT required: the
            # retry layer absorbing the whole outage is the win, and
            # the boot-id evidence shows the outage was real.
            and self.boot_ids_seen >= 2
        )

    def summary(self) -> str:
        """One human-readable block (test failure messages, CI logs)."""
        lines = [
            f"network soak: {self.clients} client(s), "
            f"{self.duration:.1f}s, ok={self.ok}",
            f"  acked: {self.acked_puts} put(s), "
            f"{self.acked_deletes} delete(s), "
            f"{self.dedup_probes} dedup probe(s)",
            f"  adversity: {self.kills} kill(s), {self.restarts} "
            f"restart(s), {self.io_faults_armed} io fault(s), "
            f"{self.partitions} partition(s), "
            f"{self.boot_ids_seen} boot id(s) seen",
            f"  client errors: {self.errors_observed} observed, "
            f"{self.retries_exhausted} retries-exhausted, "
            f"max window {self.max_error_window:.2f}s "
            f"(bound {ERROR_WINDOW_BOUND:.0f}s)",
            f"  verdict: {self.lost_acks} lost ack(s), "
            f"{self.duplicate_applies} duplicate apply(s), "
            f"{self.result_mismatches} result mismatch(es)",
            f"  drain: exit={self.drain_exit_code} "
            f"settled={self.drain_settled}; "
            f"final entries {self.final_entries}",
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Client process
# ----------------------------------------------------------------------

def _client_proc(
    host: str,
    port: int,
    cid: int,
    seed: int,
    stop_path: str,
    log_path: str,
) -> None:
    """One traffic-driving process: sequential puts/deletes on its own
    key range, periodic dedup probes, everything logged as events."""
    rng = random.Random(seed * 1000 + cid)
    base = cid * KEYSPAN
    stop = Path(stop_path)
    client = net_client.QuitClient(host, port, deadline=6.0)
    seq = 0
    with open(log_path, "w") as log:

        def emit(*event: Any) -> None:
            log.write(repr(event) + "\n")
            log.flush()

        while not stop.exists():
            seq += 1
            key = base + rng.randrange(64)
            op = rng.random()
            try:
                if op < 0.08:
                    ack = client.delete_acked(key)
                    emit("del", key, bool(ack.result), ack.deduped,
                         ack.boot_id, time.time())
                elif op < 0.16:
                    _dedup_probe(client, emit, key, seq)
                else:
                    ack = client.insert_acked(key, seq)
                    emit("put", key, seq, ack.deduped, ack.boot_id,
                         time.time())
            except net_client.RetriesExhaustedError:
                emit("err", key, "retries_exhausted", time.time())
                client.close()
            except (net_client.NetError, OSError, protocol.ProtocolError) as exc:
                emit("err", key, type(exc).__name__, time.time())
                client.close()
                time.sleep(0.05)
    client.close()


def _dedup_probe(client: net_client.QuitClient, emit, key: int,
                 seq: int) -> None:
    """Deliver the same idempotency id twice, on purpose, and log what
    each delivery claimed — the direct observation behind the
    zero-duplicate-applies assertion."""
    rid = random.getrandbits(63) | 1
    until = time.monotonic() + 4.0
    # Probe deletes sometimes (result preservation is the interesting
    # part there: the duplicate must echo the original existed-bool).
    probe_delete = seq % 3 == 0
    if probe_delete:
        client.insert(key, seq)
        op, payload = protocol.OP_DELETE, key
    else:
        op, payload = protocol.OP_PUT, (key, seq)
    st1, fl1, res1 = client._exchange(op, rid, payload, until)
    boot1 = client.last_boot_id
    st2, fl2, res2 = client._exchange(op, rid, payload, until)
    boot2 = client.last_boot_id
    emit("probe", key, seq, probe_delete,
         st1, fl1, res1, boot1, st2, fl2, res2, boot2, time.time())
    if not probe_delete and st1 == protocol.ST_OK:
        emit("put", key, seq, False, boot1, time.time())
    if probe_delete and st1 == protocol.ST_OK:
        emit("del", key, bool(res1), False, boot1, time.time())


# ----------------------------------------------------------------------
# Server process management
# ----------------------------------------------------------------------

def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn_server(directory: Path, port: int) -> subprocess.Popen:
    src = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.net.cli", "serve", str(directory),
            "--port", str(port), "--fsync", "group", "--chaos-admin",
            "--replicas", "1", "--required-acks", "1",
            "--ack-deadline", "0.5", "--queue-wait", "0.5",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(directory.parent),
    )


def _wait_serving(proc: subprocess.Popen, deadline: float = 30.0) -> list[str]:
    """Read stdout lines until the server announces it is serving."""
    lines: list[str] = []
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        line = proc.stdout.readline()  # type: ignore[union-attr]
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(
                    "server exited before serving:\n" + "".join(lines)
                )
            time.sleep(0.01)
            continue
        lines.append(line)
        if "serving until SIGTERM/SIGINT" in line:
            return lines
    raise RuntimeError("server did not start serving in time")


def _admin(host: str, port: int, *command: Any) -> Any:
    with net_client.QuitClient(host, port, deadline=5.0) as admin:
        return admin.admin(*command)


# ----------------------------------------------------------------------
# The soak
# ----------------------------------------------------------------------

def run_network_soak(
    root: Path,
    *,
    clients: int = 3,
    duration: float = 8.0,
    kills: int = 2,
    seed: int = 0,
    out=None,
) -> NetChaosReport:
    """Drive the kill/fault/partition schedule and verify the invariants.

    ``root`` must be a fresh scratch directory; the server state lives
    in ``root/state`` and survives across the staged kills exactly as a
    production directory would.
    """
    def say(msg: str) -> None:
        if out is not None:
            print(msg, file=out)
            out.flush()

    root = Path(root)
    state = root / "state"
    state.mkdir(parents=True, exist_ok=True)
    stop_path = root / "STOP"
    report = NetChaosReport(clients=clients, duration=duration)
    rng = random.Random(seed)
    host, port = "127.0.0.1", _free_port()

    say(f"[soak] serving {state} on port {port}")
    proc = _spawn_server(state, port)
    _wait_serving(proc)

    logs = [root / f"client{cid}.log" for cid in range(clients)]
    procs = [
        Process(
            target=_client_proc,
            args=(host, port, cid, seed, str(stop_path), str(logs[cid])),
            daemon=True,
        )
        for cid in range(clients)
    ]
    for p in procs:
        p.start()

    # Schedule: slices of quiet traffic interleaved with one fault of
    # each family per kill cycle.  Every phase is wall-clock paced so
    # the total runtime tracks ``duration``.
    cycles = max(1, kills)
    slice_s = max(0.4, duration / (cycles * 4))
    try:
        for cycle in range(cycles):
            time.sleep(slice_s)
            # io fault burst (transient: the RetryPolicy under the WAL
            # rides it out; clients at worst see one slow request).
            site = rng.choice(["io.wal.fsync", "io.wal.write"])
            try:
                _admin(host, port, "iofault_arm", site, "eio",
                       {"times": 2, "hits_before": 1})
                report.io_faults_armed += 1
                say(f"[soak] cycle {cycle}: armed {site} eio x2")
            except net_client.NetError as exc:
                report.notes.append(f"iofault arm failed: {exc}")
            time.sleep(slice_s)
            # replica partition: quorum waits degrade to bounded
            # QuorumTimeoutError -> RETRY_LATER at the wire.
            try:
                _admin(host, port, "partition", 0, True)
                report.partitions += 1
                say(f"[soak] cycle {cycle}: partitioned replica0")
                time.sleep(min(1.0, slice_s))
                _admin(host, port, "partition", 0, False)
                say(f"[soak] cycle {cycle}: healed replica0")
            except net_client.NetError as exc:
                report.notes.append(f"partition failed: {exc}")
            time.sleep(slice_s)
            if cycle < kills:
                say(f"[soak] cycle {cycle}: SIGKILL server pid {proc.pid}")
                proc.kill()
                proc.wait()
                report.kills += 1
                proc = _spawn_server(state, port)
                _wait_serving(proc)
                report.restarts += 1
                say(f"[soak] cycle {cycle}: restarted pid {proc.pid}")
            time.sleep(slice_s)
    finally:
        stop_path.touch()
        for p in procs:
            p.join(30.0)
            if p.is_alive():  # pragma: no cover - hang guard
                p.terminate()
                report.notes.append("client process hung; terminated")

    # Graceful drain: SIGTERM -> settle tickets -> checkpoint -> exit 0.
    say(f"[soak] SIGTERM server pid {proc.pid} for graceful drain")
    proc.send_signal(signal.SIGTERM)
    try:
        tail, _ = proc.communicate(timeout=60.0)
    except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
        proc.kill()
        tail, _ = proc.communicate()
    report.drain_exit_code = proc.returncode
    report.drain_settled = "graceful drain" in (tail or "")
    say(f"[soak] drain exit={report.drain_exit_code}")

    _verify(report, state, logs)
    say(
        f"[soak] acked_puts={report.acked_puts} "
        f"acked_deletes={report.acked_deletes} "
        f"probes={report.dedup_probes} errors={report.errors_observed} "
        f"lost={report.lost_acks} dups={report.duplicate_applies} "
        f"max_window={report.max_error_window:.2f}s ok={report.ok}"
    )
    return report


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------

def _verify(report: NetChaosReport, state: Path, logs: list[Path]) -> None:
    """Cold-recover the server directory and check every invariant
    against the client event logs."""
    from ..core import DurableTree

    durable, _ = DurableTree.recover(state)
    try:
        report.final_entries = len(durable)
        missing = object()
        boots: set[int] = set()
        for log_path in logs:
            last_ok: Optional[float] = None
            expect: dict[int, Any] = {}   # key -> value | missing
            in_doubt: set[int] = set()
            if not log_path.exists():
                report.notes.append(f"missing client log {log_path.name}")
                continue
            for line in log_path.read_text().splitlines():
                try:
                    event = ast.literal_eval(line)
                except (ValueError, SyntaxError):
                    report.notes.append(f"garbled event: {line[:80]}")
                    continue
                kind = event[0]
                if kind == "put":
                    _, key, value, deduped, boot, ts = event
                    report.acked_puts += 1
                    expect[key] = value
                    in_doubt.discard(key)
                    boots.add(boot)
                    last_ok = _window(report, last_ok, ts)
                elif kind == "del":
                    _, key, existed, deduped, boot, ts = event
                    report.acked_deletes += 1
                    expect[key] = missing
                    in_doubt.discard(key)
                    boots.add(boot)
                    last_ok = _window(report, last_ok, ts)
                elif kind == "probe":
                    (_, key, seq, probe_delete, st1, fl1, res1, boot1,
                     st2, fl2, res2, boot2, ts) = event
                    report.dedup_probes += 1
                    _check_probe(report, event)
                    # The probe key's state is covered by the put/del
                    # events the probe emitted; nothing extra here.
                    last_ok = _window(report, last_ok, ts)
                elif kind == "err":
                    _, key, name, ts = event
                    report.errors_observed += 1
                    if name == "retries_exhausted":
                        report.retries_exhausted += 1
                    # Unacked: the op may or may not have applied.
                    in_doubt.add(key)
            # Acked-write loss check: keys whose last event was an ack.
            for key, value in expect.items():
                if key in in_doubt:
                    continue
                found = durable.get(key, missing)
                if value is missing:
                    if found is not missing:
                        report.lost_acks += 1
                        report.notes.append(
                            f"acked delete of {key} resurfaced as {found!r}"
                        )
                elif found is missing or found != value:
                    report.lost_acks += 1
                    report.notes.append(
                        f"acked put {key}={value!r} recovered as "
                        f"{'<missing>' if found is missing else repr(found)}"
                    )
        report.boot_ids_seen = len(boots)
    finally:
        durable.close()


def _window(report: NetChaosReport, last_ok: Optional[float],
            ts: float) -> float:
    if last_ok is not None and ts - last_ok > report.max_error_window:
        report.max_error_window = ts - last_ok
    return ts


def _check_probe(report: NetChaosReport, event: tuple) -> None:
    """Exactly-once-per-tenure: the duplicate delivery must never claim
    a second apply within the same boot, and must echo the original
    logical result."""
    (_, key, seq, probe_delete, st1, fl1, res1, boot1,
     st2, fl2, res2, boot2, _ts) = event
    if st1 != protocol.ST_OK or st2 != protocol.ST_OK:
        return  # a refused delivery applied nothing; nothing to check
    first_applied = bool(fl1 & protocol.FLAG_APPLIED)
    second_applied = bool(fl2 & protocol.FLAG_APPLIED)
    if boot1 == boot2:
        if first_applied and second_applied:
            report.duplicate_applies += 1
            report.notes.append(
                f"duplicate apply: key {key} seq {seq} applied twice "
                f"in tenure {boot1:08x}"
            )
        if not (fl2 & protocol.FLAG_DEDUPED):
            report.duplicate_applies += 1
            report.notes.append(
                f"duplicate delivery of key {key} seq {seq} not marked "
                f"deduped in tenure {boot1:08x}"
            )
        if res1 != res2:
            report.result_mismatches += 1
            report.notes.append(
                f"dedup result drift for key {key} seq {seq}: "
                f"{res1!r} != {res2!r}"
            )
