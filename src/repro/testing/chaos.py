"""Chaos-soak harness for the replication layer.

Runs a seeded, fully deterministic schedule of writes against a
primary + N-replica cluster while injecting faults between operations —
primary kills and partitions, replica kills and restarts, checkpoint
truncations under the stream, and probabilistic transport drop / delay /
duplicate chaos — then heals everything, lets the cluster converge, and
checks the two properties the replication design promises:

1. **No acknowledged write is ever lost.**  The harness keeps a
   *certainty oracle*: the last op per key is recorded only when the
   primary of the current epoch acknowledged it (synchronous quorum
   acks).  A rejected write (``FencedError`` before any state change,
   or ``AckQuorumError`` after local durability but below quorum) makes
   the key *uncertain* and drops it from the oracle — surviving is
   allowed, being relied on is not.  At the end, every certain key must
   hold its certain value on the final primary.
2. **Replicas converge byte-for-byte.**  After healing and draining,
   every replica's ``items()`` must equal the final primary's
   ``items()``, and the final primary's durability directory must
   recover to exactly its in-memory state.

The harness *returns* a :class:`ChaosReport` rather than asserting, so
tests can layer their own expectations (and CI can print the counters
of a failing seed verbatim).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Type, Union

from ..core.bptree import BPlusTree
from ..core.config import TreeConfig
from ..core.durable import DurableTree
from ..core.health import HealthState, ReadOnlyError
from ..core.quit_tree import QuITTree
from ..core.wal import segment_paths
from ..replication import (
    AckQuorumError,
    EpochRegistry,
    FailoverCoordinator,
    FailoverQuorumError,
    FencedError,
    InProcessTransport,
    Primary,
    Replica,
    TransportChaos,
    TransportError,
)
from . import failpoints, iofaults


@dataclass
class ChaosConfig:
    """One soak schedule.  Everything is derived from ``seed``."""

    seed: int = 0
    ops: int = 1000
    n_replicas: int = 3
    #: replicas that must apply a write before it is acknowledged;
    #: ``None`` means a majority of the replica set (the setting under
    #: which most-caught-up election provably preserves acked writes).
    required_acks: Optional[int] = None
    failure_threshold: int = 2
    #: per-op probability that a fault event fires before the op.
    event_probability: float = 0.03
    drop_probability: float = 0.08
    delay_probability: float = 0.08
    duplicate_probability: float = 0.08
    key_space: int = 400
    batch_max: int = 12
    checkpoint_every: int = 150
    fsync: str = "none"
    leaf_capacity: int = 8
    segment_bytes: int = 2048
    tree_class: Type[BPlusTree] = QuITTree

    def majority(self) -> int:
        return self.n_replicas // 2 + 1


@dataclass
class ChaosReport:
    """Counters and verdicts from one soak run."""

    seed: int = 0
    ops: int = 0
    acked: int = 0
    fenced_rejects: int = 0
    ack_failures: int = 0
    unavailable: int = 0
    failovers: int = 0
    quorum_refusals: int = 0
    primary_kills: int = 0
    primary_restarts: int = 0
    replica_kills: int = 0
    replica_restarts: int = 0
    partitions: int = 0
    heals: int = 0
    checkpoints: int = 0
    rejoins: int = 0
    bootstraps: int = 0
    transport_drops: int = 0
    transport_delays: int = 0
    transport_duplicates: int = 0
    final_epoch: int = 0
    certain_keys: int = 0
    final_entries: int = 0
    lost_writes: list = field(default_factory=list)
    divergent_replicas: list = field(default_factory=list)
    invariant_violations: list = field(default_factory=list)
    recovered_matches: bool = True
    converged: bool = False

    @property
    def ok(self) -> bool:
        """Zero acknowledged-write loss and full convergence."""
        return (
            not self.lost_writes
            and not self.divergent_replicas
            and not self.invariant_violations
            and self.recovered_matches
            and self.converged
        )

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"seed={self.seed} {verdict}: {self.acked}/{self.ops} acked, "
            f"{self.failovers} failovers (epoch {self.final_epoch}), "
            f"{self.primary_kills}+{self.replica_kills} kills, "
            f"{self.partitions} partitions, {self.bootstraps} bootstraps, "
            f"{self.transport_drops}/{self.transport_delays}/"
            f"{self.transport_duplicates} drop/delay/dup, "
            f"{len(self.lost_writes)} lost, "
            f"{len(self.divergent_replicas)} divergent, "
            f"{self.final_entries} entries"
        )


class ChaosSoak:
    """Build a cluster under ``root`` and run one seeded schedule."""

    def __init__(self, root: Union[str, Path], config: ChaosConfig) -> None:
        self.root = Path(root)
        self.config = config
        self.rng = random.Random(config.seed)
        self.report = ChaosReport(seed=config.seed)
        self._node_seq = 0
        self._chaos_seq = 0
        self._transports: list[InProcessTransport] = []
        self._partitioned_links: list[InProcessTransport] = []
        self._partitioned_node: Optional[str] = None
        self._retired = 0
        cfg = config
        self.tree_config = TreeConfig(
            leaf_capacity=cfg.leaf_capacity,
            internal_capacity=cfg.leaf_capacity,
        )
        self.registry = EpochRegistry()
        self.required_acks = (
            cfg.required_acks
            if cfg.required_acks is not None
            else cfg.majority()
        )
        primary = Primary(
            self._new_durable("node0"),
            registry=self.registry,
            node_id="node0",
            required_acks=self.required_acks,
        )
        replicas = []
        for i in range(cfg.n_replicas):
            replica = Replica(
                self.root / f"replica{i}",
                self._transport(primary),
                tree_class=cfg.tree_class,
                config=self.tree_config,
                fsync="none",
                name=f"replica{i}",
            )
            replica.bootstrap()
            primary.attach(replica)
            replicas.append(replica)
        self.coordinator = FailoverCoordinator(
            primary,
            self._transport(primary),
            replicas,
            self.registry,
            transport_factory=self._transport,
            failure_threshold=cfg.failure_threshold,
        )

    # -- plumbing ------------------------------------------------------

    def _new_durable(self, name: str) -> DurableTree:
        cfg = self.config
        return DurableTree(
            cfg.tree_class(self.tree_config),
            self.root / name,
            fsync=cfg.fsync,
            segment_bytes=cfg.segment_bytes,
        )

    def _transport(self, primary: Primary) -> InProcessTransport:
        cfg = self.config
        self._chaos_seq += 1
        chaos = TransportChaos(
            drop_probability=cfg.drop_probability,
            delay_probability=cfg.delay_probability,
            duplicate_probability=cfg.duplicate_probability,
            seed=cfg.seed * 7919 + self._chaos_seq,
        )
        transport = InProcessTransport(primary, chaos=chaos)
        self._transports.append(transport)
        return transport

    @property
    def primary(self) -> Primary:
        return self.coordinator.primary

    def _live_links(self) -> list[InProcessTransport]:
        links = [self.coordinator.primary_transport]
        links += [
            r.transport
            for r in self.coordinator.replicas
            if isinstance(r.transport, InProcessTransport)
            and r.transport.primary is self.primary
        ]
        return links

    # -- fault events --------------------------------------------------

    def _event(self) -> None:
        roll = self.rng.random()
        if roll < 0.22:
            self._partition_primary()
        elif roll < 0.44:
            self._heal()
        elif roll < 0.60:
            self._kill_replica()
        elif roll < 0.78:
            self._restart_replica()
        elif roll < 0.88:
            self._kill_primary()
        else:
            self._rejoin_retired()

    def _partition_primary(self) -> None:
        if self._partitioned_node is not None or not self.primary.alive:
            return
        for link in self._live_links():
            link.partition()
            self._partitioned_links.append(link)
        self._partitioned_node = self.primary.node_id
        self.registry.partition(self.primary.node_id)
        self.report.partitions += 1

    def _heal(self) -> None:
        if self._partitioned_node is None:
            return
        for link in self._partitioned_links:
            link.heal()
        self._partitioned_links.clear()
        self.registry.heal_all()
        self._partitioned_node = None
        self.report.heals += 1

    def _kill_primary(self) -> None:
        if not self.primary.alive:
            return
        self.primary.kill()
        self.report.primary_kills += 1
        self._retired += 1

    def _kill_replica(self) -> None:
        alive = [r for r in self.coordinator.replicas if r.alive]
        # Never drop below the election quorum: a real deployment sizes
        # its replica set so this cannot happen; the harness's job is
        # write-loss hunting, not availability-math torture.
        if len(alive) <= self.coordinator.election_quorum:
            return
        self.rng.choice(alive).kill()
        self.report.replica_kills += 1

    def _restart_replica(self) -> None:
        dead = [r for r in self.coordinator.replicas if not r.alive]
        if not dead:
            return
        replica = self.rng.choice(dead)
        replica.attach(self._transport(self.primary))
        try:
            replica.resume()
        except Exception:
            try:
                replica.bootstrap()
            except Exception:
                replica.kill()
                return
        # Safe to attach even with a stale-tenure cursor: the primary's
        # ack loop refuses cross-epoch positions until the replica's
        # first poll has re-bootstrapped it into the current tenure.
        self.primary.attach(replica)
        self.report.replica_restarts += 1

    def _rejoin_retired(self) -> None:
        if self._retired == 0 or not self.primary.alive:
            return
        if len(self.coordinator.replicas) >= self.config.n_replicas + 2:
            return
        self._retired -= 1
        self._node_seq += 1
        name = f"rejoin{self._node_seq}"
        replica = Replica(
            self.root / name,
            self._transport(self.primary),
            tree_class=self.config.tree_class,
            config=self.tree_config,
            fsync="none",
            name=name,
        )
        try:
            replica.bootstrap()
        except Exception:
            return
        self.coordinator.add_replica(replica)
        self.report.rejoins += 1

    # -- the schedule --------------------------------------------------

    def run(self) -> ChaosReport:
        cfg = self.config
        report = self.report
        certain: dict = {}
        for step in range(cfg.ops):
            if self.rng.random() < cfg.event_probability:
                self._event()
            if step and step % cfg.checkpoint_every == 0 \
                    and self.primary.alive:
                try:
                    self.primary.checkpoint()
                    report.checkpoints += 1
                except FencedError:
                    pass
            try:
                promotion = self.coordinator.tick()
            except FailoverQuorumError:
                promotion = None
                report.quorum_refusals += 1
            if promotion is not None:
                report.failovers += 1
                # The deposed node leaves the follower pool (the winner
                # became primary); let a replacement node join later so
                # repeated failovers do not drain the cluster.
                self._retired += 1
            report.ops += 1
            key = self.rng.randrange(cfg.key_space)
            value = step
            roll = self.rng.random()
            if not self.primary.alive:
                report.unavailable += 1
                continue
            try:
                if roll < 0.60:
                    self.primary.insert(key, value)
                    certain[key] = ("present", value)
                elif roll < 0.75:
                    self.primary.delete(key)
                    certain[key] = ("absent", None)
                else:
                    batch = [
                        ((key + j) % cfg.key_space, value)
                        for j in range(
                            1 + self.rng.randrange(cfg.batch_max)
                        )
                    ]
                    self.primary.insert_many(batch)
                    for k, v in batch:
                        certain[k] = ("present", v)
                report.acked += 1
            except FencedError:
                # Rejected before any state change: the oracle entry for
                # this key is still exactly right.
                report.fenced_rejects += 1
            except AckQuorumError:
                # Locally durable but below quorum: the key's fate now
                # depends on which node wins a future election.
                report.ack_failures += 1
                if roll < 0.75:
                    certain.pop(key, None)
                else:
                    for k, _ in batch:
                        certain.pop(k, None)
            except TransportError:
                report.unavailable += 1
        self._finish(certain)
        return report

    def _restart_primary(self) -> None:
        """Operator restart of a dead primary on its own node (the
        no-electable-replicas endgame: the data is on its disk)."""
        old = self.coordinator.primary
        old.close()  # flush: an in-process restart is a graceful one
        durable, _ = DurableTree.recover(
            old.directory,
            self.config.tree_class,
            self.tree_config,
            fsync=self.config.fsync,
            segment_bytes=self.config.segment_bytes,
        )
        self.coordinator.primary = Primary(
            durable,
            registry=self.registry,
            node_id=old.node_id,
            required_acks=self.required_acks,
        )
        self.coordinator.primary_transport = self._transport(
            self.coordinator.primary
        )
        self.report.primary_restarts += 1

    # -- convergence and verdicts --------------------------------------

    def _finish(self, certain: dict) -> None:
        report = self.report
        cfg = self.config
        self._heal()
        # Revive every dead replica from its own disk first (a local
        # operation) so the election below has its full candidate set.
        needs_bootstrap = []
        for replica in self.coordinator.replicas:
            if not replica.alive:
                try:
                    replica.resume()
                    report.replica_restarts += 1
                except Exception:
                    replica.kill()
                    needs_bootstrap.append(replica)
        if not self.primary.alive:
            try:
                self.coordinator.failover()
                report.failovers += 1
            except FailoverQuorumError:
                self._restart_primary()
        for replica in needs_bootstrap:
            replica.alive = True
            replica.attach(self._transport(self.primary))
            replica.bootstrap()
        # Quiet, direct links to the live primary for the final drain.
        for replica in self.coordinator.replicas:
            transport = InProcessTransport(self.primary)
            replica.attach(transport)
            self.primary.attach(replica)
            if replica.epoch != self.primary.epoch:
                # Cross-tenure cursor: positions are not comparable, so
                # rebuild instead of letting catch_up compare them.
                replica.bootstrap()
        tail = self.primary.tail_position()
        for replica in self.coordinator.replicas:
            replica.catch_up(tail, max_rounds=64)
        # Tally transport chaos that actually fired, across every link
        # the run ever created (links are swapped on restarts/failovers).
        for transport in self._transports:
            report.transport_drops += transport.drops
            report.transport_delays += transport.delays
            report.transport_duplicates += transport.duplicates
        for replica in self.coordinator.replicas:
            report.bootstraps += replica.bootstraps
        report.final_epoch = self.registry.current()
        report.certain_keys = len(certain)
        primary_items = list(self.primary.items())
        report.final_entries = len(primary_items)
        state = dict(primary_items)
        for key, (kind, value) in sorted(certain.items()):
            if kind == "present":
                if state.get(key, _MISSING) != value:
                    report.lost_writes.append(
                        (key, value, state.get(key, None))
                    )
            else:
                if key in state:
                    report.lost_writes.append((key, None, state[key]))
        for replica in self.coordinator.replicas:
            if replica.items() != primary_items:
                report.divergent_replicas.append(replica.name)
            violations = replica.check(check_min_fill=False)
            if violations:
                report.invariant_violations.append(
                    (replica.name, violations)
                )
        violations = self.primary.check(check_min_fill=False)
        if violations:
            report.invariant_violations.append(
                (self.primary.node_id, violations)
            )
        report.converged = not report.divergent_replicas
        # Finally: the winning primary's directory must itself recover
        # to exactly the served state (the promoted node is a real
        # durability root, not just a cache).
        self.primary.close()
        recovered, _ = DurableTree.recover(
            self.primary.directory, cfg.tree_class, self.tree_config
        )
        report.recovered_matches = (
            list(recovered.items()) == primary_items
        )
        recovered.close()
        for replica in self.coordinator.replicas:
            replica.close()


_MISSING = object()


def run_soak(
    root: Union[str, Path], config: Optional[ChaosConfig] = None
) -> ChaosReport:
    """Convenience wrapper: build, run, and report one soak schedule."""
    failpoints.reset()
    return ChaosSoak(root, config or ChaosConfig()).run()


# ======================================================================
# io-fault soak: disk faults instead of process/network faults
# ======================================================================


@dataclass
class IOFaultConfig:
    """One seeded disk-fault schedule (the ``io-fault`` chaos mode).

    Three fault phases fire at deterministic points in the op stream:

    * **EIO bursts** (``eio_bursts`` of them): ``io.wal.write`` returns
      ``EIO`` a couple of times — the retry loop must absorb them so
      every op in the burst still acks;
    * **one ENOSPC window**: ``io.wal.fsync`` fails unboundedly for
      ``enospc_window_ops`` ops — the primary must degrade to
      read-only (mutations refused fast, reads served from memory),
      then heal via a checkpoint when the "disk" clears;
    * **one bit-rot event**: a byte is flipped in a *closed* replica
      WAL segment; the replica's scrubber must detect it, quarantine
      the evidence, and rebuild from the primary.
    """

    seed: int = 0
    ops: int = 600
    key_space: int = 200
    batch_max: int = 8
    eio_bursts: int = 3
    enospc_window_ops: int = 20
    scrub_every: int = 50
    leaf_capacity: int = 8
    segment_bytes: int = 1024
    tree_class: Type[BPlusTree] = QuITTree


@dataclass
class IOFaultReport:
    """Counters and verdicts from one io-fault soak."""

    seed: int = 0
    ops: int = 0
    acked: int = 0
    eio_bursts: int = 0
    read_only_refusals: int = 0
    reads_served_degraded: int = 0
    bitrot_events: int = 0
    health_retries: int = 0
    read_only_trips: int = 0
    recoveries: int = 0
    scrub_cycles: int = 0
    scrub_corruptions: int = 0
    scrub_quarantines: int = 0
    peer_repairs: int = 0
    injected: dict = field(default_factory=dict)
    final_entries: int = 0
    lost_writes: list = field(default_factory=list)
    divergent_replicas: list = field(default_factory=list)
    recovered_matches: bool = True
    converged: bool = False

    @property
    def ok(self) -> bool:
        """Zero acked-write loss, full convergence, *and* every fault
        phase demonstrably bit (a schedule whose faults never fired
        proves nothing)."""
        return (
            not self.lost_writes
            and not self.divergent_replicas
            and self.recovered_matches
            and self.converged
            and self.health_retries > 0
            and self.read_only_trips > 0
            and self.read_only_refusals > 0
            and self.reads_served_degraded > 0
            and self.recoveries > 0
            and self.scrub_corruptions > 0
            and self.scrub_quarantines > 0
            and self.peer_repairs > 0
        )

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"seed={self.seed} {verdict}: {self.acked}/{self.ops} acked, "
            f"{self.eio_bursts} EIO bursts ({self.health_retries} "
            f"retries), {self.read_only_refusals} read-only refusals "
            f"({self.reads_served_degraded} degraded reads), "
            f"{self.bitrot_events} bit-rot -> {self.scrub_quarantines} "
            f"quarantined / {self.peer_repairs} peer-repaired, "
            f"{len(self.lost_writes)} lost, "
            f"{len(self.divergent_replicas)} divergent, "
            f"{self.final_entries} entries"
        )


class IOFaultSoak:
    """Primary + 1 sync replica under a seeded disk-fault schedule.

    The primary persists with ``fsync="group"`` so the fault phases
    also exercise the group-commit settlement paths (a batch that meets
    ``ReadOnlyError`` must fail its tickets fast, not hang them).
    """

    def __init__(self, root: Union[str, Path], config: IOFaultConfig) -> None:
        from ..replication import InProcessTransport  # local: avoid cycle churn

        self.root = Path(root)
        self.config = config
        self.rng = random.Random(config.seed)
        self.report = IOFaultReport(seed=config.seed)
        self.tree_config = TreeConfig(
            leaf_capacity=config.leaf_capacity,
            internal_capacity=config.leaf_capacity,
        )
        self.primary = Primary(
            DurableTree(
                config.tree_class(self.tree_config),
                self.root / "primary",
                fsync="group",
                segment_bytes=config.segment_bytes,
            ),
            node_id="primary",
            required_acks=1,
        )
        self.replica = Replica(
            self.root / "replica",
            InProcessTransport(self.primary),
            tree_class=config.tree_class,
            config=self.tree_config,
            fsync="none",
            segment_bytes=config.segment_bytes,
            name="replica",
        )
        self.replica.bootstrap()
        self.primary.attach(self.replica)
        # Peer-heal only: a replica with a live primary should rebuild
        # from the stronger copy, and a soak that silently fell back to
        # a local checkpoint repair would mask a broken heal path.
        self.scrubber = self.replica.make_scrubber(
            max_bytes_per_cycle=1 << 30, auto_repair=False
        )

    # -- fault phases --------------------------------------------------

    def _eio_burst(self) -> None:
        """Two consecutive EIO on the WAL write: retries must absorb it
        so the in-flight op still acks."""
        iofaults.arm("io.wal.write", "eio", times=2)
        self.report.eio_bursts += 1

    def _enospc_window(self, certain: dict) -> None:
        """Unbounded fsync ENOSPC: degrade to read-only, keep serving
        reads, refuse mutations fast, heal when the disk clears."""
        cfg = self.config
        iofaults.arm("io.wal.fsync", "enospc")
        try:
            for _ in range(cfg.enospc_window_ops):
                key = self.rng.randrange(cfg.key_space)
                self.report.ops += 1
                try:
                    self.primary.insert(key, "doomed")
                except ReadOnlyError:
                    self.report.read_only_refusals += 1
                else:
                    # The first op of the window may land if its batch
                    # was flushed before the fault armed took effect —
                    # but once the monitor trips, nothing may.
                    health = self.primary.durable.health
                    if not health.writable:
                        raise AssertionError(
                            "mutation acknowledged while read-only"
                        )
                    certain[key] = ("present", "doomed")
                    self.report.acked += 1
                # Reads must keep serving the acked history throughout.
                probe = self._any_certain(certain)
                if probe is not None:
                    k, v = probe
                    if self.primary.get(k, _MISSING) == v:
                        self.report.reads_served_degraded += 1
        finally:
            iofaults.disarm("io.wal.fsync")
        # The disk came back: a checkpoint proves it end-to-end (full
        # snapshot write + WAL truncate) and restores HEALTHY.
        self.primary.checkpoint()
        if self.primary.durable.health.state is not HealthState.HEALTHY:
            raise AssertionError(
                "checkpoint on the freed disk did not restore HEALTHY"
            )

    def _any_certain(self, certain: dict) -> Optional[tuple]:
        for key, (kind, value) in certain.items():
            if kind == "present":
                return key, value
        return None

    def _bitrot_event(self) -> bool:
        """Flip one byte mid-record in a closed replica segment, then
        scrub: detect -> quarantine -> rebuild from the primary."""
        wal_dir = self.replica.durable.wal.directory
        closed = segment_paths(wal_dir)[:-1]
        if not closed:
            return False  # not rotated yet; caller retries later
        victim = self.rng.choice(closed)
        data = bytearray(victim.read_bytes())
        if len(data) < 12:
            return False
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        self.report.bitrot_events += 1
        cycle = self.scrubber.scrub_once(full=True)
        if cycle.peer_repaired:
            # Post-heal: the replica must scrub clean and match the
            # primary byte-for-byte (a failed repair is captured by the
            # final counters instead).
            recheck = self.scrubber.scrub_once(full=True)
            if not recheck.clean:
                raise AssertionError(
                    f"replica still corrupt after peer heal: "
                    f"{recheck.issues}"
                )
            if self.replica.items() != list(self.primary.items()):
                raise AssertionError(
                    "replica diverged from primary after peer heal"
                )
        return True

    # -- the schedule --------------------------------------------------

    def run(self) -> IOFaultReport:
        cfg = self.config
        report = self.report
        certain: dict = {}
        # Deterministic fault placement: bursts in the middle half,
        # the ENOSPC window at midpoint, bit rot at the 3/4 mark.
        burst_at = set(
            self.rng.sample(
                range(cfg.ops // 4, cfg.ops // 2 - 1), cfg.eio_bursts
            )
        )
        enospc_at = cfg.ops // 2
        bitrot_due = False
        for step in range(cfg.ops):
            if step in burst_at:
                self._eio_burst()
            if step == enospc_at:
                self._enospc_window(certain)
            if step == cfg.ops * 3 // 4:
                bitrot_due = True
            if bitrot_due:
                bitrot_due = not self._bitrot_event()
            elif cfg.scrub_every and step and step % cfg.scrub_every == 0:
                # Routine paced scrubbing between fault phases must
                # stay clean (no false positives against live appends).
                cycle = self.scrubber.scrub_once()
                if not cycle.clean:
                    raise AssertionError(
                        f"routine scrub false positive: {cycle.issues}"
                    )
            report.ops += 1
            key = self.rng.randrange(cfg.key_space)
            value = step
            roll = self.rng.random()
            try:
                if roll < 0.60:
                    self.primary.insert(key, value)
                    certain[key] = ("present", value)
                elif roll < 0.75:
                    self.primary.delete(key)
                    certain[key] = ("absent", None)
                else:
                    batch = [
                        ((key + j) % cfg.key_space, value)
                        for j in range(1 + self.rng.randrange(cfg.batch_max))
                    ]
                    self.primary.insert_many(batch)
                    for k, v in batch:
                        certain[k] = ("present", v)
                report.acked += 1
            except ReadOnlyError:
                # Refused before any state change: nothing was acked,
                # the oracle entry for this key is still exactly right.
                report.read_only_refusals += 1
        self._finish(certain)
        return report

    # -- convergence and verdicts --------------------------------------

    def _finish(self, certain: dict) -> None:
        report = self.report
        cfg = self.config
        report.injected = {
            f"{site}:{kind}": count
            for (site, kind), count in iofaults.injected_counts().items()
        }
        iofaults.reset()
        self.replica.catch_up(self.primary.tail_position(), max_rounds=64)
        health = self.primary.durable.health
        report.health_retries = health.retries
        report.read_only_trips = health.read_only_trips
        report.recoveries = health.recoveries
        report.scrub_cycles = self.scrubber.cycles
        report.scrub_corruptions = self.scrubber.corruptions
        report.scrub_quarantines = self.scrubber.quarantines
        report.peer_repairs = self.scrubber.peer_repairs
        primary_items = list(self.primary.items())
        report.final_entries = len(primary_items)
        state = dict(primary_items)
        for key, (kind, value) in sorted(certain.items()):
            if kind == "present":
                if state.get(key, _MISSING) != value:
                    report.lost_writes.append(
                        (key, value, state.get(key, None))
                    )
            elif key in state:
                report.lost_writes.append((key, None, state[key]))
        if self.replica.items() != primary_items:
            report.divergent_replicas.append(self.replica.name)
        report.converged = not report.divergent_replicas
        self.primary.close()
        recovered, _ = DurableTree.recover(
            self.primary.directory, cfg.tree_class, self.tree_config
        )
        report.recovered_matches = list(recovered.items()) == primary_items
        recovered.close()
        self.replica.close()


def run_iofault_soak(
    root: Union[str, Path], config: Optional[IOFaultConfig] = None
) -> IOFaultReport:
    """Build, run, and report one seeded disk-fault soak."""
    failpoints.reset()
    iofaults.reset()
    return IOFaultSoak(root, config or IOFaultConfig()).run()


# The network-tier soak lives in its own module (it manages OS
# processes, not in-process nodes) but is part of the same harness
# family; re-exported here so every soak has one import home.
from .netchaos import (  # noqa: E402
    ERROR_WINDOW_BOUND,
    NetChaosReport,
    run_network_soak,
)
