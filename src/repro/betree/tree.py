"""A Bε-tree: the write-optimized baseline of the paper's related work
(§6; Bender et al. [6]).

Bε-trees trade internal fan-out for per-node message buffers: an insert
or delete becomes a *message* dropped into the root's buffer, and full
buffers flush batches of messages one level down, so the amortized
I/O/insert beats a B+-tree by the batching factor.  The paper's §6
argument — which `exp_betree` makes measurable — is that this
amortization is *sortedness-unaware*: a Bε-tree ingests a scrambled
stream exactly as fast as a sorted one, while QuIT converts sortedness
into proportional savings.

Semantics: newest-wins messages.  Along any root-to-leaf path, a message
closer to the root is newer than any message for the same key further
down (inserts enter at the root; flushes only push messages downward and
overwrite older ones).  Point lookups therefore return the *first*
message found while descending; deletes are tombstone messages.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Union

from ..core.bptree import TreeInvariantError
from ..core.node import Key, LeafNode, make_leaf


def _require(
    cond: bool, message: str, errors: Optional[list] = None
) -> None:
    """Invariant check that survives ``python -O`` (unlike ``assert``).

    With ``errors`` provided the violation is collected instead of
    raised, so :meth:`BeTree.check` can survey every problem at once.
    """
    if cond:
        return
    if errors is None:
        raise TreeInvariantError(message)
    errors.append(message)

#: Message operations.
_PUT = "put"
_DEL = "del"


@dataclass
class BeTreeConfig:
    """Configuration of a Bε-tree.

    Attributes:
        leaf_capacity: entries per leaf.
        fanout: max children per internal node (the "Bε" pivots).
        buffer_capacity: messages an internal node buffers before it
            must flush a batch downward.  In the classical formulation
            ``fanout = B**eps`` and the buffer takes the remaining
            ``B - B**eps`` space; here both are explicit knobs.
        layout: leaf storage layout (``"gapped"`` or ``"list"``) — the
            Bε-tree shares the core leaf classes, so it inherits the
            slot-array layout like every other variant.
    """

    leaf_capacity: int = 64
    fanout: int = 8
    buffer_capacity: int = 64
    layout: str = "gapped"

    def __post_init__(self) -> None:
        if self.layout not in ("gapped", "list"):
            raise ValueError(
                f"layout must be 'gapped' or 'list', got {self.layout!r}"
            )
        if self.leaf_capacity < 4:
            raise ValueError(
                f"leaf_capacity must be >= 4, got {self.leaf_capacity}"
            )
        if self.fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {self.fanout}")
        if self.buffer_capacity < 1:
            raise ValueError(
                f"buffer_capacity must be >= 1, got {self.buffer_capacity}"
            )


@dataclass
class BeTreeStats:
    """Work counters for the Bε-tree.

    The four gap/typed counters mirror
    :class:`repro.core.stats.TreeStats` — the Bε-tree's leaves are the
    shared core leaf classes, which report their layout events into
    whatever stats receiver they are wired to.
    """

    messages_enqueued: int = 0
    messages_moved: int = 0
    flushes: int = 0
    leaf_applies: int = 0
    leaf_splits: int = 0
    internal_splits: int = 0
    node_accesses: int = 0
    gap_hits: int = 0
    gap_redistributions: int = 0
    typed_leaves: int = 0
    typed_demotions: int = 0


#: Bε-tree leaves are the shared core leaf classes (list or gapped),
#: so the layout work lands in one place for every variant.
_Leaf = LeafNode


class _Internal:
    __slots__ = ("pivots", "children", "buffer")

    def __init__(self) -> None:
        self.pivots: list[Key] = []
        self.children: list[Union["_Internal", _Leaf]] = []
        # key -> (op, value); newest message for the key at this level.
        self.buffer: dict[Key, tuple[str, Any]] = {}

    @property
    def is_leaf(self) -> bool:
        """Internal-node marker."""
        return False

    def child_index_for(self, key: Key) -> int:
        """Index of the child whose range contains ``key``."""
        return bisect_right(self.pivots, key)


_Node = Union[_Internal, _Leaf]


class BeTree:
    """Write-optimized Bε-tree with the same public surface as the
    package's B+-tree variants (insert/get/range_query/delete/items)."""

    name = "Be-tree"

    def __init__(self, config: Optional[BeTreeConfig] = None) -> None:
        self.config = config or BeTreeConfig()
        self.stats = BeTreeStats()
        self._root: _Node = self._new_leaf()

    @property
    def layout(self) -> str:
        """Leaf storage layout this tree was built with."""
        return self.config.layout

    def _new_leaf(self) -> _Leaf:
        return make_leaf(
            self.config.layout,
            self.config.leaf_capacity,
            self.stats,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # Writes: everything is a message
    # ------------------------------------------------------------------

    def insert(self, key: Key, value: Any = None) -> None:
        """Upsert ``(key, value)`` (amortized via message batching)."""
        self._enqueue(key, (_PUT, value))

    def delete(self, key: Key) -> None:
        """Delete ``key`` (tombstone message; idempotent).

        Unlike the B+-tree variants this cannot report whether the key
        existed without paying a lookup — the classic Bε-tree trade.
        """
        self._enqueue(key, (_DEL, None))

    def insert_many(self, items: Iterable[tuple[Key, Any]]) -> int:
        """Batched upsert: each item becomes a message, so the batch is
        absorbed at buffer speed anyway — the method exists for surface
        parity with the B+-tree variants.  Returns the number of items
        enqueued (message semantics hide the net size delta without a
        read, the classic Bε-tree trade)."""
        count = 0
        for key, value in items:
            self.insert(key, value)
            count += 1
        return count

    def _enqueue(self, key: Key, message: tuple[str, Any]) -> None:
        self.stats.messages_enqueued += 1
        root = self._root
        if root.is_leaf:
            self._apply_to_leaf(root, key, message)
            if root.size > self.config.leaf_capacity:
                self._split_root_leaf()
            return
        root.buffer[key] = message
        if len(root.buffer) > self.config.buffer_capacity:
            self._flush(root)
            if len(root.pivots) + 1 > self.config.fanout:
                self._split_root_internal()

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _flush(self, node: _Internal) -> None:
        """Push the largest per-child message group one level down."""
        self.stats.flushes += 1
        groups: dict[int, list[Key]] = {}
        for key in node.buffer:
            groups.setdefault(node.child_index_for(key), []).append(key)
        child_idx = max(groups, key=lambda i: len(groups[i]))
        keys = groups[child_idx]
        child = node.children[child_idx]
        batch = [(k, node.buffer.pop(k)) for k in keys]
        self.stats.messages_moved += len(batch)
        if child.is_leaf:
            for k, message in sorted(batch):
                self._apply_to_leaf(child, k, message)
            # A batch can overfill the leaf several times over; split
            # every oversized piece.
            pending = [child_idx]
            while pending:
                idx = pending.pop()
                piece = node.children[idx]
                if piece.size > self.config.leaf_capacity:
                    self._split_child(node, idx)
                    pending.extend((idx, idx + 1))
        else:
            inner: _Internal = child
            # Parent messages are newer: they overwrite the child's.
            for k, message in batch:
                inner.buffer[k] = message
            if len(inner.buffer) > self.config.buffer_capacity:
                self._flush(inner)
            # Splits inside the recursive flush may have pushed the
            # child past its fan-out; repair it here (each flush fixes
            # the level below it — transient overflow deeper down is
            # repaired by the next flush that reaches it).
            while len(inner.pivots) + 1 > self.config.fanout:
                self._split_child(node, child_idx)
                left = node.children[child_idx]
                right = node.children[child_idx + 1]
                inner = (
                    left
                    if len(left.pivots) >= len(right.pivots)
                    else right
                )
                child_idx = node.children.index(inner)

    def _apply_to_leaf(
        self, leaf: _Leaf, key: Key, message: tuple[str, Any]
    ) -> None:
        self.stats.leaf_applies += 1
        op, value = message
        if op == _PUT:
            leaf.insert_entry(key, value)
        else:
            idx = leaf.find(key)
            if idx is not None:
                leaf.remove_at(idx)

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------

    def _split_root_leaf(self) -> None:
        leaf: _Leaf = self._root
        right, pivot = self._split_leaf(leaf)
        root = _Internal()
        root.pivots = [pivot]
        root.children = [leaf, right]
        self._root = root

    def _split_root_internal(self) -> None:
        node: _Internal = self._root
        right, pivot = self._split_internal(node)
        root = _Internal()
        root.pivots = [pivot]
        root.children = [node, right]
        self._root = root

    def _split_leaf(self, leaf: _Leaf) -> tuple[_Leaf, Key]:
        self.stats.leaf_splits += 1
        # split_at clones the leaf's layout and fixes the chain links.
        return leaf.split_at(leaf.size // 2)

    def _split_internal(self, node: _Internal) -> tuple[_Internal, Key]:
        self.stats.internal_splits += 1
        mid = len(node.pivots) // 2
        pivot = node.pivots[mid]
        right = _Internal()
        right.pivots = node.pivots[mid + 1:]
        right.children = node.children[mid + 1:]
        del node.pivots[mid:]
        del node.children[mid + 1:]
        for key in list(node.buffer):
            if key >= pivot:
                right.buffer[key] = node.buffer.pop(key)
        return right, pivot

    def _split_child(self, parent: _Internal, child_idx: int) -> None:
        child = parent.children[child_idx]
        if child.is_leaf:
            right, pivot = self._split_leaf(child)
        else:
            right, pivot = self._split_internal(child)
        insort(parent.pivots, pivot)
        parent.children.insert(child_idx + 1, right)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        """Point lookup: the first (newest) message on the path wins."""
        node = self._root
        self.stats.node_accesses += 1
        while not node.is_leaf:
            message = node.buffer.get(key)
            if message is not None:
                op, value = message
                return value if op == _PUT else default
            node = node.children[node.child_index_for(key)]
            self.stats.node_accesses += 1
        idx = node.find(key)
        if idx is not None:
            return node.value_at(idx)
        return default

    def __contains__(self, key: Key) -> bool:
        sentinel = object()
        return self.get(key, default=sentinel) is not sentinel

    def get_many(self, keys, default: Any = None) -> list[Any]:
        """Batched point lookups aligned with ``keys``.

        The sorted probe batch descends the tree *once*: at each internal
        node the whole group checks the buffer (newest message wins, as
        in :meth:`get`), and the unresolved remainder is partitioned
        across children by pivot — every node on the way down is visited
        one time for the batch instead of once per probe.
        """
        key_list = keys if isinstance(keys, list) else list(keys)
        n = len(key_list)
        out = [default] * n
        if not n:
            return out
        order = sorted(range(n), key=key_list.__getitem__)
        probes = [(key_list[pos], pos) for pos in order]
        self._get_many_in(self._root, probes, out, default)
        return out

    def _get_many_in(
        self,
        node: _Node,
        probes: list[tuple[Key, int]],
        out: list[Any],
        default: Any,
    ) -> None:
        """Resolve sorted ``probes`` (key, output position) within
        ``node``'s subtree."""
        self.stats.node_accesses += 1
        if node.is_leaf:
            lk, lv, ln = node.view()
            for key, pos in probes:
                idx = bisect_left(lk, key, 0, ln)
                if idx < ln and lk[idx] == key:
                    out[pos] = lv[idx]
            return
        buffer = node.buffer
        if buffer:
            remaining = []
            for probe in probes:
                message = buffer.get(probe[0])
                if message is None:
                    remaining.append(probe)
                elif message[0] == _PUT:
                    out[probe[1]] = message[1]
                # _DEL tombstone: the probe resolves to ``default``.
            probes = remaining
        pivots = node.pivots
        children = node.children
        start = 0
        total = len(probes)
        while start < total:
            child_idx = bisect_right(pivots, probes[start][0])
            stop = start + 1
            if child_idx < len(pivots):
                bound = pivots[child_idx]
                while stop < total and probes[stop][0] < bound:
                    stop += 1
            else:
                stop = total
            self._get_many_in(
                children[child_idx], probes[start:stop], out, default
            )
            start = stop

    def range_iter(self, start: Key, end: Key) -> Iterator[tuple[Key, Any]]:
        """Iterator over the entries of :meth:`range_query`.

        Provided for API parity with the B+-tree variants; message
        resolution requires seeing every buffer on the overlapping
        paths, so the result is materialized up front rather than
        streamed.
        """
        return iter(self.range_query(start, end))

    def count_range(self, start: Key, end: Key) -> int:
        """Number of live entries in ``[start, end)`` (materializes the
        resolved range — see :meth:`range_iter`)."""
        return len(self.range_query(start, end))

    def range_query(self, start: Key, end: Key) -> list[tuple[Key, Any]]:
        """Entries with ``start <= key < end``: merges the pending
        messages along every overlapping path over the leaf contents."""
        if start >= end:
            return []
        resolved: dict[Key, tuple[str, Any]] = {}
        self._collect_range(self._root, start, end, resolved)
        return sorted(
            (k, v) for k, (op, v) in resolved.items() if op == _PUT
        )

    def _collect_range(
        self,
        node: _Node,
        start: Key,
        end: Key,
        resolved: dict[Key, tuple[str, Any]],
    ) -> None:
        """Post-order resolution: children first, then this node's buffer
        overwrites (higher = newer)."""
        self.stats.node_accesses += 1
        if node.is_leaf:
            lk, lv, ln = node.view()
            lo = bisect_left(lk, start, 0, ln)
            hi = bisect_left(lk, end, 0, ln)
            for i in range(lo, hi):
                resolved.setdefault(lk[i], (_PUT, lv[i]))
            return
        first = node.child_index_for(start)
        last = node.child_index_for(end)
        for idx in range(first, last + 1):
            self._collect_range(node.children[idx], start, end, resolved)
        for key, message in node.buffer.items():
            if start <= key < end:
                resolved[key] = message

    def items(self) -> Iterator[tuple[Key, Any]]:
        """All live entries in key order (resolves every buffer)."""
        lo, hi = self._key_extents()
        if lo is None:
            return iter(())
        return iter(self.range_query(lo, _PastEnd(hi)))

    def __len__(self) -> int:
        """Live entry count (O(n): requires resolving the buffers)."""
        return sum(1 for _ in self.items())

    def _key_extents(self) -> tuple[Optional[Key], Optional[Key]]:
        keys = list(self._all_keys_unresolved())
        if not keys:
            return None, None
        return min(keys), max(keys)

    def _all_keys_unresolved(self) -> Iterator[Key]:
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.keys
            else:
                yield from node.buffer.keys()
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------

    def flush_all(self) -> None:
        """Drain every buffer down to the leaves (checkpoint)."""
        changed = True
        while changed:
            changed = False
            for node in self._internal_nodes():
                if node.buffer:
                    self._flush(node)
                    if (
                        node is self._root
                        and len(node.pivots) + 1 > self.config.fanout
                    ):
                        self._split_root_internal()
                    changed = True

    def _internal_nodes(self) -> list[_Internal]:
        out: list[_Internal] = []
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                out.append(node)
                stack.extend(node.children)
        return out

    def height(self) -> int:
        """Levels including the leaf level."""
        node = self._root
        h = 1
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def validate(self, errors: Optional[list] = None) -> None:
        """Structural invariants: sorted pivots/leaves, buffer keys within
        subtree ranges, leaf chain in global order.

        Raises :class:`TreeInvariantError` at the first violation, or
        collects every violation into ``errors`` when provided."""
        self._validate_node(self._root, None, None, errors)
        # Leaf chain strictly ascends.
        leaves: list[_Leaf] = []
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(node.children)
        flat = [k for leaf in leaves for k in sorted(leaf.keys)]
        _require(sorted(flat) == sorted(set(flat)), "duplicate leaf keys", errors)

    def check(self, check_min_fill: bool = False) -> list:
        """Non-raising validation: the list of violated invariants.

        Mirrors :meth:`repro.core.bptree.BPlusTree.check` so harnesses
        can diagnose any variant uniformly.  ``check_min_fill`` is
        accepted for signature parity; a Bε-tree has no min-fill
        invariant (buffers absorb deletes), so it is ignored.
        """
        errors: list = []
        self.validate(errors)
        return errors

    def scrub(self):
        """Post-recovery hygiene pass, mirroring
        :meth:`repro.core.bptree.BPlusTree.scrub`.

        The Bε-tree keeps no fast-path pointers or leaf chain, so there
        is nothing repairable-by-reset; the scrub drains every buffer
        (checkpoint) and reports structural damage, which scrubbing
        cannot repair, as issues for :meth:`check`-style triage.
        """
        from ..core.stats import ScrubReport

        self.flush_all()
        report = ScrubReport(variant=self.name)
        report.issues.extend(self.check())
        return report

    def _validate_node(
        self,
        node: _Node,
        low: Optional[Key],
        high: Optional[Key],
        errors: Optional[list] = None,
    ) -> None:
        if node.is_leaf:
            _require(node.keys == sorted(set(node.keys)), "unsorted leaf", errors)
            for k in node.keys:
                _require(
                    low is None or k >= low, "leaf key below subtree low", errors
                )
                _require(
                    high is None or k < high, "leaf key above subtree high", errors
                )
            _require(
                len(node.keys) <= self.config.leaf_capacity,
                "leaf over capacity",
                errors,
            )
            return
        _require(
            node.pivots == sorted(set(node.pivots)), "unsorted pivots", errors
        )
        _require(
            len(node.children) == len(node.pivots) + 1,
            "children/pivots arity mismatch",
            errors,
        )
        # Fan-out may transiently exceed the target between flushes
        # (a node is repaired by the next flush that reaches it).
        _require(
            len(node.children) <= self.config.fanout + 4,
            "fan-out exceeds repair slack",
            errors,
        )
        for key in node.buffer:
            _require(
                low is None or key >= low, "buffered key below subtree low", errors
            )
            _require(
                high is None or key < high,
                "buffered key above subtree high",
                errors,
            )
        for i, child in enumerate(node.children):
            child_low = node.pivots[i - 1] if i > 0 else low
            child_high = (
                node.pivots[i] if i < len(node.pivots) else high
            )
            self._validate_node(child, child_low, child_high, errors)


class _PastEnd:
    """A value comparing greater than any key (open upper bound)."""

    __slots__ = ("anchor",)

    def __init__(self, anchor: Key) -> None:
        self.anchor = anchor

    def __gt__(self, other: Any) -> bool:
        return True

    def __le__(self, other: Any) -> bool:
        return False

    def __lt__(self, other: Any) -> bool:
        return False

    def __ge__(self, other: Any) -> bool:
        return True
