"""Bε-tree: the write-optimized, sortedness-unaware baseline of §6."""

from .tree import BeTree, BeTreeConfig, BeTreeStats

__all__ = ["BeTree", "BeTreeConfig", "BeTreeStats"]
