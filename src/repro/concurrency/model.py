"""Analytical contention model for concurrent throughput (Fig. 13).

CPython's GIL prevents real parallel scaling, so the reproduction follows
DESIGN.md substitution 4: the locking protocol is implemented and tested
for correctness under real threads (:mod:`.concurrent_tree`), while the
throughput *curves* of Fig. 13 are regenerated from a closed-form
contention model fed with measured single-thread service times.

The model is Amdahl-style with a serialized share per operation class:

* Near-sorted ingestion concentrates inserts on one leaf, so the insert's
  critical section is effectively serialized across threads.  QuIT's fast
  path serializes only the in-leaf append (short); a B+-tree serializes
  the whole root-to-leaf traversal plus the node update (long, and it
  grows with tree height).  Throughput saturates at ``1 / serial_time``
  — which is why the paper observes QuIT's advantage *growing* with
  thread count (its ceiling is higher).
* Lookups take shared locks and serialize only briefly at the leaf latch;
  both trees scale nearly linearly until the hardware limit, with a
  bandwidth taper past ``taper_threads``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperationProfile:
    """Single-thread timing profile of one operation mix.

    Attributes:
        service_time: mean time per operation on one thread (seconds).
        serial_fraction: share of the service time that must execute under
            an exclusive lock shared by all threads (the critical
            section).
    """

    service_time: float
    serial_fraction: float

    def __post_init__(self) -> None:
        if self.service_time <= 0:
            raise ValueError(
                f"service_time must be > 0, got {self.service_time}"
            )
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1], "
                f"got {self.serial_fraction}"
            )


def throughput(
    profile: OperationProfile,
    threads: int,
    taper_threads: int = 8,
    taper_strength: float = 0.15,
) -> float:
    """Modeled operations/second at ``threads`` concurrent workers.

    The parallelizable share scales with threads (tapering beyond
    ``taper_threads`` to model shared-resource limits); the serialized
    share is a global bottleneck:

        tput(T) = min(T_eff / service_time, 1 / serial_time)

    where ``serial_time = service_time * serial_fraction`` and ``T_eff``
    applies the taper.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if threads <= taper_threads:
        t_eff = float(threads)
    else:
        extra = threads - taper_threads
        t_eff = taper_threads + extra * max(0.0, 1.0 - taper_strength * extra)
    parallel_limit = t_eff / profile.service_time
    serial_time = profile.service_time * profile.serial_fraction
    if serial_time <= 0:
        return parallel_limit
    return min(parallel_limit, 1.0 / serial_time)


def insert_profile(
    avg_insert_time: float,
    fast_fraction: float,
    fast_serial_share: float = 0.35,
    top_serial_share: float = 1.0,
) -> OperationProfile:
    """Insert profile from measured ingest behaviour.

    Fast-path inserts serialize only the metadata check + leaf append
    (``fast_serial_share`` of their cost); top-inserts effectively
    serialize whole-path crabbing (``top_serial_share``).  Near-sorted
    ingestion hits one leaf, so these critical sections contend globally.
    """
    if not 0.0 <= fast_fraction <= 1.0:
        raise ValueError(
            f"fast_fraction must be in [0, 1], got {fast_fraction}"
        )
    # A fast insert is ~height times cheaper than a top-insert; derive the
    # blended serialized share from the mix.
    serial = (
        fast_fraction * fast_serial_share
        + (1.0 - fast_fraction) * top_serial_share
    )
    return OperationProfile(
        service_time=avg_insert_time, serial_fraction=serial
    )


def lookup_profile(
    avg_lookup_time: float,
    leaf_latch_share: float = 0.05,
) -> OperationProfile:
    """Lookup profile: shared locks, tiny serialized leaf-latch share."""
    return OperationProfile(
        service_time=avg_lookup_time, serial_fraction=leaf_latch_share
    )


def throughput_curve(
    profile: OperationProfile,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> dict[int, float]:
    """Modeled throughput for each thread count (Fig. 13's x-axis)."""
    return {t: throughput(profile, t) for t in thread_counts}
