"""Runtime lock sanitizer: order-inversion and fsync-hazard detection.

The repo's one confirmed production-grade bug so far — the
lost-acknowledged-write race between ``DurableTree.checkpoint`` and
in-flight mutations — was a lock-discipline error.  This module makes
that class of bug *observable at runtime*: when enabled (environment
variable ``QUIT_SANITIZE=1``, or :func:`enable` before the locks are
constructed), every named lock in the package records per-thread
acquisition stacks and feeds a global lock-order graph.

What it detects:

* **lock-order inversions** — acquiring lock *B* while holding *A*
  after some thread has ever acquired *A* while holding *B* (the
  classic deadlock recipe), and any acquisition that contradicts the
  canonical :data:`LOCK_ORDER`;
* **self-reacquisition** — taking a named lock the current thread
  already holds (none of the package's locks are reentrant; for the
  striped leaf pool this also catches unordered stripe-stripe nesting);
* **fsync-under-lock hazards** — reaching an ``fsync`` call site while
  holding one of the *short-critical-section* locks
  (:data:`FSYNC_UNSAFE`).  Coarse gates (``durable.gate``,
  ``concurrent.structure``, ``repl.replica``, ``wal.append``) are
  *designed* to be held across fsync — that is what makes
  log-then-apply atomic against checkpoints — but the metadata mutex
  and leaf stripes exist precisely to stay microseconds-short, and an
  fsync under them would stall every reader for a disk flush.

Violations are recorded, not raised: a sanitizer that throws from
inside a lock acquisition would alter the very interleavings it is
auditing.  Test suites drain them via :func:`take_violations` (the
shared conftest asserts the drain is empty after every test when the
sanitizer is on).

This module deliberately imports nothing from the rest of the package
so that ``repro.concurrency.locks`` (and through it ``repro.core``)
can depend on it without cycles.
"""

from __future__ import annotations

import _thread
import os
import threading
import traceback
from dataclasses import dataclass
from typing import Union

#: Canonical lock-acquisition order, outermost first.  A thread holding
#: a lock may only acquire locks that appear *later* in this list.  The
#: static analyzer (``repro.lint`` rule ``lock-discipline``) checks the same
#: table against the AST, so the documented discipline, the runtime
#: sanitizer, and ``quit-check`` can never drift apart.
LOCK_ORDER: tuple[str, ...] = (
    "scrub.cycle",         # Scrubber._lock: one scrub/repair cycle at a time
    "repl.replica",        # Replica._lock: held around apply + cursor persist
    "repl.primary.meta",   # Primary._meta_lock: snapshot/base consistency
    "durable.gate",        # DurableTree._gate: log+apply vs checkpoint
    "concurrent.structure",  # ConcurrentTree._structure: structural RW lock
    "concurrent.leaf",     # ConcurrentTree._leaf_locks: striped leaf mutexes
    "concurrent.meta",     # ConcurrentTree._meta: fast-path admission mutex
    "wal.group.queue",     # WriteAheadLog._group_lock: group-commit queue
    "wal.append",          # WriteAheadLog._lock: append/rotate/truncate
    "repl.epoch",          # EpochRegistry._lock: epoch counter
    "health",              # HealthMonitor._lock: state-machine transitions
    "iofaults",            # testing.iofaults._lock: fault-arming table
    "failpoints",          # testing.failpoints._lock: innermost everywhere
)

_RANK: dict[str, int] = {name: i for i, name in enumerate(LOCK_ORDER)}

#: Locks that must never be held across an ``fsync``: they guard
#: short critical sections on hot paths.  The coarse-grained gates are
#: intentionally absent — holding them across the WAL/snapshot fsync is
#: the durability design, not a hazard.
FSYNC_UNSAFE: frozenset[str] = frozenset(
    {
        "concurrent.leaf",
        "concurrent.meta",
        "repl.primary.meta",
        "repl.epoch",
        # The group-commit queue lock is held only for enqueue/drain;
        # an fsync under it would stall every pipelined writer.
        "wal.group.queue",
        # Health transitions and the fault-arming table are consulted on
        # every instrumented I/O call — they must decide and release, not
        # ride along into the disk.
        "health",
        "iofaults",
    }
)


@dataclass
class Violation:
    """One detected lock-discipline violation.

    Attributes:
        kind: ``"order-inversion"``, ``"rank-inversion"``,
            ``"self-reacquire"``, or ``"fsync-under-lock"``.
        message: human-readable description.
        held: locks the offending thread held, outermost first.
        stack: formatted acquisition stack at the violation site.
        other_stack: for graph inversions, the stack of the earlier,
            opposite-order acquisition.
    """

    kind: str
    message: str
    held: tuple[str, ...] = ()
    stack: str = ""
    other_stack: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.kind}] {self.message}"


def _env_enabled() -> bool:
    return os.environ.get("QUIT_SANITIZE", "").strip() not in ("", "0")


_enabled: bool = _env_enabled()

_state_lock = threading.Lock()
_tls = threading.local()
#: Observed nesting edges: (outer, inner) -> acquisition stack of the
#: first time the edge was seen (for inversion reports).
_edges: dict[tuple[str, str], str] = {}
_violations: list[Violation] = []
_acquisitions: int = 0
_fsync_checks: int = 0


def enabled() -> bool:
    """Whether sanitized locks are being handed out *and* audited."""
    return _enabled


def enable() -> None:
    """Turn the sanitizer on (call before constructing the locks)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the sanitizer off (already-sanitized locks keep reporting
    only if re-enabled; fresh factories return plain locks)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Clear the order graph, violations, and counters (test isolation)."""
    global _acquisitions, _fsync_checks
    with _state_lock:
        _edges.clear()
        _violations.clear()
        _acquisitions = 0
        _fsync_checks = 0


def _held() -> list[str]:
    held = getattr(_tls, "held", None)
    if held is None:
        held = []
        _tls.held = held
    return held


def held_locks() -> tuple[str, ...]:
    """Named locks the calling thread currently holds, outermost first."""
    return tuple(_held())


def violations() -> list[Violation]:
    """Snapshot of every recorded violation."""
    with _state_lock:
        return list(_violations)


def take_violations() -> list[Violation]:
    """Drain: return all recorded violations and clear the list."""
    with _state_lock:
        out = list(_violations)
        _violations.clear()
        return out


def counters() -> dict[str, int]:
    """Instrumentation volume (sanity check that auditing really ran)."""
    with _state_lock:
        return {
            "acquisitions": _acquisitions,
            "fsync_checks": _fsync_checks,
            "edges": len(_edges),
            "violations": len(_violations),
        }


def _record(violation: Violation) -> None:
    with _state_lock:
        _violations.append(violation)


def before_acquire(name: str) -> None:
    """Audit an imminent acquisition of ``name`` by this thread.

    Called *before* blocking on the underlying primitive so an
    inversion that would deadlock is recorded rather than hung on.
    """
    global _acquisitions
    held = _held()
    stack = "".join(traceback.format_stack(limit=12)[:-1])
    with _state_lock:
        _acquisitions += 1
    if name in held:
        _record(
            Violation(
                kind="self-reacquire",
                message=(
                    f"thread re-acquires {name!r} it already holds "
                    f"(held: {' -> '.join(held)})"
                ),
                held=tuple(held),
                stack=stack,
            )
        )
    for outer in held:
        if outer == name:
            continue
        rank_outer = _RANK.get(outer)
        rank_inner = _RANK.get(name)
        if (
            rank_outer is not None
            and rank_inner is not None
            and rank_outer >= rank_inner
        ):
            _record(
                Violation(
                    kind="rank-inversion",
                    message=(
                        f"acquiring {name!r} while holding {outer!r} "
                        f"contradicts LOCK_ORDER "
                        f"({outer} must nest inside {name})"
                    ),
                    held=tuple(held),
                    stack=stack,
                )
            )
        with _state_lock:
            reverse = _edges.get((name, outer))
            if reverse is not None and (outer, name) not in _edges:
                _violations.append(
                    Violation(
                        kind="order-inversion",
                        message=(
                            f"{outer!r} -> {name!r} inverts the "
                            f"previously observed order "
                            f"{name!r} -> {outer!r}"
                        ),
                        held=tuple(held),
                        stack=stack,
                        other_stack=reverse,
                    )
                )
            _edges.setdefault((outer, name), stack)


def after_acquire(name: str) -> None:
    """Push ``name`` onto the thread's held stack (acquisition won)."""
    _held().append(name)


def on_release(name: str) -> None:
    """Pop the most recent occurrence of ``name`` from the held stack."""
    held = _held()
    for i in range(len(held) - 1, -1, -1):
        if held[i] == name:
            del held[i]
            return


def note_fsync(site: str) -> None:
    """Audit an fsync call site against the locks currently held.

    No-op unless the sanitizer is enabled; instrumented modules guard
    the call with :func:`enabled` anyway to keep the production path a
    single module-attribute read.
    """
    global _fsync_checks
    if not _enabled:
        return
    with _state_lock:
        _fsync_checks += 1
    held = _held()
    hazardous = [name for name in held if name in FSYNC_UNSAFE]
    if hazardous:
        _record(
            Violation(
                kind="fsync-under-lock",
                message=(
                    f"fsync at {site!r} while holding short-critical-"
                    f"section lock(s) {', '.join(hazardous)} "
                    f"(held: {' -> '.join(held)})"
                ),
                held=tuple(held),
                stack="".join(traceback.format_stack(limit=12)[:-1]),
            )
        )


class SanitizedLock:
    """A ``threading.Lock`` wrapper that reports to the sanitizer.

    Drop-in for the mutex subset the package uses: ``acquire`` /
    ``release`` / context manager / ``locked``.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        before_acquire(self.name)
        got = self._lock.acquire(blocking, timeout)
        if got:
            after_acquire(self.name)
        return got

    def release(self) -> None:
        on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedLock({self.name!r})"


#: What the lock factories hand out: a plain mutex in production, a
#: :class:`SanitizedLock` under ``QUIT_SANITIZE=1``.  (``_thread.LockType``
#: is the *instance* type of ``threading.Lock()`` — ``threading.Lock``
#: itself is a factory function, not a type.)
LockLike = Union["SanitizedLock", _thread.LockType]


def make_lock(name: str) -> LockLike:
    """A mutex for ``name``: sanitized when auditing, plain otherwise."""
    if _enabled:
        return SanitizedLock(name)
    return threading.Lock()
