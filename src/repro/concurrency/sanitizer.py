"""Runtime sanitizers: lock discipline auditing and event-loop stalls.

The repo's one confirmed production-grade bug so far — the
lost-acknowledged-write race between ``DurableTree.checkpoint`` and
in-flight mutations — was a lock-discipline error.  This module makes
that class of bug *observable at runtime*: when enabled (environment
variable ``QUIT_SANITIZE=1``, or :func:`enable` before the locks are
constructed), every named lock in the package records per-thread
acquisition stacks and feeds a global lock-order graph.

What it detects:

* **lock-order inversions** — acquiring lock *B* while holding *A*
  after some thread has ever acquired *A* while holding *B* (the
  classic deadlock recipe), and any acquisition that contradicts the
  canonical :data:`LOCK_ORDER`;
* **self-reacquisition** — taking a named lock the current thread
  already holds (none of the package's locks are reentrant; for the
  striped leaf pool this also catches unordered stripe-stripe nesting);
* **fsync-under-lock hazards** — reaching an ``fsync`` call site while
  holding one of the *short-critical-section* locks
  (:data:`FSYNC_UNSAFE`).  Coarse gates (``durable.gate``,
  ``concurrent.structure``, ``repl.replica``, ``wal.append``) are
  *designed* to be held across fsync — that is what makes
  log-then-apply atomic against checkpoints — but the metadata mutex
  and leaf stripes exist precisely to stay microseconds-short, and an
  fsync under them would stall every reader for a disk flush.

Violations are recorded, not raised: a sanitizer that throws from
inside a lock acquisition would alter the very interleavings it is
auditing.  Test suites drain them via :func:`take_violations` (the
shared conftest asserts the drain is empty after every test when the
sanitizer is on).

Beyond locks, this module is also the runtime half of the **async
discipline** contract (the static half is the ``quit-check`` rule
``async-blocking``): :data:`BLOCKING_CALLS` / :data:`BLOCKING_METHODS`
name every call the event-loop thread must never make inline, and
:class:`LoopStallWatchdog` observes real loops — a heartbeat callback
timestamps loop liveness while a monitor thread samples it; a stall
past the threshold is recorded as a ``loop-stall`` violation carrying
the loop thread's *current frame* (the code actually blocking).

This module deliberately imports nothing from the rest of the package
so that ``repro.concurrency.locks`` (and through it ``repro.core``)
can depend on it without cycles.
"""

from __future__ import annotations

import _thread
import linecache
import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps imports light
    import asyncio

#: Canonical lock-acquisition order, outermost first.  A thread holding
#: a lock may only acquire locks that appear *later* in this list.  The
#: static analyzer (``repro.lint`` rule ``lock-discipline``) checks the same
#: table against the AST, so the documented discipline, the runtime
#: sanitizer, and ``quit-check`` can never drift apart.
LOCK_ORDER: tuple[str, ...] = (
    "scrub.cycle",         # Scrubber._lock: one scrub/repair cycle at a time
    "repl.replica",        # Replica._lock: held around apply + cursor persist
    "repl.primary.meta",   # Primary._meta_lock: snapshot/base consistency
    "durable.gate",        # DurableTree._gate: log+apply vs checkpoint
    "concurrent.structure",  # ConcurrentTree._structure: structural RW lock
    "concurrent.leaf",     # ConcurrentTree._leaf_locks: striped leaf mutexes
    "concurrent.meta",     # ConcurrentTree._meta: fast-path admission mutex
    "wal.group.queue",     # WriteAheadLog._group_lock: group-commit queue
    "wal.append",          # WriteAheadLog._lock: append/rotate/truncate
    "repl.epoch",          # EpochRegistry._lock: epoch counter
    "health",              # HealthMonitor._lock: state-machine transitions
    "iofaults",            # testing.iofaults._lock: fault-arming table
    "failpoints",          # testing.failpoints._lock: innermost everywhere
)

_RANK: dict[str, int] = {name: i for i, name in enumerate(LOCK_ORDER)}

#: Locks that must never be held across an ``fsync``: they guard
#: short critical sections on hot paths.  The coarse-grained gates are
#: intentionally absent — holding them across the WAL/snapshot fsync is
#: the durability design, not a hazard.
FSYNC_UNSAFE: frozenset[str] = frozenset(
    {
        "concurrent.leaf",
        "concurrent.meta",
        "repl.primary.meta",
        "repl.epoch",
        # The group-commit queue lock is held only for enqueue/drain;
        # an fsync under it would stall every pipelined writer.
        "wal.group.queue",
        # Health transitions and the fault-arming table are consulted on
        # every instrumented I/O call — they must decide and release, not
        # ride along into the disk.
        "health",
        "iofaults",
    }
)


#: Canonical blocking-call table — the single source of truth for the
#: async-discipline contract.  Keys are *dotted call names* as they
#: appear in source (``os.fsync``) or bare builtins (``open``); values
#: say why the call must never run inline on an event-loop thread.  The
#: static rule (``repro.lint`` rule ``async-blocking``) flags these
#: reachable from ``async def`` bodies; :class:`LoopStallWatchdog` uses
#: the same table to label the offending frame of an observed stall, so
#: the documented contract, the linter, and the runtime watchdog cannot
#: drift apart.  The only sanctioned escapes are an executor hop
#: (``loop.run_in_executor`` / ``asyncio.to_thread``) or an explicit
#: ``# loop-safe: <reason>`` pragma at the call site.
BLOCKING_CALLS: dict[str, str] = {
    "os.fsync": "disk flush",
    "os.fdatasync": "disk flush",
    "os.replace": "directory metadata write",
    "os.write": "raw file write",
    "os.read": "raw file read",
    "time.sleep": "thread sleep",
    "open": "file open (disk I/O)",
    "socket.create_connection": "blocking connect",
}

#: Method-name half of the table: attribute calls that block on *any*
#: receiver (``ticket.wait``, ``lock.acquire``, ``sock.sendall``, a
#: backend ``drain_acks``/``checkpoint``).  An ``await``-ed call is
#: exempt — ``await event.wait()`` is the asyncio flavor, and the
#: executor bridges pass these as references, never as inline calls.
BLOCKING_METHODS: dict[str, str] = {
    "fsync": "disk flush",
    "sleep": "thread sleep",
    "wait": "blocking wait (ticket / event / condition)",
    "acquire": "sync lock acquire",
    "join": "thread join",
    "drain_acks": "quorum drain",
    "checkpoint": "snapshot write + fsync",
    "scrub": "artifact CRC scan (file reads)",
    "sendall": "blocking socket send",
    "recv": "blocking socket receive",
    "connect": "blocking socket connect",
    "accept": "blocking socket accept",
    "read_frame_blocking": "blocking frame read",
}


def classify_blocking_frame(filename: str, lineno: int, func: str) -> Optional[str]:
    """Label a stalled frame against the canonical blocking tables.

    Matches the frame's function name against :data:`BLOCKING_METHODS`
    and its current source line against :data:`BLOCKING_CALLS` (the
    builtins — ``time.sleep``, ``os.fsync`` — never appear as Python
    frames, so the *calling* line is what the watchdog sees).  Returns
    the table's reason, or ``None`` for a stall outside the tables
    (still a violation: the loop was blocked either way).
    """
    if func in BLOCKING_METHODS:
        return BLOCKING_METHODS[func]
    line = linecache.getline(filename, lineno)
    for name, reason in BLOCKING_CALLS.items():
        if name in line:
            return reason
    return None


@dataclass
class Violation:
    """One detected sanitizer violation.

    Attributes:
        kind: ``"order-inversion"``, ``"rank-inversion"``,
            ``"self-reacquire"``, ``"fsync-under-lock"``, or
            ``"loop-stall"``.
        message: human-readable description.
        held: locks the offending thread held, outermost first.
        stack: formatted acquisition stack at the violation site.
        other_stack: for graph inversions, the stack of the earlier,
            opposite-order acquisition.
    """

    kind: str
    message: str
    held: tuple[str, ...] = ()
    stack: str = ""
    other_stack: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.kind}] {self.message}"


def _env_enabled() -> bool:
    return os.environ.get("QUIT_SANITIZE", "").strip() not in ("", "0")


_enabled: bool = _env_enabled()

_state_lock = threading.Lock()
_tls = threading.local()
#: Observed nesting edges: (outer, inner) -> acquisition stack of the
#: first time the edge was seen (for inversion reports).
_edges: dict[tuple[str, str], str] = {}
_violations: list[Violation] = []
_acquisitions: int = 0
_fsync_checks: int = 0


def enabled() -> bool:
    """Whether sanitized locks are being handed out *and* audited."""
    return _enabled


def enable() -> None:
    """Turn the sanitizer on (call before constructing the locks)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the sanitizer off (already-sanitized locks keep reporting
    only if re-enabled; fresh factories return plain locks)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Clear the order graph, violations, and counters (test isolation)."""
    global _acquisitions, _fsync_checks
    with _state_lock:
        _edges.clear()
        _violations.clear()
        _acquisitions = 0
        _fsync_checks = 0


def _held() -> list[str]:
    held = getattr(_tls, "held", None)
    if held is None:
        held = []
        _tls.held = held
    return held


def held_locks() -> tuple[str, ...]:
    """Named locks the calling thread currently holds, outermost first."""
    return tuple(_held())


def violations() -> list[Violation]:
    """Snapshot of every recorded violation."""
    with _state_lock:
        return list(_violations)


def take_violations() -> list[Violation]:
    """Drain: return all recorded violations and clear the list."""
    with _state_lock:
        out = list(_violations)
        _violations.clear()
        return out


def counters() -> dict[str, int]:
    """Instrumentation volume (sanity check that auditing really ran)."""
    with _state_lock:
        return {
            "acquisitions": _acquisitions,
            "fsync_checks": _fsync_checks,
            "edges": len(_edges),
            "violations": len(_violations),
        }


def _record(violation: Violation) -> None:
    with _state_lock:
        _violations.append(violation)


def before_acquire(name: str) -> None:
    """Audit an imminent acquisition of ``name`` by this thread.

    Called *before* blocking on the underlying primitive so an
    inversion that would deadlock is recorded rather than hung on.
    """
    global _acquisitions
    held = _held()
    stack = "".join(traceback.format_stack(limit=12)[:-1])
    with _state_lock:
        _acquisitions += 1
    if name in held:
        _record(
            Violation(
                kind="self-reacquire",
                message=(
                    f"thread re-acquires {name!r} it already holds "
                    f"(held: {' -> '.join(held)})"
                ),
                held=tuple(held),
                stack=stack,
            )
        )
    for outer in held:
        if outer == name:
            continue
        rank_outer = _RANK.get(outer)
        rank_inner = _RANK.get(name)
        if (
            rank_outer is not None
            and rank_inner is not None
            and rank_outer >= rank_inner
        ):
            _record(
                Violation(
                    kind="rank-inversion",
                    message=(
                        f"acquiring {name!r} while holding {outer!r} "
                        f"contradicts LOCK_ORDER "
                        f"({outer} must nest inside {name})"
                    ),
                    held=tuple(held),
                    stack=stack,
                )
            )
        with _state_lock:
            reverse = _edges.get((name, outer))
            if reverse is not None and (outer, name) not in _edges:
                _violations.append(
                    Violation(
                        kind="order-inversion",
                        message=(
                            f"{outer!r} -> {name!r} inverts the "
                            f"previously observed order "
                            f"{name!r} -> {outer!r}"
                        ),
                        held=tuple(held),
                        stack=stack,
                        other_stack=reverse,
                    )
                )
            _edges.setdefault((outer, name), stack)


def after_acquire(name: str) -> None:
    """Push ``name`` onto the thread's held stack (acquisition won)."""
    _held().append(name)


def on_release(name: str) -> None:
    """Pop the most recent occurrence of ``name`` from the held stack."""
    held = _held()
    for i in range(len(held) - 1, -1, -1):
        if held[i] == name:
            del held[i]
            return


def note_fsync(site: str) -> None:
    """Audit an fsync call site against the locks currently held.

    No-op unless the sanitizer is enabled; instrumented modules guard
    the call with :func:`enabled` anyway to keep the production path a
    single module-attribute read.
    """
    global _fsync_checks
    if not _enabled:
        return
    with _state_lock:
        _fsync_checks += 1
    held = _held()
    hazardous = [name for name in held if name in FSYNC_UNSAFE]
    if hazardous:
        _record(
            Violation(
                kind="fsync-under-lock",
                message=(
                    f"fsync at {site!r} while holding short-critical-"
                    f"section lock(s) {', '.join(hazardous)} "
                    f"(held: {' -> '.join(held)})"
                ),
                held=tuple(held),
                stack="".join(traceback.format_stack(limit=12)[:-1]),
            )
        )


class SanitizedLock:
    """A ``threading.Lock`` wrapper that reports to the sanitizer.

    Drop-in for the mutex subset the package uses: ``acquire`` /
    ``release`` / context manager / ``locked``.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        before_acquire(self.name)
        got = self._lock.acquire(blocking, timeout)
        if got:
            after_acquire(self.name)
        return got

    def release(self) -> None:
        on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedLock({self.name!r})"


#: What the lock factories hand out: a plain mutex in production, a
#: :class:`SanitizedLock` under ``QUIT_SANITIZE=1``.  (``_thread.LockType``
#: is the *instance* type of ``threading.Lock()`` — ``threading.Lock``
#: itself is a factory function, not a type.)
LockLike = Union["SanitizedLock", _thread.LockType]


def make_lock(name: str) -> LockLike:
    """A mutex for ``name``: sanitized when auditing, plain otherwise."""
    if _enabled:
        return SanitizedLock(name)
    return threading.Lock()


# ----------------------------------------------------------------------
# Event-loop stall watchdog
# ----------------------------------------------------------------------

def _env_stall_threshold() -> float:
    raw = os.environ.get("QUIT_STALL_THRESHOLD", "").strip()
    if not raw:
        return 0.5
    try:
        return max(0.001, float(raw))
    except ValueError:
        return 0.5


class LoopStallWatchdog:
    """Detect event-loop-thread stalls and report the offending frame.

    A *heartbeat* callback re-schedules itself on the watched loop every
    ``threshold / 4`` seconds, timestamping loop liveness; a daemon
    *monitor* thread samples that timestamp.  When the heartbeat goes
    stale past ``threshold`` while the loop reports running, the loop
    thread is blocked inside a callback — the monitor captures that
    thread's current stack via ``sys._current_frames()``, labels the
    innermost frame against :data:`BLOCKING_CALLS` /
    :data:`BLOCKING_METHODS`, and records a ``loop-stall``
    :class:`Violation`.  One report per stall episode: the next
    heartbeat re-arms detection.

    The watchdog never raises into the loop and adds only a timestamp
    store per interval, so it is safe to leave armed across whole test
    suites (CI runs the network suite under it).  ``install`` must be
    called from the loop thread; ``uninstall`` is thread-safe and
    idempotent, and a loop that simply stops or closes silences the
    monitor without a report.
    """

    def __init__(
        self,
        threshold: Optional[float] = None,
        interval: Optional[float] = None,
    ) -> None:
        self.threshold = _env_stall_threshold() if threshold is None else threshold
        self.interval = (
            max(0.005, self.threshold / 4.0) if interval is None else interval
        )
        self.stalls_reported = 0
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._thread_id: Optional[int] = None
        self._last_beat = 0.0
        self._reported_beat = -1.0
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    def install(self, loop: "asyncio.AbstractEventLoop") -> "LoopStallWatchdog":
        """Arm on ``loop`` (call from the loop thread) and start the
        monitor.  Returns ``self`` for chaining."""
        self._loop = loop
        self._thread_id = threading.get_ident()
        self._last_beat = time.monotonic()
        self._stop.clear()
        loop.call_soon(self._beat)
        self._monitor = threading.Thread(
            target=self._watch, name="quit-loop-watchdog", daemon=True
        )
        self._monitor.start()
        return self

    def uninstall(self) -> None:
        """Stop monitoring (thread-safe, idempotent).  The heartbeat
        callback sees the stop flag and stops re-scheduling itself."""
        self._stop.set()
        monitor = self._monitor
        if monitor is not None and monitor is not threading.current_thread():
            monitor.join(timeout=2.0)
        self._monitor = None

    # -- loop side ------------------------------------------------------

    def _beat(self) -> None:
        if self._stop.is_set():
            return
        self._last_beat = time.monotonic()
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_later(self.interval, self._beat)
            except RuntimeError:  # pragma: no cover - loop shutting down
                pass

    # -- monitor side ---------------------------------------------------

    def _watch(self) -> None:
        poll = max(0.001, self.interval / 2.0)
        while not self._stop.wait(poll):
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            if not loop.is_running():
                # Between run_until_complete calls / after shutdown:
                # silence, and restart the staleness clock for the next
                # run so the pause is never misread as a stall.
                self._last_beat = time.monotonic()
                continue
            beat = self._last_beat
            stalled = time.monotonic() - beat
            if stalled < self.threshold or beat == self._reported_beat:
                continue
            self._reported_beat = beat
            self._report(stalled)

    def _report(self, stalled: float) -> None:
        self.stalls_reported += 1
        frame = sys._current_frames().get(self._thread_id or -1)
        if frame is not None:
            top = frame
            label = classify_blocking_frame(
                top.f_code.co_filename, top.f_lineno, top.f_code.co_name
            )
            site = (
                f"{top.f_code.co_filename}:{top.f_lineno} "
                f"in {top.f_code.co_name}"
            )
            stack = "".join(traceback.format_stack(frame, limit=12))
        else:  # pragma: no cover - loop thread already gone
            label, site, stack = None, "<thread exited>", ""
        _record(
            Violation(
                kind="loop-stall",
                message=(
                    f"event-loop thread stalled {stalled * 1000.0:.0f}ms "
                    f"(threshold {self.threshold * 1000.0:.0f}ms) at {site}"
                    + (f" — {label}" if label else "")
                    + "; blocking work belongs in an executor "
                    "(see BLOCKING_CALLS)"
                ),
                stack=stack,
            )
        )


def make_loop_watchdog(
    loop: "asyncio.AbstractEventLoop",
) -> Optional[LoopStallWatchdog]:
    """Arm a :class:`LoopStallWatchdog` on ``loop`` when the sanitizer
    is enabled; ``None`` (and zero overhead) otherwise.  Call from the
    loop thread — the server does this in ``QuitServer.start``."""
    if not _enabled:
        return None
    return LoopStallWatchdog().install(loop)
