"""Concurrency control (§4.5): reader-writer locks, thread-safe tree
wrappers, and the contention model behind the Fig. 13 curves."""

from .concurrent_tree import ConcurrentTree
from .locks import RWLock, StripedLocks
from .model import (
    OperationProfile,
    insert_profile,
    lookup_profile,
    throughput,
    throughput_curve,
)

__all__ = [
    "ConcurrentTree",
    "RWLock",
    "StripedLocks",
    "OperationProfile",
    "insert_profile",
    "lookup_profile",
    "throughput",
    "throughput_curve",
]
