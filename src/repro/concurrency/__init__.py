"""Concurrency control (§4.5): reader-writer locks, thread-safe tree
wrappers, the runtime lock sanitizer (``QUIT_SANITIZE=1``), and the
contention model behind the Fig. 13 curves."""

from . import sanitizer
from .concurrent_tree import ConcurrentTree
from .locks import RWLock, StripedLocks
from .model import (
    OperationProfile,
    insert_profile,
    lookup_profile,
    throughput,
    throughput_curve,
)

__all__ = [
    "ConcurrentTree",
    "RWLock",
    "StripedLocks",
    "sanitizer",
    "OperationProfile",
    "insert_profile",
    "lookup_profile",
    "throughput",
    "throughput_curve",
]
