"""Reader-writer lock used by the concurrent tree wrappers (§4.5).

A classic writer-preferring RW lock built on a condition variable:
any number of readers proceed together; a writer waits for readers to
drain and blocks new readers while waiting, preventing writer starvation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Writer-preferring reader-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Block until shared (read) access is granted."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Release shared access."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until exclusive (write) access is granted."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Release exclusive access."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager for shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager for exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class StripedLocks:
    """A fixed pool of mutexes addressed by hashable ids.

    Per-node locks without per-node allocations: node ids map onto
    ``n_stripes`` mutexes.  Two different nodes may share a stripe, which
    only costs spurious contention, never correctness.
    """

    def __init__(self, n_stripes: int = 64) -> None:
        if n_stripes < 1:
            raise ValueError(f"n_stripes must be >= 1, got {n_stripes}")
        self._locks = [threading.Lock() for _ in range(n_stripes)]
        self.n_stripes = n_stripes

    def lock_for(self, node_id: int) -> threading.Lock:
        """The stripe mutex owning ``node_id``."""
        return self._locks[node_id % self.n_stripes]

    @contextmanager
    def locked(self, node_id: int) -> Iterator[None]:
        """Context manager holding the stripe for ``node_id``."""
        lock = self.lock_for(node_id)
        lock.acquire()
        try:
            yield
        finally:
            lock.release()
