"""Reader-writer lock used by the concurrent tree wrappers (§4.5).

A classic writer-preferring RW lock built on a condition variable:
any number of readers proceed together; a writer waits for readers to
drain and blocks new readers while waiting, preventing writer starvation.

Both primitives take an optional ``name``: a named lock constructed
while the sanitizer is enabled (``QUIT_SANITIZE=1`` or
:func:`repro.concurrency.sanitizer.enable`) reports every acquisition
to the lock-order auditor; unnamed or unsanitized locks pay nothing.
The canonical names and their required order live in
:data:`repro.concurrency.sanitizer.LOCK_ORDER`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from . import sanitizer
from .sanitizer import LockLike


class RWLock:
    """Writer-preferring reader-writer lock."""

    def __init__(self, name: Optional[str] = None) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        # Audit only when the sanitizer was on at construction time, so
        # the disabled path stays a None check per acquisition.
        self._audit: Optional[str] = (
            name if (name is not None and sanitizer.enabled()) else None
        )

    def acquire_read(self) -> None:
        """Block until shared (read) access is granted."""
        if self._audit is not None:
            sanitizer.before_acquire(self._audit)
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        if self._audit is not None:
            sanitizer.after_acquire(self._audit)

    def release_read(self) -> None:
        """Release shared access."""
        if self._audit is not None:
            sanitizer.on_release(self._audit)
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until exclusive (write) access is granted."""
        if self._audit is not None:
            sanitizer.before_acquire(self._audit)
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        if self._audit is not None:
            sanitizer.after_acquire(self._audit)

    def release_write(self) -> None:
        """Release exclusive access."""
        if self._audit is not None:
            sanitizer.on_release(self._audit)
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager for shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager for exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class StripedLocks:
    """A fixed pool of mutexes addressed by hashable ids.

    Per-node locks without per-node allocations: node ids map onto
    ``n_stripes`` mutexes.  Two different nodes may share a stripe, which
    only costs spurious contention, never correctness.

    All stripes share one sanitizer name: no code path may ever nest two
    stripes (there is no defined stripe order), so under the sanitizer a
    stripe-inside-stripe acquisition surfaces as a self-reacquisition.
    """

    def __init__(
        self, n_stripes: int = 64, name: Optional[str] = None
    ) -> None:
        if n_stripes < 1:
            raise ValueError(f"n_stripes must be >= 1, got {n_stripes}")
        self._locks: list[LockLike]
        if name is not None and sanitizer.enabled():
            self._locks = [
                sanitizer.SanitizedLock(name) for _ in range(n_stripes)
            ]
        else:
            self._locks = [threading.Lock() for _ in range(n_stripes)]
        self.n_stripes = n_stripes

    def lock_for(self, node_id: int) -> LockLike:
        """The stripe mutex owning ``node_id``."""
        return self._locks[node_id % self.n_stripes]

    @contextmanager
    def locked(self, node_id: int) -> Iterator[None]:
        """Context manager holding the stripe for ``node_id``."""
        lock = self.lock_for(node_id)
        lock.acquire()
        try:
            yield
        finally:
            lock.release()
