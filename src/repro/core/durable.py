"""Crash-safe facade: WAL + checksummed snapshots + recovery.

:class:`DurableTree` wraps any tree variant — or a
:class:`~repro.concurrency.concurrent_tree.ConcurrentTree` around one —
and makes its *logical* operations durable:

* every ``insert`` / ``delete`` / ``insert_many`` is appended to a
  :class:`~repro.core.wal.WriteAheadLog` **before** it touches the tree
  (log-then-apply), so an acknowledged write survives a crash under
  ``fsync="always"``;
* :meth:`DurableTree.checkpoint` writes a v2 (per-record CRC32) snapshot
  via the atomic temp-file + ``os.replace`` path of
  :func:`repro.core.persist.save_tree` and then truncates the WAL;
* :meth:`DurableTree.recover` rebuilds state from ``snapshot + WAL``,
  tolerating a torn WAL tail, and reports exactly what it did in a
  :class:`RecoveryReport`.

The WAL records logical ops, not pages: replaying an op twice must be a
no-op, which upsert-``insert`` and ``delete`` satisfy.  That is what
makes the crash window between the snapshot replace and the WAL truncate
safe — the next recovery double-replays ops the snapshot already
contains, idempotently.

Fast-path metadata (``lil``/``pole``/``tail`` pointers) is *derived*
state and is never logged; after replay it is rebuilt implicitly and
then audited by ``scrub()``, which resets anything inconsistent instead
of trusting it blindly (see DESIGN.md).

Directory layout::

    <directory>/snapshot.quit   latest checkpoint (absent before first)
    <directory>/wal/wal-*.seg   log segments since that checkpoint
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Optional, Type, Union

from ..concurrency.locks import RWLock
from ..testing import failpoints
from .bptree import BPlusTree
from .config import TreeConfig
from .health import HealthMonitor, HealthState, RetryPolicy
from .node import Key
from .persist import load_tree, save_tree
from .stats import ScrubReport, TreeStats
from .wal import (
    OP_DELETE,
    OP_EPOCH,
    OP_INSERT,
    OP_INSERT_MANY,
    CommitTicket,
    WALError,
    WALPosition,
    WriteAheadLog,
    repair_wal,
    replay_wal,
)

SNAPSHOT_NAME = "snapshot.quit"
WAL_DIRNAME = "wal"


@dataclass
class RecoveryReport:
    """What :meth:`DurableTree.recover` found and did.

    Attributes:
        snapshot_loaded: a checkpoint snapshot existed and was loaded.
        snapshot_entries: entries restored from that snapshot.
        segments_scanned: WAL segment files examined.
        records_replayed: valid WAL records applied.
        entries_replayed: logical entries those records carried (an
            ``insert_many`` record counts its batch size).
        checksum_failures: WAL records rejected by CRC32 (replay stops
            at the first, so 0 or 1).
        truncated_tail: the WAL ended mid-record (torn write).
        tail_bytes_dropped: WAL bytes at/after the first damage,
            discarded by replay and trimmed by repair.
        unknown_records: intact records whose op tag this version does
            not understand (skipped, never fatal).
        sequence_gap: replay stopped at a missing middle segment; the
            orphaned post-gap segments were deleted by repair.
        epoch_markers: replication epoch markers seen in the log (they
            carry no tree data and are not counted as entries).
        last_epoch: highest epoch stamped in the log, 0 if none — a
            restarting primary resumes at least past it.
        scrub: fast-path metadata audit run after replay, if any.
    """

    snapshot_loaded: bool = False
    snapshot_entries: int = 0
    segments_scanned: int = 0
    records_replayed: int = 0
    entries_replayed: int = 0
    checksum_failures: int = 0
    truncated_tail: bool = False
    tail_bytes_dropped: int = 0
    unknown_records: int = 0
    sequence_gap: bool = False
    epoch_markers: int = 0
    last_epoch: int = 0
    scrub: Optional[ScrubReport] = None

    @property
    def clean(self) -> bool:
        """True when nothing was dropped, rejected, or repaired."""
        return (
            self.checksum_failures == 0
            and not self.truncated_tail
            and self.tail_bytes_dropped == 0
            and self.unknown_records == 0
            and (self.scrub is None or self.scrub.clean)
        )


class DurableTree:
    """Durability facade over a tree variant (or ConcurrentTree).

    Args:
        tree: the index to make durable.  Anything exposing ``insert`` /
            ``delete`` / ``insert_many`` plus the read API — all tree
            variants and ``ConcurrentTree`` qualify.
        directory: durability root (created if missing); holds the
            snapshot file and the WAL subdirectory.
        fsync: WAL fsync policy — ``"always"`` (acknowledged writes
            survive any crash), ``"interval"``, ``"none"``, or
            ``"group"`` (batched fsync: "always"-grade acks at a
            fraction of the fsync cost under concurrent writers; see
            :mod:`repro.core.wal`).
        fsync_interval / segment_bytes / group_queue_max: passed to
            the WAL.

    Thread-safety follows the wrapped tree: wrap a ``ConcurrentTree``
    for concurrent writers (WAL appends serialize internally either
    way).  Mutations not routed through this facade bypass the log and
    forfeit durability — use the facade's methods.

    Log-then-apply is made atomic with respect to :meth:`checkpoint` by
    the facade's own reader-writer gate: every mutation holds it shared
    across *WAL append + tree apply*, while the checkpoint holds it
    exclusive across *snapshot + truncate*.  Without the gate a
    checkpoint could run between a writer's append and its apply,
    snapshotting a tree that lacks the op while truncating the WAL
    record that held it — a lost acknowledged write.
    """

    def __init__(
        self,
        tree: Any,
        directory: Union[str, Path],
        *,
        fsync: str = "always",
        fsync_interval: int = 64,
        segment_bytes: int = 4 * 1024 * 1024,
        group_queue_max: int = 8192,
        health: Optional[HealthMonitor] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.tree = tree
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: One health monitor for the whole write path, shared with the
        #: WAL: exhausted retries anywhere (append, fsync, snapshot)
        #: degrade the facade as a unit.  Mutations consult it first;
        #: reads never do.
        self.health = (
            health
            if health is not None
            else HealthMonitor(name=self.directory.name or "durable")
        )
        self.retry = retry if retry is not None else RetryPolicy()
        #: Backref set by an attached Scrubber so ``stats`` can mirror
        #: the scrub counters; None when no scrubber watches this tree.
        self.scrubber: Optional[Any] = None
        self.wal = WriteAheadLog(
            self.directory / WAL_DIRNAME,
            fsync=fsync,
            fsync_interval=fsync_interval,
            segment_bytes=segment_bytes,
            group_queue_max=group_queue_max,
            health=self.health,
            retry=self.retry,
        )
        self.checkpoints = 0
        self.last_recovery: Optional[RecoveryReport] = None
        #: WAL tail at the moment of the last checkpoint's truncate:
        #: the stream position the on-disk snapshot corresponds to.
        #: ``None`` until the first checkpoint of this facade's life.
        self.last_checkpoint_position: Optional[WALPosition] = None
        # Checkpoint gate: mutations hold it shared across log+apply,
        # checkpoint holds it exclusive across snapshot+truncate, so a
        # logged-but-unapplied op can never be truncated out of the WAL
        # while missing from the snapshot.  Separate from any lock in
        # the wrapped tree (the RW locks are not reentrant): concurrent
        # writers still run in parallel under the shared side.
        self._gate = RWLock(name="durable.gate")

    # ------------------------------------------------------------------
    # Logged mutations
    # ------------------------------------------------------------------

    def insert(self, key: Key, value: Any = None) -> None:
        """Durable upsert: WAL append (per the fsync policy), then apply."""
        self.health.require_writable()
        with self._gate.read_locked():
            self.wal.log_insert(key, value)
            self.tree.insert(key, value)

    def __setitem__(self, key: Key, value: Any) -> None:
        self.insert(key, value)

    def delete(self, key: Key) -> bool:
        """Durable delete; returns whether the key existed.

        The delete is logged even when the key turns out to be absent —
        log-then-apply cannot know beforehand, and replaying a delete of
        a missing key is a no-op.
        """
        self.health.require_writable()
        with self._gate.read_locked():
            self.wal.log_delete(key)
            return self.tree.delete(key)

    def insert_many(self, items: Iterable[tuple[Key, Any]]) -> int:
        """Durable batched upsert: the whole batch is one WAL record
        (one fsync per batch under ``fsync="always"``), then applied
        through the tree's run-carving batch path.  Returns the number
        of new keys added."""
        batch = [(k, v) for k, v in items]
        if not batch:
            return 0
        self.health.require_writable()
        with self._gate.read_locked():
            self.wal.log_insert_many(batch)
            return self.tree.insert_many(batch)

    # ------------------------------------------------------------------
    # Pipelined (submit/await) mutations
    # ------------------------------------------------------------------

    def submit_insert(self, key: Key, value: Any = None) -> CommitTicket:
        """Pipelined upsert: enqueue the WAL record, apply to the tree,
        and return a :class:`~repro.core.wal.CommitTicket` immediately.

        The op is visible to reads as soon as this returns, but it is
        **acknowledged** (durable) only when the ticket resolves —
        under ``fsync="group"`` that is when the batch carrying the
        record has been fsynced.  ``ticket.result()`` returns ``None``
        (upserts have no result).  Under non-group policies the append
        is synchronous and the ticket comes back already resolved, so
        callers get one programming model for every policy.
        """
        self.health.require_writable()
        with self._gate.read_locked():
            ticket = self.wal.submit_insert(key, value)
            self.tree.insert(key, value)
        return ticket

    def submit_delete(self, key: Key) -> CommitTicket:
        """Pipelined delete; ``ticket.result()`` is whether the key
        existed at apply time."""
        self.health.require_writable()
        with self._gate.read_locked():
            ticket = self.wal.submit_delete(key)
            ticket.value = self.tree.delete(key)
        return ticket

    def submit_many(self, items: Iterable[tuple[Key, Any]]) -> CommitTicket:
        """Pipelined batched upsert: one WAL record, one queue slot;
        ``ticket.result()`` is the number of new keys added.  An empty
        batch returns an already-resolved ticket with result 0."""
        batch = [(k, v) for k, v in items]
        if not batch:
            ticket = CommitTicket()
            ticket.value = 0
            ticket._resolve()
            return ticket
        self.health.require_writable()
        with self._gate.read_locked():
            ticket = self.wal.submit_insert_many(batch)
            ticket.value = self.tree.insert_many(batch)
        return ticket

    # ------------------------------------------------------------------
    # Reads (pure delegation)
    # ------------------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        return self.tree.get(key, default)

    def __getitem__(self, key: Key) -> Any:
        sentinel = object()
        value = self.tree.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def get_many(self, keys: Iterable[Key], default: Any = None) -> list[Any]:
        return self.tree.get_many(keys, default)

    def range_query(self, start: Key, end: Key) -> list[tuple[Key, Any]]:
        return self.tree.range_query(start, end)

    def range_iter(self, start: Key, end: Key) -> Iterator[tuple[Key, Any]]:
        return self.tree.range_iter(start, end)

    def count_range(self, start: Key, end: Key) -> int:
        return self.tree.count_range(start, end)

    def __len__(self) -> int:
        return len(self.tree)

    def __contains__(self, key: Key) -> bool:
        sentinel = object()
        return self.tree.get(key, sentinel) is not sentinel

    @property
    def config(self) -> TreeConfig:
        return self.tree.config

    @property
    def layout(self) -> str:
        """Leaf storage layout of the wrapped tree."""
        return self.tree.config.layout

    @property
    def stats(self) -> TreeStats:
        """Tree counters with the WAL's durability counters mirrored in.

        The WAL tracks its own totals; mirroring them onto the wrapped
        tree's :class:`TreeStats` keeps one observability surface for
        benchmarks and tests (``stats.wal_group_batch_mean`` etc.).
        """
        stats = self.tree.stats
        stats.wal_group_batches = self.wal.group_batches
        stats.wal_group_batch_records = self.wal.group_batch_records
        stats.wal_group_batch_max = self.wal.group_batch_max
        stats.wal_unsynced_acks = self.wal.unsynced_acks
        stats.health_retries = self.health.retries
        stats.health_degradations = self.health.degradations
        stats.health_read_only_trips = self.health.read_only_trips
        stats.health_recoveries = self.health.recoveries
        scrubber = self.scrubber
        if scrubber is not None:
            stats.scrub_cycles = scrubber.cycles
            stats.scrub_corruptions = scrubber.corruptions
            stats.scrub_quarantines = scrubber.quarantines
            stats.scrub_peer_repairs = scrubber.peer_repairs
        return stats

    def items(self) -> Iterable[tuple[Key, Any]]:
        return self.tree.items()

    def validate(self, check_min_fill: bool = False) -> None:
        self.tree.validate(check_min_fill=check_min_fill)

    def check(self, check_min_fill: bool = False) -> list[str]:
        return self.tree.check(check_min_fill=check_min_fill)

    def scrub(self) -> ScrubReport:
        return self.tree.scrub()

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_NAME

    def checkpoint(self) -> int:
        """Write a v2 snapshot atomically, then truncate the WAL.

        Returns the number of entries snapshotted.  Crash-safety of each
        window between the steps:

        * during the temp-file write — temp is discarded, old snapshot
          and full WAL intact;
        * after the replace, before the truncate — new snapshot plus a
          WAL whose ops it already contains: replay is idempotent;
        * mid-truncate — segments are deleted oldest-first, so only a
          *suffix* of already-snapshotted ops can survive, which
          re-applies idempotently.

        Concurrent writers are excluded for the whole snapshot+truncate
        span by the facade's checkpoint gate, held exclusively here and
        shared by every mutation across its log+apply pair — so no op
        can be logged but not yet applied while the checkpoint runs
        (such an op would be truncated from the WAL without being in
        the snapshot: a lost acknowledged write).  For a
        ``ConcurrentTree`` its structural write lock is additionally
        taken so the snapshot sees a consistent cut even if some writer
        bypasses the facade.
        """
        with self._gate.write_locked():
            base = self.tree
            exclusive = getattr(base, "exclusive", None)
            if exclusive is not None:
                with exclusive():
                    return self._checkpoint_inner(base.tree)
            return self._checkpoint_inner(base)

    def _checkpoint_inner(self, snapshot_source: Any) -> int:  # holds: durable.gate
        count = save_tree(
            snapshot_source,
            self.snapshot_path,
            version=2,
            retry=self.retry,
            health=self.health,
        )
        failpoints.fire("checkpoint.before_truncate")
        # Captured before the truncate, under the exclusive gate: the
        # snapshot covers exactly the records below this position, so a
        # replication reader caught up to it has missed nothing.
        self.last_checkpoint_position = self.wal.tail_position()
        self.wal.truncate()
        failpoints.fire("checkpoint.after_truncate")
        self.checkpoints += 1
        # A full snapshot landed and the WAL restarted on a fresh
        # segment: the disk demonstrably takes writes again, so a
        # degraded or read-only tree is healed by exactly this call.
        # (FAILED is terminal; restore() refuses it.)
        if self.health.state is not HealthState.HEALTHY:
            self.health.restore()
        return count

    def close(self) -> None:
        """Flush and close the WAL (the tree itself is in-memory)."""
        self.wal.close()

    def abort(self) -> None:
        """Simulate process death: stop the group flusher **without**
        flushing, so queued-but-unacked records are lost exactly as a
        real crash would lose them.  No-op under non-group policies."""
        self.wal.abort()

    def __enter__(self) -> "DurableTree":
        return self

    def __exit__(self, *exc_info) -> None:
        # Only a SimulatedCrash models a dead process (which flushes
        # nothing).  Any other exception — including BaseExceptions
        # like KeyboardInterrupt — leaves a live process, so the final
        # flush/fsync must still happen.
        if exc_info[0] is not None and issubclass(
            exc_info[0], failpoints.SimulatedCrash
        ):
            self.abort()
            return
        self.close()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        tree_class: Type[BPlusTree] = BPlusTree,
        config: Optional[TreeConfig] = None,
        *,
        fsync: str = "always",
        fsync_interval: int = 64,
        segment_bytes: int = 4 * 1024 * 1024,
        group_queue_max: int = 8192,
        wrap: Optional[Callable[[BPlusTree], Any]] = None,
        scrub: bool = True,
        health: Optional[HealthMonitor] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> tuple["DurableTree", RecoveryReport]:
        """Rebuild a durable tree from ``directory``.

        Loads the snapshot (if one exists), replays the WAL up to the
        first damaged record, trims the damage so future appends are
        visible, audits fast-path metadata, and opens a fresh WAL
        segment for new writes.  Never raises on WAL damage — that is
        the expected aftermath of a crash — and reports it instead.

        Args:
            directory: durability root written by a previous facade.
            tree_class: variant to rebuild into (need not match the one
                that wrote the state; the log is logical).
            config: overrides the snapshotted node capacities.
            wrap: applied to the rebuilt tree before wrapping the
                facade — pass ``ConcurrentTree`` to recover straight
                into the thread-safe wrapper.
            scrub: audit + repair fast-path metadata after replay.

        Returns:
            ``(durable_tree, report)``.
        """
        directory = Path(directory)
        report = RecoveryReport()
        snap = directory / SNAPSHOT_NAME
        # A crash between temp write and replace leaves a stale temp
        # file; it was never acknowledged as a snapshot, so drop it.
        snap.with_name(snap.name + ".tmp").unlink(missing_ok=True)
        if snap.exists():
            tree = load_tree(snap, tree_class, config)
            report.snapshot_loaded = True
            report.snapshot_entries = len(tree)
        else:
            tree = tree_class(config)
        wal_dir = directory / WAL_DIRNAME
        replay = replay_wal(wal_dir)
        if replay.unreadable:
            # The damage is a segment that cannot be *read*, not one
            # that is provably corrupt: its bytes (and the acked writes
            # inside them) may be intact on the medium.  Recovering
            # past it would serve a state silently missing those acks,
            # and repairing it would destroy them — refuse both,
            # explicitly.
            raise WALError(
                f"WAL segment {replay.corrupt_segment} is unreadable "
                f"after retries ({replay.read_failures} failed reads); "
                "refusing destructive repair — restore the medium, or "
                "rebuild this node from its replica"
            )
        report.segments_scanned = replay.segments_scanned
        report.checksum_failures = replay.checksum_failures
        report.truncated_tail = replay.truncated_tail
        report.tail_bytes_dropped = replay.tail_bytes_dropped
        report.sequence_gap = replay.sequence_gap
        for op in replay.ops:
            tag = op[0]
            if tag == OP_INSERT:
                tree.insert(op[1], op[2])
                report.entries_replayed += 1
            elif tag == OP_DELETE:
                tree.delete(op[1])
                report.entries_replayed += 1
            elif tag == OP_INSERT_MANY:
                tree.insert_many(op[1])
                report.entries_replayed += len(op[1])
            elif tag == OP_EPOCH:
                report.epoch_markers += 1
                report.last_epoch = max(report.last_epoch, op[1])
            else:
                report.unknown_records += 1
                continue
            report.records_replayed += 1
        repair_wal(wal_dir, replay)
        if scrub:
            report.scrub = tree.scrub()
        if wrap is not None:
            tree = wrap(tree)
        durable = cls(
            tree,
            directory,
            fsync=fsync,
            fsync_interval=fsync_interval,
            segment_bytes=segment_bytes,
            group_queue_max=group_queue_max,
            health=health,
            retry=retry,
        )
        durable.last_recovery = report
        return durable, report
