"""Duplicate-key support: a secondary-index adapter over the unique-key
trees.

The paper's real-world workload (§5.5) indexes ``closing_price``, a
column full of repeated values; the reproduction's trees store unique
keys.  :class:`DuplicateKeyIndex` bridges the gap the way secondary
indexes classically do: each logical ``(key, value)`` entry is stored
under the composite key ``(key, seq)`` where ``seq`` is a monotonically
increasing discriminator.  Composite tuples order first by the logical
key, so near-sortedness of the logical stream carries over to the
physical key order — the fast paths keep working.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Iterator, Optional, Type

from .bptree import BPlusTree
from .config import TreeConfig
from .node import Key
from .quit_tree import QuITTree
from .stats import ScrubReport, TreeStats


class DuplicateKeyIndex:
    """Multi-map index: one logical key may hold many values.

    Args:
        tree_class: the underlying unique-key variant (QuIT by default —
            duplicates arrive near-sorted in exactly the workloads QuIT
            targets).
        config: tree configuration.
    """

    def __init__(
        self,
        tree_class: Type[BPlusTree] = QuITTree,
        config: Optional[TreeConfig] = None,
    ) -> None:
        self.tree = tree_class(config)
        self._seq = 0

    def __len__(self) -> int:
        """Number of logical entries (duplicates counted)."""
        return len(self.tree)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, key: Key, value: Any = None) -> None:
        """Add one ``(key, value)`` entry; duplicates accumulate."""
        self.tree.insert((key, self._seq), value)
        self._seq += 1

    def insert_many(self, items: Iterable[tuple[Key, Any]]) -> int:
        """Batched :meth:`insert`: duplicates accumulate per item.

        Discriminators are assigned in iteration order before the batch
        is handed to the tree's run-carving ``insert_many`` — composite
        keys preserve the logical stream's near-sortedness, so the fast
        paths see the same runs a loop of single inserts would.
        Returns the number of entries added (every item adds one).
        """
        batch = []
        seq = self._seq
        for key, value in items:
            batch.append(((key, seq), value))
            seq += 1
        self._seq = seq
        self.tree.insert_many(batch)
        return len(batch)

    def delete_one(self, key: Key) -> bool:
        """Remove the oldest entry for ``key``; False when absent."""
        for composite, _ in self.tree.iter_from((key, -1)):
            if composite[0] != key:
                return False
            return self.tree.delete(composite)
        return False

    def delete_all(self, key: Key) -> int:
        """Remove every entry for ``key``; returns the count removed."""
        composites = [
            c for c, _ in self._entries_for(key)
        ]
        for composite in composites:
            self.tree.delete(composite)
        return len(composites)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _entries_for(self, key: Key) -> Iterator[tuple[tuple, Any]]:
        for composite, value in self.tree.iter_from((key, -1)):
            if composite[0] != key:
                return
            yield composite, value

    def get_all(self, key: Key) -> list[Any]:
        """Every value stored under ``key``, oldest first."""
        return [v for _, v in self._entries_for(key)]

    def get(self, key: Key, default: Any = None) -> Any:
        """The oldest value for ``key`` (or ``default``)."""
        for _, value in self._entries_for(key):
            return value
        return default

    def get_many(
        self, keys: Iterable[Key], default: Any = None
    ) -> list[Any]:
        """Batched :meth:`get`: the oldest value per probe key, aligned
        with ``keys`` (``default`` for absent keys).

        Probes are sorted and positioned left-to-right on the composite
        ``(key, -1)`` floor via the tree's chain-reuse read primitive —
        consecutive probes for nearby logical keys share one leaf
        instead of opening one ``iter_from`` cursor (a full descent)
        each.
        """
        key_list = keys if isinstance(keys, list) else list(keys)
        n = len(key_list)
        out = [default] * n
        if not n:
            return out
        tree = self.tree
        tree.stats.read_batches += 1
        order = sorted(range(n), key=key_list.__getitem__)
        hint = None
        for pos in order:
            key = key_list[pos]
            target = (key, -1)
            hint = tree._probe_leaf_for_read(target, hint)
            lk, lv, ln = hint.view()
            idx = bisect_left(lk, target, 0, ln)
            if idx < ln:
                if lk[idx][0] == key:
                    out[pos] = lv[idx]
                continue
            # Every composite in this leaf sorts below (key, -1): the
            # floor entry, if any, starts the next non-empty leaf.
            nxt = hint.next
            while nxt is not None and not nxt.size:
                nxt = nxt.next
            if nxt is not None and nxt.min_key[0] == key:
                out[pos] = nxt.value_at(0)
        return out

    def count(self, key: Key) -> int:
        """Number of entries stored under ``key``."""
        return sum(1 for _ in self._entries_for(key))

    def __contains__(self, key: Key) -> bool:
        for _ in self._entries_for(key):
            return True
        return False

    def range_iter(self, start: Key, end: Key) -> Iterator[tuple[Key, Any]]:
        """Lazily yield entries with ``start <= key < end``, in key order
        and arrival order within a key."""
        for composite, value in self.tree.iter_from((start, -1)):
            if composite[0] >= end:
                return
            yield composite[0], value

    def range_query(self, start: Key, end: Key) -> list[tuple[Key, Any]]:
        """All entries with ``start <= key < end``, in key order and
        arrival order within a key."""
        return list(self.range_iter(start, end))

    def count_range(self, start: Key, end: Key) -> int:
        """Number of logical entries with ``start <= key < end``."""
        return sum(1 for _ in self.range_iter(start, end))

    def items(self) -> Iterator[tuple[Key, Any]]:
        """All logical entries in (key, arrival) order."""
        for composite, value in self.tree.items():
            yield composite[0], value

    def keys(self) -> Iterator[Key]:
        """Distinct logical keys in order."""
        previous: Any = _SENTINEL
        for composite, _ in self.tree.items():
            if composite[0] != previous:
                previous = composite[0]
                yield previous

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> TreeStats:
        """Underlying tree statistics (fast-insert counters etc.)."""
        return self.tree.stats

    @property
    def layout(self) -> str:
        """Leaf storage layout of the underlying tree."""
        return self.tree.layout

    def validate(self) -> None:
        """Validate the underlying tree."""
        self.tree.validate(check_min_fill=False)

    def check(self, check_min_fill: bool = False) -> list[str]:
        """Non-raising validation of the underlying tree (see
        :meth:`repro.core.bptree.BPlusTree.check`)."""
        return self.tree.check(check_min_fill=check_min_fill)

    def scrub(self) -> ScrubReport:
        """Scrub the underlying tree's derived state (fast-path
        pointers, chain endpoints); see
        :meth:`repro.core.bptree.BPlusTree.scrub`."""
        return self.tree.scrub()


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()
