"""Write-ahead log: append-only, checksummed, torn-tail tolerant.

Logical operations (``insert`` / ``delete`` / ``insert_many``) are
serialized as Python literals — the same discipline as
:mod:`repro.core.persist`, so exactly the key/value types a snapshot can
hold are loggable — and framed as binary records::

    <payload length: u32 LE> <CRC32(payload): u32 LE> <payload bytes>

Records accumulate in numbered segment files (``wal-00000001.seg``, ...)
inside a directory; a segment that outgrows ``segment_bytes`` is closed
and a new one started, so a checkpoint's truncation deletes whole files.

Durability is governed by the fsync policy:

* ``"always"`` — flush + fsync after every append; an acknowledged write
  survives any crash.
* ``"interval"`` — fsync every ``fsync_interval`` appends (and on
  rotation/close); bounded loss window, much cheaper.
* ``"none"`` — leave it to the OS page cache.

Replay (:func:`replay_wal`) never raises on a damaged log: it stops
cleanly at the first truncated or checksum-failing record and reports
what was dropped (a crash mid-append legitimately leaves a torn tail).
:func:`repair_wal` then truncates the log back to its last valid record
so post-recovery appends are never hidden behind garbage.
"""

from __future__ import annotations

import ast
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Optional, Union

from ..concurrency import sanitizer
from ..testing import failpoints
from .node import Key

_HEADER = struct.Struct("<II")
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"

#: Logical op tags used in record payloads.
OP_INSERT = "i"
OP_DELETE = "d"
OP_INSERT_MANY = "m"
#: Replication epoch marker: ``("e", epoch)``.  Carries no tree data —
#: it stamps the primary's epoch into the record stream so replicas can
#: detect a deposed primary (see :mod:`repro.replication`).
OP_EPOCH = "e"

_FSYNC_POLICIES = ("always", "interval", "none")


class WALError(ValueError):
    """Raised for unloggable values or misuse of the WAL API."""


def _encode(op: tuple) -> bytes:
    """Serialize an op tuple as a Python-literal payload.

    Round-trippability is enforced at append time (cheaply, via a
    ``literal_eval`` of the repr) so a bad value corrupts nothing: the
    record is rejected before any byte hits the log.
    """
    text = repr(op)
    try:
        ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise WALError(
            f"op {text!r} is not a Python literal; only literal "
            "keys/values can be logged"
        ) from None
    return text.encode("utf-8")


def _decode(payload: bytes) -> tuple:
    return ast.literal_eval(payload.decode("utf-8"))


def segment_paths(directory: Union[str, Path]) -> list[Path]:
    """Existing WAL segment files in ``directory``, in replay order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p for p in directory.iterdir()
        if p.name.startswith(_SEGMENT_PREFIX)
        and p.name.endswith(_SEGMENT_SUFFIX)
    )


def _segment_seq(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


@dataclass
class WALReplayResult:
    """Outcome of scanning a WAL directory.

    Attributes:
        ops: decoded op tuples, in log order, up to the first damage.
        records: number of valid records decoded.
        segments_scanned: segment files examined.
        checksum_failures: records whose CRC32 did not match (replay
            stops at the first, so this is 0 or 1).
        truncated_tail: True when the log ended mid-record (torn write).
        tail_bytes_dropped: bytes from the first damaged record onward,
            across all remaining segments.
        corrupt_segment: segment file where replay stopped, if any.
        valid_offset: byte offset of the last valid record boundary in
            ``corrupt_segment`` (used by :func:`repair_wal`).
    """

    ops: list[tuple] = field(default_factory=list)
    records: int = 0
    segments_scanned: int = 0
    checksum_failures: int = 0
    truncated_tail: bool = False
    tail_bytes_dropped: int = 0
    corrupt_segment: Optional[Path] = None
    valid_offset: int = 0

    @property
    def clean(self) -> bool:
        """True when the whole log was intact."""
        return self.corrupt_segment is None


def replay_wal(directory: Union[str, Path]) -> WALReplayResult:
    """Scan every segment in ``directory``; never raises on damage.

    Replay is strictly prefix-valid: the first truncated or
    checksum-failing record ends it, and everything at or after that
    point — including later segments, whose records were appended after
    the damaged one — counts as dropped tail bytes.
    """
    result = WALReplayResult()
    segments = segment_paths(directory)
    damaged = False
    for seg in segments:
        if damaged:
            # Records here were logged after the corrupt one; applying
            # them would reorder history, so they are dropped too.
            result.tail_bytes_dropped += seg.stat().st_size
            continue
        result.segments_scanned += 1
        data = seg.read_bytes()
        offset = 0
        n = len(data)
        while offset < n:
            if offset + _HEADER.size > n:
                result.truncated_tail = True
                break
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > n:
                result.truncated_tail = True
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                result.checksum_failures += 1
                break
            try:
                op = _decode(payload)
            except (ValueError, SyntaxError):
                # CRC-valid but undecodable: treat as corruption rather
                # than crashing recovery.
                result.checksum_failures += 1
                break
            result.ops.append(op)
            result.records += 1
            offset = end
        if offset < n or result.truncated_tail:
            damaged = True
            result.corrupt_segment = seg
            result.valid_offset = offset
            result.tail_bytes_dropped += n - offset
    return result


def repair_wal(
    directory: Union[str, Path], result: WALReplayResult
) -> None:
    """Truncate the log back to its last valid record boundary.

    The damaged segment is cut at ``result.valid_offset`` and every later
    segment is deleted — without this, records appended after recovery
    would sit behind the damaged region and be invisible to the next
    replay.
    """
    if result.corrupt_segment is None:
        return
    with open(result.corrupt_segment, "r+b") as fh:
        fh.truncate(result.valid_offset)
        fh.flush()
        if sanitizer.enabled():
            sanitizer.note_fsync("wal.repair")
        os.fsync(fh.fileno())
    drop = False
    for seg in segment_paths(directory):
        if drop:
            seg.unlink()
        elif seg == result.corrupt_segment:
            drop = True
    _fsync_dir(Path(directory))


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so renames/unlinks inside it are durable.

    Best-effort: not every platform supports opening a directory.
    """
    if sanitizer.enabled():
        sanitizer.note_fsync("wal.dir")
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True, order=True)
class WALPosition:
    """A durable cursor into a WAL directory: ``(segment_seq, offset)``.

    Positions order lexicographically — segment sequence numbers are
    monotonically increasing for the lifetime of a WAL directory (they
    survive rotation *and* truncation, which never reuses a sequence
    number), so a larger position always denotes a later point in the
    logical stream.
    """

    segment: int
    offset: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.segment}:{self.offset}"


@dataclass
class WALRecord:
    """One framed record as read by :class:`WALReader`.

    The raw ``payload``/``crc`` pair is kept so a *consumer* (e.g. a
    replica applying a shipped record) can re-verify the checksum at its
    end of the wire rather than trusting the reader's copy.
    """

    position: WALPosition
    next_position: WALPosition
    payload: bytes
    crc: int

    @property
    def op(self) -> tuple:
        """Decode the payload into its logical op tuple."""
        return _decode(self.payload)

    def verify(self) -> bool:
        """Recompute the CRC32 over the payload bytes."""
        return zlib.crc32(self.payload) == self.crc


class WALTruncatedError(WALError):
    """The requested position precedes the oldest surviving WAL record.

    Raised by :class:`WALReader` when a checkpoint truncated (or a
    repair trimmed) the segments a tailing reader had not consumed yet.
    The reader cannot recover the gap — the caller must re-bootstrap
    from a snapshot that covers it.
    """


class WALStreamError(WALError):
    """Damage strictly *below* the tail of the log.

    A torn record or checksum failure in a segment that is followed by a
    newer segment cannot be an in-flight append — it is real corruption,
    and skipping it would reorder history.
    """


def first_position(directory: Union[str, Path]) -> Optional[WALPosition]:
    """Start of the oldest surviving segment, or None when empty."""
    segments = segment_paths(directory)
    if not segments:
        return None
    return WALPosition(_segment_seq(segments[0]), 0)


class WALReader:
    """Incremental, resumable reader over a live WAL directory.

    Unlike :func:`replay_wal` (a one-shot crash-recovery scan), the
    reader *tails* the log: it reads every complete record from a given
    :class:`WALPosition`, follows rotation across segment files
    (sequence gaps included — truncation never reuses a sequence), stops
    cleanly at an incomplete record at the very tail (an append may be
    in flight; call :meth:`read` again later), and detects when its
    position has been truncated away underneath it.

    The reader holds no file handles between calls and keeps no state of
    its own — the position returned by :meth:`read` is the only cursor,
    so it can be persisted and handed to a different reader (or a
    different process) to resume.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def read(
        self,
        position: WALPosition,
        *,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> tuple[list[WALRecord], WALPosition]:
        """All complete records from ``position``; returns ``(records,
        resume_position)``.

        Raises:
            WALTruncatedError: ``position`` points below the oldest
                surviving record (the caller must re-bootstrap).
            WALStreamError: a torn or checksum-failing record below the
                tail — real corruption, not an in-flight append.
        """
        records: list[WALRecord] = []
        pos = position
        segments = segment_paths(self.directory)
        if not segments:
            # Nothing on disk.  A position at a segment start is simply
            # "nothing to read yet"; mid-segment, the bytes below it are
            # gone and the caller's history with them.
            if pos.offset != 0:
                raise WALTruncatedError(
                    f"position {pos} points into a deleted segment"
                )
            return records, pos
        by_seq = {_segment_seq(p): p for p in segments}
        first_seq = min(by_seq)
        last_seq = max(by_seq)
        if pos.segment < first_seq:
            raise WALTruncatedError(
                f"position {pos} precedes the oldest segment "
                f"{first_seq} (WAL was truncated; re-bootstrap)"
            )
        if pos.segment > last_seq:
            if pos.offset == 0:
                return records, pos  # next segment not created yet
            raise WALTruncatedError(
                f"position {pos} is beyond the newest segment {last_seq}"
            )
        if pos.segment not in by_seq:
            raise WALTruncatedError(
                f"segment {pos.segment} was deleted but newer segments "
                f"survive (WAL was truncated; re-bootstrap)"
            )
        ordered = sorted(s for s in by_seq if s >= pos.segment)
        bytes_read = 0
        for idx, seq in enumerate(ordered):
            data = by_seq[seq].read_bytes()
            n = len(data)
            offset = pos.offset if seq == pos.segment else 0
            if offset > n:
                raise WALTruncatedError(
                    f"position {pos} is beyond the end of segment {seq} "
                    f"({n} bytes; it was repaired or rewritten)"
                )
            is_last = idx == len(ordered) - 1
            while offset < n:
                if max_records is not None and len(records) >= max_records:
                    return records, pos
                if max_bytes is not None and bytes_read >= max_bytes:
                    return records, pos
                if offset + _HEADER.size > n:
                    if is_last:
                        return records, pos  # append in flight
                    raise WALStreamError(
                        f"torn record at {seq}:{offset} below the tail"
                    )
                length, crc = _HEADER.unpack_from(data, offset)
                start = offset + _HEADER.size
                end = start + length
                if end > n:
                    if is_last:
                        return records, pos  # append in flight
                    raise WALStreamError(
                        f"torn record at {seq}:{offset} below the tail"
                    )
                payload = data[start:end]
                if zlib.crc32(payload) != crc:
                    raise WALStreamError(
                        f"checksum failure at {seq}:{offset}"
                    )
                record = WALRecord(
                    position=WALPosition(seq, offset),
                    next_position=WALPosition(seq, end),
                    payload=payload,
                    crc=crc,
                )
                records.append(record)
                pos = record.next_position
                bytes_read += end - offset
                offset = end
            if not is_last:
                # Segment fully consumed and a newer one exists, so this
                # one is closed for good: advance the cursor past it.
                pos = WALPosition(ordered[idx + 1], 0)
        return records, pos

    def bytes_behind(self, position: WALPosition) -> int:
        """Bytes on disk at or after ``position`` (replication lag).

        Best-effort: segments may rotate underneath the stat calls, so
        treat the result as a gauge, not an exact count.
        """
        behind = 0
        for seg in segment_paths(self.directory):
            seq = _segment_seq(seg)
            if seq < position.segment:
                continue
            size = seg.stat().st_size
            if seq == position.segment:
                behind += max(0, size - position.offset)
            else:
                behind += size
        return behind


class WriteAheadLog:
    """Appender over a WAL directory.

    Args:
        directory: created if missing; holds the segment files.
        fsync: ``"always"`` / ``"interval"`` / ``"none"``.
        fsync_interval: appends between fsyncs under ``"interval"``.
        segment_bytes: rotation threshold for the active segment.

    A fresh appender always starts a new segment rather than appending
    to the previous one: the previous tail may hold bytes that were
    never fsynced, and mixing acknowledged records into the same file
    would entangle their durability.  Thread-safe: appends serialize on
    an internal lock (the tree above has its own locking).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync: str = "always",
        fsync_interval: int = 64,
        segment_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise WALError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval <= 0:
            raise WALError(f"fsync_interval must be positive, got {fsync_interval}")
        if segment_bytes <= 0:
            raise WALError(f"segment_bytes must be positive, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.segment_bytes = segment_bytes
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.rotations = 0
        self._lock = sanitizer.make_lock("wal.append")
        self._fh = None
        self._since_sync = 0
        self._active_size = 0
        existing = segment_paths(self.directory)
        self._seq = _segment_seq(existing[-1]) + 1 if existing else 1

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def log_insert(self, key: Key, value: Any = None) -> None:
        """Log a single upsert."""
        self._append((OP_INSERT, key, value))

    def log_delete(self, key: Key) -> None:
        """Log a single delete."""
        self._append((OP_DELETE, key))

    def log_insert_many(self, items: list[tuple[Key, Any]]) -> None:
        """Log a batched upsert as one record (one fsync per batch)."""
        self._append((OP_INSERT_MANY, items))

    def log_epoch(self, epoch: int) -> None:
        """Stamp a replication epoch marker into the record stream.

        Carries no tree data; recovery skips it, replicas use it to
        track which primary's tenure the following records belong to.
        """
        self._append((OP_EPOCH, int(epoch)))

    def tail_position(self) -> WALPosition:
        """Position one past the last appended byte.

        Records appended after this call land at or after the returned
        position; a reader that has caught up to it has seen everything.
        """
        with self._lock:
            if self._fh is None:
                return WALPosition(self._seq, 0)
            return WALPosition(self._seq - 1, self._active_size)

    def _append(self, op: tuple) -> None:
        payload = _encode(op)
        record = (
            _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        )
        with self._lock:
            failpoints.fire("wal.before_append")
            fh = self._fh
            if fh is None or self._active_size + len(record) > self.segment_bytes:
                fh = self._rotate_locked()
            fh.write(record)
            self._active_size += len(record)
            self.records_appended += 1
            self.bytes_appended += len(record)
            self._since_sync += 1
            policy = self.fsync_policy
            if policy == "always":
                self._sync_locked(fh)
            elif policy == "interval":
                fh.flush()
                if self._since_sync >= self.fsync_interval:
                    self._sync_locked(fh)
            failpoints.fire("wal.after_append")

    def _rotate_locked(self) -> IO[bytes]:
        """Close the active segment (fsynced) and open the next one."""
        if self._fh is not None:
            failpoints.fire("wal.before_rotate")
            self._sync_locked(self._fh)
            self._fh.close()
            self.rotations += 1
        path = (
            self.directory
            / f"{_SEGMENT_PREFIX}{self._seq:08d}{_SEGMENT_SUFFIX}"
        )
        self._seq += 1
        # Unbuffered: every record write is an os.write, so a simulated
        # crash can never leave bytes in a Python-level buffer that a
        # later GC flush would resurrect behind a repaired tail.
        self._fh = open(path, "ab", buffering=0)
        self._active_size = self._fh.tell()
        _fsync_dir(self.directory)
        return self._fh

    def _sync_locked(self, fh: IO[bytes]) -> None:  # holds: wal.append
        fh.flush()
        failpoints.fire("wal.before_fsync")
        if sanitizer.enabled():
            sanitizer.note_fsync("wal.segment")
        os.fsync(fh.fileno())
        self.syncs += 1
        self._since_sync = 0

    def sync(self) -> None:
        """Force an fsync of the active segment."""
        with self._lock:
            if self._fh is not None:
                self._sync_locked(self._fh)

    # ------------------------------------------------------------------
    # Truncation (checkpoint) and lifecycle
    # ------------------------------------------------------------------

    def truncate(self) -> int:
        """Delete every segment (the snapshot now covers their ops).

        Returns the number of segment files removed.  Deletion is
        oldest-first: a crash mid-truncate leaves a suffix of the log,
        and replaying a suffix of already-snapshotted ops is idempotent,
        whereas a surviving *prefix* with a missing middle would not be.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
                self._active_size = 0
            removed = 0
            for seg in segment_paths(self.directory):
                failpoints.fire("wal.before_truncate_segment")
                seg.unlink()
                removed += 1
            _fsync_dir(self.directory)
            return removed

    def close(self) -> None:
        """Flush, fsync, and close the active segment."""
        with self._lock:
            if self._fh is not None:
                self._sync_locked(self._fh)
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        # A SimulatedCrash must not reach the close() cleanup: a dead
        # process flushes nothing.  Anything else — KeyboardInterrupt
        # included — leaves a live process that must still flush.
        if exc_info[0] is not None and issubclass(
            exc_info[0], failpoints.SimulatedCrash
        ):
            return
        self.close()
