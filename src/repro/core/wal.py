"""Write-ahead log: append-only, checksummed, torn-tail tolerant.

Logical operations (``insert`` / ``delete`` / ``insert_many``) are
serialized as Python literals — the same discipline as
:mod:`repro.core.persist`, so exactly the key/value types a snapshot can
hold are loggable — and framed as binary records::

    <payload length: u32 LE> <CRC32(payload): u32 LE> <payload bytes>

Records accumulate in numbered segment files (``wal-00000001.seg``, ...)
inside a directory; a segment that outgrows ``segment_bytes`` is closed
and a new one started, so a checkpoint's truncation deletes whole files.

Durability is governed by the fsync policy:

* ``"always"`` — flush + fsync after every append; an acknowledged write
  survives any crash.
* ``"interval"`` — fsync every ``fsync_interval`` appends (and on
  rotation/close); bounded loss window, much cheaper.  **An
  interval-mode acknowledgement is NOT durable until the next fsync**:
  the append has only been flushed to the OS page cache when the call
  returns, so a crash inside the window loses up to ``fsync_interval``
  acknowledged records.  The ``unsynced_acks`` counter tracks exactly
  how many acknowledgements were handed out before their bytes were
  fsynced, so tests (and operators) can see the loss window.
* ``"none"`` — leave it to the OS page cache (every ack is unsynced).
* ``"group"`` — **group commit**: appends from any number of writer
  threads are enqueued on a bounded queue and coalesced by a dedicated
  flusher thread into a single ``write + fsync``; every writer in the
  batch is released together once that one fsync returns.  Same crash
  guarantee as ``"always"`` (no acknowledgement before the batch's
  fsync), at a fraction of the fsync count under concurrency.  Writers
  can also *pipeline*: ``submit_*`` returns a :class:`CommitTicket`
  immediately and ``CommitTicket.result()`` awaits durability later.

Replay (:func:`replay_wal`) never raises on a damaged log: it stops
cleanly at the first truncated or checksum-failing record and reports
what was dropped (a crash mid-append legitimately leaves a torn tail).
:func:`repair_wal` then truncates the log back to its last valid record
so post-recovery appends are never hidden behind garbage.
"""

from __future__ import annotations

import ast
import errno
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Optional, Union

from ..concurrency import sanitizer
from ..testing import failpoints, iofaults
from .health import HealthMonitor, ReadOnlyError, RetryPolicy
from .node import Key

_HEADER = struct.Struct("<II")
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"

#: Logical op tags used in record payloads.
OP_INSERT = "i"
OP_DELETE = "d"
OP_INSERT_MANY = "m"
#: Replication epoch marker: ``("e", epoch)``.  Carries no tree data —
#: it stamps the primary's epoch into the record stream so replicas can
#: detect a deposed primary (see :mod:`repro.replication`).
OP_EPOCH = "e"

_FSYNC_POLICIES = ("always", "interval", "none", "group")


class WALError(ValueError):
    """Raised for unloggable values or misuse of the WAL API."""


class WALDeadError(WALError):
    """The group-commit flusher died and can never acknowledge again.

    Every :class:`CommitTicket` that was pending when the flusher died —
    drained or still queued — is failed with this error, so callers
    blocked in ``wait()``/``sync()`` return immediately instead of
    hanging against a dead thread.  ``__cause__`` carries the exception
    that killed the flusher.
    """


class CommitTicket:
    """Asynchronous durability acknowledgement for one WAL append.

    A ticket is *resolved* when the record's batch fsync has returned
    (the write is durable) and *failed* when the flusher could not make
    it durable — :meth:`wait` / :meth:`result` then re-raise the
    flusher's exception in the waiting thread, so an injected crash or
    fsync failure is never silently converted into an acknowledgement.

    ``value`` carries the logical result of the op the caller paired
    with this append (e.g. ``delete``'s existed-bool); the submitting
    facade assigns it before handing the ticket out, so any thread that
    legitimately holds a ticket may read it after :meth:`result`.

    Under the non-group fsync policies the submit APIs degrade to the
    synchronous path and return an already-resolved ticket, so callers
    can be written against tickets regardless of policy.
    """

    __slots__ = ("_event", "_exc", "value")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._exc: Optional[BaseException] = None
        self.value: Any = None

    def done(self) -> bool:
        """True once the ticket is resolved or failed (non-blocking)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until durable; re-raise the flusher's failure, if any."""
        if not self._event.wait(timeout):
            raise WALError(
                f"commit ticket not resolved within {timeout}s"
            )
        exc = self._exc
        if exc is not None:
            raise exc

    def result(self, timeout: Optional[float] = None) -> Any:
        """:meth:`wait`, then return the op's logical result."""
        self.wait(timeout)
        return self.value

    # -- flusher side --------------------------------------------------

    def _resolve(self) -> None:
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._exc = exc
        self._event.set()


def _encode(op: tuple) -> bytes:
    """Serialize an op tuple as a Python-literal payload.

    Round-trippability is enforced at append time (cheaply, via a
    ``literal_eval`` of the repr) so a bad value corrupts nothing: the
    record is rejected before any byte hits the log.
    """
    text = repr(op)
    try:
        ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise WALError(
            f"op {text!r} is not a Python literal; only literal "
            "keys/values can be logged"
        ) from None
    return text.encode("utf-8")


def _decode(payload: bytes) -> tuple:
    return ast.literal_eval(payload.decode("utf-8"))


def segment_paths(directory: Union[str, Path]) -> list[Path]:
    """Existing WAL segment files in ``directory``, in replay order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p for p in directory.iterdir()
        if p.name.startswith(_SEGMENT_PREFIX)
        and p.name.endswith(_SEGMENT_SUFFIX)
    )


def _segment_seq(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


@dataclass
class WALReplayResult:
    """Outcome of scanning a WAL directory.

    Attributes:
        ops: decoded op tuples, in log order, up to the first damage.
        records: number of valid records decoded.
        segments_scanned: segment files examined.
        checksum_failures: records whose CRC32 did not match (replay
            stops at the first, so this is 0 or 1).
        truncated_tail: True when the log ended mid-record (torn write).
        tail_bytes_dropped: bytes from the first damaged record onward,
            across all remaining segments.
        corrupt_segment: segment file where replay stopped, if any.
        valid_offset: byte offset of the last valid record boundary in
            ``corrupt_segment`` (used by :func:`repair_wal`).
        sequence_gap: True when replay stopped because a *middle*
            segment is missing (``corrupt_segment`` is then the first
            post-gap segment, whole but orphaned).
        read_failures: segment read attempts that raised ``OSError``
            (each is retried; persistent failure marks ``unreadable``).
        unreadable: True when a segment could not be read at all —
            :func:`repair_wal` refuses to act on it, since the bytes on
            the medium may be intact.
    """

    ops: list[tuple] = field(default_factory=list)
    records: int = 0
    segments_scanned: int = 0
    checksum_failures: int = 0
    truncated_tail: bool = False
    tail_bytes_dropped: int = 0
    corrupt_segment: Optional[Path] = None
    valid_offset: int = 0
    sequence_gap: bool = False
    read_failures: int = 0
    unreadable: bool = False

    @property
    def clean(self) -> bool:
        """True when the whole log was intact."""
        return self.corrupt_segment is None


#: Small retry for segment reads: transient EIO on a read path should
#: never fail a replay or declare corruption.  No health monitor — a
#: flaky read does not make the tree read-only.
_READ_RETRY = RetryPolicy(
    attempts=3, base_delay=0.001, max_delay=0.01, deadline=0.25
)

#: Full re-parses of a damaged segment before the damage is believed:
#: a checksum failure that heals on re-read was read-path noise, one
#: that persists is media rot.
_REREAD_ATTEMPTS = 3


def _read_segment(path: Path) -> bytes:
    """Read one segment through the fault shim, retrying transients.

    A *short* read (fewer bytes than the file holds) is indistinguishable
    from a torn tail by content alone — but not by length: the bytes are
    on the medium, the read just didn't return them.  Believing it would
    let recovery's repair truncate acknowledged records, so it is
    converted into a transient ``EIO`` and retried.  (The size is
    stat'ed *before* the read: a concurrent append can only make the
    file longer, never trip the check.)
    """

    def read() -> bytes:
        expected = path.stat().st_size
        data = iofaults.read_bytes("io.wal.read", path)
        if len(data) < expected:
            raise OSError(
                errno.EIO,
                f"short read: {len(data)} of {expected} bytes",
                str(path),
            )
        return data

    return _READ_RETRY.run(read)


@dataclass
class _SegmentParse:
    """Prefix-valid parse of one segment's bytes."""

    ops: list[tuple]
    offset: int  # last valid record boundary
    size: int
    truncated: bool
    checksum_failures: int

    @property
    def intact(self) -> bool:
        return self.offset == self.size and not self.truncated


def _parse_segment(data: bytes) -> _SegmentParse:
    ops: list[tuple] = []
    offset = 0
    n = len(data)
    truncated = False
    checksum_failures = 0
    while offset < n:
        if offset + _HEADER.size > n:
            truncated = True
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > n:
            truncated = True
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            checksum_failures += 1
            break
        try:
            op = _decode(payload)
        except (ValueError, SyntaxError):
            # CRC-valid but undecodable: treat as corruption rather
            # than crashing recovery.
            checksum_failures += 1
            break
        ops.append(op)
        offset = end
    return _SegmentParse(ops, offset, n, truncated, checksum_failures)


def replay_wal(directory: Union[str, Path]) -> WALReplayResult:
    """Scan every segment in ``directory``; never raises on damage.

    Replay is strictly prefix-valid: the first truncated or
    checksum-failing record — or the first *gap* in the segment
    sequence (a missing middle segment) — ends it, and everything at or
    after that point, including later segments whose records were
    appended after the damage, counts as dropped tail bytes.  Reads go
    through the :mod:`repro.testing.iofaults` shim with a transient
    retry, and a damaged parse is re-read before it is believed, so
    read-path noise (a flaky cable, an injected one-shot fault) never
    masquerades as media corruption.
    """
    result = WALReplayResult()
    segments = segment_paths(directory)
    damaged = False
    prev_seq: Optional[int] = None
    for seg in segments:
        if damaged:
            # Records here were logged after the corrupt one; applying
            # them would reorder history, so they are dropped too.
            result.tail_bytes_dropped += seg.stat().st_size
            continue
        seq = _segment_seq(seg)
        if prev_seq is not None and seq != prev_seq + 1:
            # A middle segment is missing (quarantined by a scrub, or
            # lost between repair steps): stop at the gap — the
            # post-gap records are newer than the hole they sit behind.
            damaged = True
            result.sequence_gap = True
            result.corrupt_segment = seg
            result.valid_offset = 0
            result.tail_bytes_dropped += seg.stat().st_size
            continue
        prev_seq = seq
        result.segments_scanned += 1
        is_last = seg == segments[-1]
        parse: Optional[_SegmentParse] = None
        for _ in range(_REREAD_ATTEMPTS):
            try:
                data = _read_segment(seg)
            except ReadOnlyError:
                result.read_failures += 1
                continue
            parse = _parse_segment(data)
            if parse.intact or (is_last and parse.checksum_failures == 0):
                # Fully valid, or only a torn tail on the final segment
                # (a legitimately in-flight append): believe it.
                break
            # Damage below the tail: re-read before believing it.
        if parse is None:
            # Unreadable after retries.  Stop replay here but leave the
            # bytes alone — see WALReplayResult.unreadable.
            damaged = True
            result.unreadable = True
            result.corrupt_segment = seg
            result.valid_offset = 0
            result.tail_bytes_dropped += seg.stat().st_size
            continue
        result.ops.extend(parse.ops)
        result.records += len(parse.ops)
        result.checksum_failures += parse.checksum_failures
        if parse.truncated:
            result.truncated_tail = True
        if not parse.intact:
            damaged = True
            result.corrupt_segment = seg
            result.valid_offset = parse.offset
            result.tail_bytes_dropped += parse.size - parse.offset
    return result


def repair_wal(
    directory: Union[str, Path], result: WALReplayResult
) -> None:
    """Truncate the log back to its last valid record boundary.

    The damaged segment is cut at ``result.valid_offset`` and every later
    segment is deleted — without this, records appended after recovery
    would sit behind the damaged region and be invisible to the next
    replay.

    Two special cases never touch the damaged segment itself:

    * ``unreadable`` — the segment failed to *read*; its bytes on the
      medium may be intact, and truncating on the basis of a failed
      read would destroy acknowledged history.  No repair happens.
    * ``sequence_gap`` — the damage is a missing *middle* segment; the
      surviving post-gap segments (``corrupt_segment`` onward) are
      orphaned history and are deleted whole, so the next replay sees a
      consecutive clean prefix.
    """
    if result.corrupt_segment is None:
        return
    if result.unreadable:
        return
    if result.sequence_gap:
        drop = False
        for seg in segment_paths(directory):
            if seg == result.corrupt_segment:
                drop = True
            if drop:
                seg.unlink()
        _fsync_dir(Path(directory))
        return
    with open(result.corrupt_segment, "r+b") as fh:
        fh.truncate(result.valid_offset)
        fh.flush()
        if sanitizer.enabled():
            sanitizer.note_fsync("wal.repair")
        os.fsync(fh.fileno())
    drop = False
    for seg in segment_paths(directory):
        if drop:
            seg.unlink()
        elif seg == result.corrupt_segment:
            drop = True
    _fsync_dir(Path(directory))


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so renames/unlinks inside it are durable.

    Best-effort: not every platform supports opening a directory.
    """
    if sanitizer.enabled():
        sanitizer.note_fsync("wal.dir")
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True, order=True)
class WALPosition:
    """A durable cursor into a WAL directory: ``(segment_seq, offset)``.

    Positions order lexicographically — segment sequence numbers are
    monotonically increasing for the lifetime of a WAL directory (they
    survive rotation *and* truncation, which never reuses a sequence
    number), so a larger position always denotes a later point in the
    logical stream.
    """

    segment: int
    offset: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.segment}:{self.offset}"


@dataclass
class WALRecord:
    """One framed record as read by :class:`WALReader`.

    The raw ``payload``/``crc`` pair is kept so a *consumer* (e.g. a
    replica applying a shipped record) can re-verify the checksum at its
    end of the wire rather than trusting the reader's copy.
    """

    position: WALPosition
    next_position: WALPosition
    payload: bytes
    crc: int

    @property
    def op(self) -> tuple:
        """Decode the payload into its logical op tuple."""
        return _decode(self.payload)

    def verify(self) -> bool:
        """Recompute the CRC32 over the payload bytes."""
        return zlib.crc32(self.payload) == self.crc


class WALTruncatedError(WALError):
    """The requested position precedes the oldest surviving WAL record.

    Raised by :class:`WALReader` when a checkpoint truncated (or a
    repair trimmed) the segments a tailing reader had not consumed yet.
    The reader cannot recover the gap — the caller must re-bootstrap
    from a snapshot that covers it.
    """


class WALStreamError(WALError):
    """Damage strictly *below* the tail of the log.

    A torn record or checksum failure in a segment that is followed by a
    newer segment cannot be an in-flight append — it is real corruption,
    and skipping it would reorder history.
    """


def first_position(directory: Union[str, Path]) -> Optional[WALPosition]:
    """Start of the oldest surviving segment, or None when empty."""
    segments = segment_paths(directory)
    if not segments:
        return None
    return WALPosition(_segment_seq(segments[0]), 0)


class WALReader:
    """Incremental, resumable reader over a live WAL directory.

    Unlike :func:`replay_wal` (a one-shot crash-recovery scan), the
    reader *tails* the log: it reads every complete record from a given
    :class:`WALPosition`, follows rotation across segment files
    (sequence gaps included — truncation never reuses a sequence), stops
    cleanly at an incomplete record at the very tail (an append may be
    in flight; call :meth:`read` again later), and detects when its
    position has been truncated away underneath it.

    The reader holds no file handles between calls and keeps no state of
    its own — the position returned by :meth:`read` is the only cursor,
    so it can be persisted and handed to a different reader (or a
    different process) to resume.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def read(
        self,
        position: WALPosition,
        *,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> tuple[list[WALRecord], WALPosition]:
        """All complete records from ``position``; returns ``(records,
        resume_position)``.

        Raises:
            WALTruncatedError: ``position`` points below the oldest
                surviving record (the caller must re-bootstrap).
            WALStreamError: a torn or checksum-failing record below the
                tail — real corruption, not an in-flight append.
        """
        records: list[WALRecord] = []
        pos = position
        segments = segment_paths(self.directory)
        if not segments:
            # Nothing on disk.  A position at a segment start is simply
            # "nothing to read yet"; mid-segment, the bytes below it are
            # gone and the caller's history with them.
            if pos.offset != 0:
                raise WALTruncatedError(
                    f"position {pos} points into a deleted segment"
                )
            return records, pos
        by_seq = {_segment_seq(p): p for p in segments}
        first_seq = min(by_seq)
        last_seq = max(by_seq)
        if pos.segment < first_seq:
            raise WALTruncatedError(
                f"position {pos} precedes the oldest segment "
                f"{first_seq} (WAL was truncated; re-bootstrap)"
            )
        if pos.segment > last_seq:
            if pos.offset == 0:
                return records, pos  # next segment not created yet
            raise WALTruncatedError(
                f"position {pos} is beyond the newest segment {last_seq}"
            )
        if pos.segment not in by_seq:
            raise WALTruncatedError(
                f"segment {pos.segment} was deleted but newer segments "
                f"survive (WAL was truncated; re-bootstrap)"
            )
        ordered = sorted(s for s in by_seq if s >= pos.segment)
        bytes_read = 0
        for idx, seq in enumerate(ordered):
            try:
                data = _read_segment(by_seq[seq])
            except ReadOnlyError as exc:
                raise WALStreamError(
                    f"segment {seq} unreadable after retries: {exc}"
                ) from exc
            n = len(data)
            offset = pos.offset if seq == pos.segment else 0
            if offset > n:
                raise WALTruncatedError(
                    f"position {pos} is beyond the end of segment {seq} "
                    f"({n} bytes; it was repaired or rewritten)"
                )
            is_last = idx == len(ordered) - 1
            while offset < n:
                if max_records is not None and len(records) >= max_records:
                    return records, pos
                if max_bytes is not None and bytes_read >= max_bytes:
                    return records, pos
                if offset + _HEADER.size > n:
                    if is_last:
                        return records, pos  # append in flight
                    raise WALStreamError(
                        f"torn record at {seq}:{offset} below the tail"
                    )
                length, crc = _HEADER.unpack_from(data, offset)
                start = offset + _HEADER.size
                end = start + length
                if end > n:
                    if is_last:
                        return records, pos  # append in flight
                    raise WALStreamError(
                        f"torn record at {seq}:{offset} below the tail"
                    )
                payload = data[start:end]
                if zlib.crc32(payload) != crc:
                    raise WALStreamError(
                        f"checksum failure at {seq}:{offset}"
                    )
                record = WALRecord(
                    position=WALPosition(seq, offset),
                    next_position=WALPosition(seq, end),
                    payload=payload,
                    crc=crc,
                )
                records.append(record)
                pos = record.next_position
                bytes_read += end - offset
                offset = end
            if not is_last:
                # Segment fully consumed and a newer one exists, so this
                # one is closed for good: advance the cursor past it.
                pos = WALPosition(ordered[idx + 1], 0)
        return records, pos

    def bytes_behind(self, position: WALPosition) -> int:
        """Bytes on disk at or after ``position`` (replication lag).

        Best-effort: segments may rotate underneath the stat calls, so
        treat the result as a gauge, not an exact count.
        """
        behind = 0
        for seg in segment_paths(self.directory):
            seq = _segment_seq(seg)
            if seq < position.segment:
                continue
            size = seg.stat().st_size
            if seq == position.segment:
                behind += max(0, size - position.offset)
            else:
                behind += size
        return behind


class WriteAheadLog:
    """Appender over a WAL directory.

    Args:
        directory: created if missing; holds the segment files.
        fsync: ``"always"`` / ``"interval"`` / ``"none"`` / ``"group"``.
        fsync_interval: appends between fsyncs under ``"interval"``.
        segment_bytes: rotation threshold for the active segment.
        group_queue_max: bound on records waiting for the group-commit
            flusher; writers block (backpressure) when it is full.

    A fresh appender always starts a new segment rather than appending
    to the previous one: the previous tail may hold bytes that were
    never fsynced, and mixing acknowledged records into the same file
    would entangle their durability.  Thread-safe: appends serialize on
    an internal lock (the tree above has its own locking).

    **Group commit** (``fsync="group"``).  Writers do not write or
    fsync at all: :meth:`_append` encodes the record, enqueues it under
    the short ``wal.group.queue`` lock, and waits on a
    :class:`CommitTicket`.  A dedicated flusher thread drains the whole
    queue, writes every drained record under ``wal.append`` (rotating
    as needed, one ``os.write`` per contiguous segment run), issues a
    **single fsync**, and only then resolves every ticket in the batch.
    No acknowledgement ever precedes its batch's fsync; a crash tears
    at most the tail of one batch, which replay drops exactly as it
    drops a torn single-record tail.  The ``submit_*`` variants return
    the ticket instead of waiting, which is what lets callers pipeline.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync: str = "always",
        fsync_interval: int = 64,
        segment_bytes: int = 4 * 1024 * 1024,
        group_queue_max: int = 8192,
        health: Optional[HealthMonitor] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise WALError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval <= 0:
            raise WALError(f"fsync_interval must be positive, got {fsync_interval}")
        if segment_bytes <= 0:
            raise WALError(f"segment_bytes must be positive, got {segment_bytes}")
        if group_queue_max <= 0:
            raise WALError(
                f"group_queue_max must be positive, got {group_queue_max}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Write-path health: transient I/O faults are retried per
        #: ``retry``; exhausted retries flip the monitor to READ_ONLY
        #: and surface as :class:`ReadOnlyError`.  A DurableTree shares
        #: its own monitor with the WAL so the whole stack degrades as
        #: one unit.
        self.health = (
            health
            if health is not None
            else HealthMonitor(name=f"wal:{self.directory.name}")
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.segment_bytes = segment_bytes
        self.group_queue_max = group_queue_max
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.rotations = 0
        #: Acks handed out before their bytes were fsynced ("interval" /
        #: "none" policies): the size of the durability loss window.
        self.unsynced_acks = 0
        #: Group-commit observability: batches flushed, records across
        #: all batches (mean = records / batches), and the largest batch.
        self.group_batches = 0
        self.group_batch_records = 0
        self.group_batch_max = 0
        self._lock = sanitizer.make_lock("wal.append")
        self._fh = None
        self._since_sync = 0
        self._active_size = 0
        existing = segment_paths(self.directory)
        self._seq = _segment_seq(existing[-1]) + 1 if existing else 1
        # Group-commit state.  The queue lock ("wal.group.queue" in
        # LOCK_ORDER) guards only enqueue/drain of `_group_pending`; the
        # flusher never holds it across the write+fsync, and writers
        # never hold it while waiting on a ticket.
        self._group_lock = sanitizer.make_lock("wal.group.queue")
        self._group_pending: list[tuple[bytes, CommitTicket]] = []
        self._group_wake = threading.Event()
        self._group_space = threading.Event()
        self._group_closing = False
        self._group_dead: Optional[BaseException] = None
        self._flusher: Optional[threading.Thread] = None
        if fsync == "group":
            self._flusher = threading.Thread(
                target=self._flusher_loop,
                name=f"wal-group-flusher-{self.directory.name}",
                daemon=True,
            )
            self._flusher.start()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def log_insert(self, key: Key, value: Any = None) -> None:
        """Log a single upsert."""
        self._append((OP_INSERT, key, value))

    def log_delete(self, key: Key) -> None:
        """Log a single delete."""
        self._append((OP_DELETE, key))

    def log_insert_many(self, items: list[tuple[Key, Any]]) -> None:
        """Log a batched upsert as one record (one fsync per batch)."""
        self._append((OP_INSERT_MANY, items))

    def log_epoch(self, epoch: int) -> None:
        """Stamp a replication epoch marker into the record stream.

        Carries no tree data; recovery skips it, replicas use it to
        track which primary's tenure the following records belong to.
        """
        self._append((OP_EPOCH, int(epoch)))

    # -- asynchronous (pipelined) appends ------------------------------

    def submit_insert(self, key: Key, value: Any = None) -> CommitTicket:
        """Enqueue an upsert record; the ticket resolves at durability."""
        return self._submit_op((OP_INSERT, key, value))

    def submit_delete(self, key: Key) -> CommitTicket:
        """Enqueue a delete record; the ticket resolves at durability."""
        return self._submit_op((OP_DELETE, key))

    def submit_insert_many(
        self, items: list[tuple[Key, Any]]
    ) -> CommitTicket:
        """Enqueue a batched upsert as one record (one queue slot)."""
        return self._submit_op((OP_INSERT_MANY, items))

    def _submit_op(self, op: tuple) -> CommitTicket:
        """Async append: a ticket that resolves when ``op`` is durable.

        Under ``fsync="group"`` the record is enqueued for the flusher
        and the ticket resolves after its batch's fsync.  Under every
        other policy the append happens synchronously right here (with
        that policy's durability semantics) and the ticket comes back
        already resolved — callers get one programming model for all
        policies.
        """
        if self.fsync_policy != "group":
            self._append(op)
            ticket = CommitTicket()
            ticket._resolve()
            return ticket
        return self._enqueue_group(op)

    def tail_position(self) -> WALPosition:
        """Position one past the last appended byte.

        Records appended after this call land at or after the returned
        position; a reader that has caught up to it has seen everything.
        """
        with self._lock:
            if self._fh is None:
                return WALPosition(self._seq, 0)
            return WALPosition(self._seq - 1, self._active_size)

    def _append(self, op: tuple) -> None:
        if self.fsync_policy == "group":
            # Synchronous call under group commit: enqueue, then block
            # until the batch carrying this record has been fsynced —
            # identical ack semantics to "always", amortized fsync cost.
            self._enqueue_group(op).wait()
            return
        payload = _encode(op)
        record = (
            _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        )
        with self._lock:
            failpoints.fire("wal.before_append")
            fh = self._fh
            if fh is None or self._active_size + len(record) > self.segment_bytes:
                fh = self._rotate_locked()
            self._write_locked(fh, record)
            self._active_size += len(record)
            self.records_appended += 1
            self.bytes_appended += len(record)
            self._since_sync += 1
            policy = self.fsync_policy
            if policy == "always":
                self._sync_locked(fh)
            elif policy == "interval":
                fh.flush()
                if self._since_sync >= self.fsync_interval:
                    self._sync_locked(fh)
                else:
                    # This ack is NOT durable yet: it rides the page
                    # cache until the interval's next fsync.
                    self.unsynced_acks += 1
            else:  # "none": every ack is unsynced by definition.
                self.unsynced_acks += 1
            failpoints.fire("wal.after_append")

    # ------------------------------------------------------------------
    # Group commit: writer side
    # ------------------------------------------------------------------

    def _enqueue_group(self, op: tuple) -> CommitTicket:
        """Encode ``op`` and hand it to the flusher; returns its ticket.

        Blocks (bounded backpressure) while the queue holds
        ``group_queue_max`` records.  The returned ticket resolves only
        after the batch containing this record has been fsynced.
        """
        payload = _encode(op)
        record = (
            _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        )
        failpoints.fire("wal.before_append")
        ticket = CommitTicket()
        while True:
            with self._group_lock:
                if self._group_dead is not None:
                    raise WALError(
                        "group-commit flusher is dead "
                        f"({self._group_dead!r}); the WAL accepts no "
                        "further appends"
                    )
                if self._group_closing:
                    raise WALError("WAL is closed")
                if len(self._group_pending) < self.group_queue_max:
                    self._group_pending.append((record, ticket))
                    break
                # Full: wait for the flusher to drain, then retry.  The
                # event is cleared before releasing the lock so a drain
                # that happens in between still wakes us.
                self._group_space.clear()
            self._group_space.wait(0.05)
        self._group_wake.set()
        failpoints.fire("wal.after_append")
        return ticket

    def _rotate_locked(self) -> IO[bytes]:
        """Close the active segment (fsynced) and open the next one."""
        if self._fh is not None:
            failpoints.fire("wal.before_rotate")
            self._sync_locked(self._fh)
            self._fh.close()
            self.rotations += 1
        path = (
            self.directory
            / f"{_SEGMENT_PREFIX}{self._seq:08d}{_SEGMENT_SUFFIX}"
        )
        self._seq += 1
        # Unbuffered: every record write is an os.write, so a simulated
        # crash can never leave bytes in a Python-level buffer that a
        # later GC flush would resurrect behind a repaired tail.
        self._fh = self.retry.run(
            lambda: open(path, "ab", buffering=0),
            monitor=self.health,
        )
        self._active_size = self._fh.tell()
        _fsync_dir(self.directory)
        return self._fh

    def _write_locked(self, fh: IO[bytes], data: bytes) -> None:  # holds: wal.append
        """Append ``data`` through the fault shim, retrying transients.

        A failed attempt may have torn a prefix of ``data`` onto the
        tail; the recovery hook rewinds to the last acknowledged
        boundary before the rewrite, or the retried copy would sit
        behind garbage and be invisible to replay.

        The first attempt is inlined (and the retry closures built only
        after it fails): this is every append's hot path, and the
        fault-free cost must stay at one shim call over a bare write.
        """
        try:
            iofaults.write("io.wal.write", fh, data)
        except OSError as exc:
            base = self._active_size

            def rewind() -> None:
                fh.truncate(base)

            self.retry.resume(
                lambda: iofaults.write("io.wal.write", fh, data),
                exc,
                monitor=self.health,
                recover=rewind,
            )
        else:
            self.health.record_success()

    def _sync_locked(self, fh: IO[bytes]) -> None:  # holds: wal.append
        fh.flush()
        failpoints.fire("wal.before_fsync")
        if sanitizer.enabled():
            sanitizer.note_fsync("wal.segment")
        try:
            iofaults.fsync("io.wal.fsync", fh)
        except OSError as exc:
            self.retry.resume(
                lambda: iofaults.fsync("io.wal.fsync", fh),
                exc,
                monitor=self.health,
            )
        else:
            self.health.record_success()
        self.syncs += 1
        self._since_sync = 0

    # ------------------------------------------------------------------
    # Group commit: flusher side
    # ------------------------------------------------------------------

    def _flusher_loop(self) -> None:
        """Drain → write → one fsync → release the whole batch.

        Runs on the dedicated flusher thread.  An ordinary exception
        (injected fsync failure, disk error) fails only that batch's
        tickets and the flusher keeps serving; a ``SimulatedCrash`` (or
        any other ``BaseException``) models process death — every
        pending ticket is failed with it and the flusher exits, leaving
        the WAL dead to further appends.  A :class:`ReadOnlyError`
        (write-path retries exhausted) additionally fails everything
        still queued *fast* — nobody should sit blocked behind a disk
        that has already degraded the tree to read-only.

        The whole loop body — drain and wake machinery included — runs
        under a last-resort guard: if anything outside ``_flush_batch``
        raises, every pending ticket settles with a descriptive
        :class:`WALDeadError` instead of leaving callers blocked in
        ``wait()``/``sync()`` against a silently dead thread.
        """
        batch: list[tuple[bytes, CommitTicket]] = []
        try:
            while True:
                self._group_wake.wait(0.05)
                self._group_wake.clear()
                with self._group_lock:
                    if self._group_dead is not None:
                        return  # abort(): a dead process flushes nothing
                    batch = self._group_pending
                    if batch:
                        self._group_pending = []
                    closing = self._group_closing
                self._group_space.set()
                if batch:
                    try:
                        self._flush_batch(batch)
                    except ReadOnlyError as exc:
                        self._settle(batch, exc)
                        self._fail_queued(exc)
                    except Exception as exc:
                        # Recoverable failure: nobody in this batch is
                        # acknowledged, but the flusher stays up.
                        self._settle(batch, exc)
                    except BaseException as exc:
                        self._settle(batch, exc)
                        self._group_die(exc)
                        return
                    batch = []
                    continue  # drain again before honoring `closing`
                if closing:
                    return
        except BaseException as exc:
            dead = WALDeadError(
                "group-commit flusher died outside a batch flush "
                f"({exc!r}); pending commits can never be acknowledged"
            )
            dead.__cause__ = exc
            self._settle(batch, dead)
            self._group_die(dead)

    @staticmethod
    def _settle(
        batch: list[tuple[bytes, CommitTicket]], exc: BaseException
    ) -> None:
        """Fail every ticket in ``batch`` with ``exc``."""
        for _, ticket in batch:
            ticket._fail(exc)

    def _fail_queued(self, exc: BaseException) -> None:
        """Fail-fast every ticket still waiting in the queue.

        Used when the write path degrades to read-only: the queued
        records can never become durable on this disk, so their writers
        learn it now rather than after a retry-deadline each.
        """
        with self._group_lock:
            leftover = self._group_pending
            self._group_pending = []
        for _, ticket in leftover:
            ticket._fail(exc)
        self._group_space.set()

    def _flush_batch(
        self, batch: list[tuple[bytes, CommitTicket]]
    ) -> None:
        """Write every record of ``batch``, fsync once, resolve all.

        Contiguous records (no rotation in between) are written with a
        single ``os.write``; empty records are :meth:`sync` barriers —
        they claim no bytes but share the batch's fsync.
        """
        with self._lock:
            fh = self._fh
            run: list[bytes] = []
            run_len = 0
            for record, _ in batch:
                if not record:
                    continue  # sync barrier
                if fh is None or (
                    self._active_size + run_len + len(record)
                    > self.segment_bytes
                ):
                    if run:
                        self._write_locked(fh, b"".join(run))
                        self._active_size += run_len
                        run = []
                        run_len = 0
                    fh = self._rotate_locked()
                run.append(record)
                run_len += len(record)
                self.records_appended += 1
                self.bytes_appended += len(record)
            if run:
                self._write_locked(fh, b"".join(run))
                self._active_size += run_len
            failpoints.fire("wal.group.pre_fsync")
            if fh is not None:
                self._sync_locked(fh)
            failpoints.fire("wal.group.post_fsync")
            self.group_batches += 1
            self.group_batch_records += len(batch)
            if len(batch) > self.group_batch_max:
                self.group_batch_max = len(batch)
        # Acks strictly after the fsync returned, outside every lock.
        failpoints.fire("wal.group.ack")
        for _, ticket in batch:
            ticket._resolve()

    def _group_die(self, exc: BaseException) -> None:
        """Mark the group pipeline dead and fail every queued ticket."""
        with self._group_lock:
            self._group_dead = exc
            leftover = self._group_pending
            self._group_pending = []
        for _, ticket in leftover:
            ticket._fail(exc)
        self._group_space.set()

    def _flusher_alive(self) -> bool:
        flusher = self._flusher
        return flusher is not None and flusher.is_alive()

    def abort(self) -> None:
        """Simulate process death for the group pipeline.

        Stops the flusher **without flushing**: queued records are
        dropped (their tickets fail) and nothing further reaches the
        filesystem — the on-disk state is exactly what a real crash at
        this moment would leave.  Used by crash tests and the chaos
        harness's ``kill()``; a no-op under non-group policies, where
        an inert appender already writes nothing on its own.
        """
        flusher = self._flusher
        if flusher is None:
            return
        self._group_die(WALError("WAL aborted (simulated process death)"))
        self._group_wake.set()
        if flusher.is_alive():
            flusher.join(timeout=5.0)
        self._flusher = None

    def sync(self) -> None:
        """Force an fsync covering everything appended so far.

        Under group commit this is a *barrier*: an empty record is
        enqueued and the call returns once the batch carrying it has
        been fsynced, so every record enqueued before the barrier is
        durable on return.
        """
        if self.fsync_policy == "group" and self._flusher_alive():
            ticket = CommitTicket()
            with self._group_lock:
                if self._group_dead is None and not self._group_closing:
                    self._group_pending.append((b"", ticket))
                else:
                    ticket = None
            if ticket is not None:
                self._group_wake.set()
                ticket.wait()
                return
        with self._lock:
            if self._fh is not None:
                self._sync_locked(self._fh)

    # ------------------------------------------------------------------
    # Truncation (checkpoint) and lifecycle
    # ------------------------------------------------------------------

    def truncate(self) -> int:
        """Delete every segment (the snapshot now covers their ops).

        Returns the number of segment files removed.  Deletion is
        oldest-first: a crash mid-truncate leaves a suffix of the log,
        and replaying a suffix of already-snapshotted ops is idempotent,
        whereas a surviving *prefix* with a missing middle would not be.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
                self._active_size = 0
            removed = 0
            for seg in segment_paths(self.directory):
                failpoints.fire("wal.before_truncate_segment")
                seg.unlink()
                removed += 1
            _fsync_dir(self.directory)
            return removed

    def close(self) -> None:
        """Flush, fsync, and close the active segment.

        Under group commit the flusher is drained first: records already
        enqueued are flushed (their tickets resolve), then the thread
        exits; appends racing with close fail with :class:`WALError`.
        """
        flusher = self._flusher
        if flusher is not None:
            with self._group_lock:
                self._group_closing = True
            self._group_wake.set()
            if flusher.is_alive():
                flusher.join(timeout=10.0)
            self._flusher = None
            # If the flusher died rather than drained, fail stragglers.
            self._group_die(WALError("WAL is closed"))
        with self._lock:
            if self._fh is not None:
                self._sync_locked(self._fh)
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        # A SimulatedCrash must not reach the close() cleanup: a dead
        # process flushes nothing.  Anything else — KeyboardInterrupt
        # included — leaves a live process that must still flush.
        if exc_info[0] is not None and issubclass(
            exc_info[0], failpoints.SimulatedCrash
        ):
            # Stop the group flusher *without* flushing: queued records
            # die with the process, exactly as a real crash would.
            self.abort()
            return
        self.close()
