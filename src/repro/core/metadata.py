"""Fast-path metadata (the paper's Table 1).

Every fast-path variant keeps a pointer to its fast-path leaf plus the
smallest and largest keys that leaf can accept; QuIT adds ``pole_prev``
bookkeeping and the consecutive-failure counter that drives the stale-pole
reset.  ``fp_path[]`` from Table 1 is realized through node parent pointers
(see DESIGN.md, S7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .node import Key, LeafNode


@dataclass
class FastPathState:
    """Mutable fast-path pointer + its admissible key range.

    Attributes:
        leaf: the current fast-path leaf (tail / lil / pole), or None when
            the fast path is uninitialized.
        low: smallest key the leaf can accept (its lower pivot bound);
            None means unbounded below.
        high: upper pivot bound (exclusive); None means unbounded above —
            which is always the case while the fast-path leaf is the tail.
    """

    leaf: Optional[LeafNode] = None
    low: Optional[Key] = None
    high: Optional[Key] = None

    def accepts(self, key: Key) -> bool:
        """Range test ``low <= key < high`` with open unbounded sides."""
        if self.leaf is None:
            return False
        if self.low is not None and key < self.low:
            return False
        if self.high is not None and key >= self.high:
            return False
        return True


@dataclass
class PoleState(FastPathState):
    """Fast-path state for the ``pole`` variants (pole-B+-tree and QuIT).

    Attributes:
        prev: the leaf preceding ``pole`` (IKR's ``pole_prev``); its live
            ``min_key``/``size`` stand in for the paper's
            ``pole_prev_min`` / ``pole_prev_size`` snapshots.
        next_candidate: the node most recently split off ``pole`` whose
            smallest key IKR classified as an outlier — the target of the
            "catching up to predicted outliers" rule (§4.2).
        fails: consecutive top-inserts since the last fast-path use; when
            it reaches ``T_R`` QuIT resets the pole (§4.3).
        last_fast_mark: value of the tree's fast-insert counter when
            ``fails`` was last reset — lets the miss path detect "a fast
            insert happened since my last miss" lazily, keeping the
            fast-insert path free of counter maintenance.
    """

    prev: Optional[LeafNode] = None
    next_candidate: Optional[LeafNode] = None
    fails: int = 0
    last_fast_mark: int = -1


# Table 1 inventory: metadata fields per index, used by exp_tab1.
METADATA_FIELDS: dict[str, tuple[str, ...]] = {
    "B+-tree": ("root_id", "head_id", "tail_id"),
    "tail-B+-tree": (
        "root_id", "head_id", "tail_id",
        "fp_path[]", "fp_size", "fp_min",
    ),
    "lil-B+-tree": (
        "root_id", "head_id", "tail_id",
        "fp_path[]", "fp_size", "fp_min", "fp_max", "fp_id",
    ),
    "QuIT": (
        "root_id", "head_id", "tail_id",
        "fp_path[]", "fp_size", "fp_min", "fp_max", "fp_id",
        "pole_prev_size", "pole_prev_min", "pole_prev_id", "pole_fails",
    ),
}

# Approximate per-field sizes (bytes) used for the "< 20 bytes of
# additional metadata" claim: ids/pointers 8B, sizes 4B, keys 4B; the
# fail counter saturates at T_R <= 22, so 2 bytes suffice.
_FIELD_BYTES = {
    "root_id": 8, "head_id": 8, "tail_id": 8, "fp_path[]": 8, "fp_size": 4,
    "fp_min": 4, "fp_max": 4, "fp_id": 8, "pole_prev_size": 4,
    "pole_prev_min": 4, "pole_prev_id": 8, "pole_fails": 2,
}


def metadata_bytes(index_name: str) -> int:
    """Total metadata bytes for ``index_name`` per Table 1."""
    fields = METADATA_FIELDS[index_name]
    return sum(_FIELD_BYTES[f] for f in fields)


def extra_metadata_bytes(index_name: str, baseline: str = "lil-B+-tree") -> int:
    """Additional metadata of ``index_name`` over ``baseline``.

    The paper highlights that QuIT needs < 20 bytes beyond the lil
    variant's fast-path state.
    """
    return metadata_bytes(index_name) - metadata_bytes(baseline)
