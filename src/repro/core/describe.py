"""Operational introspection: a one-call health report for any index.

``describe(tree)`` gathers the numbers an operator would want on a
dashboard — size, height, node counts, occupancy distribution, memory,
fast-path state and utilization — and ``format_description`` renders
them as text (used by the examples and handy in a REPL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis.memory import OccupancyHistogram, occupancy_histogram
from .bptree import BPlusTree
from .fastpath import FastPathTree


@dataclass
class TreeDescription:
    """Snapshot of an index's structural and operational state."""

    name: str
    entries: int
    height: int
    leaf_count: int
    internal_count: int
    avg_occupancy: float
    min_occupancy: float
    max_occupancy: float
    memory_bytes: int
    occupancy_histogram: OccupancyHistogram
    fast_insert_fraction: Optional[float] = None
    fast_path_leaf_size: Optional[int] = None
    fast_path_bounds: Optional[tuple[Any, Any]] = None
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def bytes_per_entry(self) -> float:
        """Footprint divided by live entries (inf when empty)."""
        if not self.entries:
            return float("inf")
        return self.memory_bytes / self.entries


def describe(tree: BPlusTree) -> TreeDescription:
    """Collect a :class:`TreeDescription` for ``tree``."""
    occ = tree.occupancy()
    desc = TreeDescription(
        name=tree.name,
        entries=len(tree),
        height=tree.height,
        leaf_count=occ.leaf_count,
        internal_count=occ.internal_count,
        avg_occupancy=occ.avg_occupancy,
        min_occupancy=occ.min_occupancy,
        max_occupancy=occ.max_occupancy,
        memory_bytes=tree.memory_bytes(),
        occupancy_histogram=occupancy_histogram(tree),
        counters=tree.stats.as_dict(),
    )
    if isinstance(tree, FastPathTree):
        desc.fast_insert_fraction = tree.stats.fast_insert_fraction
        leaf = tree.fast_path_leaf
        desc.fast_path_leaf_size = leaf.size if leaf is not None else None
        desc.fast_path_bounds = tree.fast_path_bounds
    return desc


def format_description(desc: TreeDescription) -> str:
    """Render a description as an aligned text report."""
    lines = [
        f"{desc.name}: {desc.entries:,} entries, height {desc.height}",
        f"  nodes: {desc.leaf_count:,} leaves + "
        f"{desc.internal_count:,} internal "
        f"({desc.memory_bytes / 1024:,.0f} KB, "
        f"{desc.bytes_per_entry:.1f} B/entry)",
        f"  leaf occupancy: avg {desc.avg_occupancy:.1%} "
        f"(min {desc.min_occupancy:.1%}, max {desc.max_occupancy:.1%})",
    ]
    hist = desc.occupancy_histogram
    if hist.total:
        bar_max = max(hist.counts) or 1
        for edge, count in zip(hist.edges, hist.counts):
            bar = "#" * round(20 * count / bar_max)
            lines.append(f"    <={edge:4.0%} {count:6d} {bar}")
    if desc.fast_insert_fraction is not None:
        low, high = desc.fast_path_bounds or (None, None)
        lines.append(
            f"  fast path: {desc.fast_insert_fraction:.1%} of inserts, "
            f"leaf size {desc.fast_path_leaf_size}, "
            f"range [{low!r}, {high!r})"
        )
    busy = {
        k: v for k, v in desc.counters.items()
        if v and k not in ("node_accesses", "insert_traversal_nodes")
    }
    if busy:
        lines.append(
            "  counters: " + ", ".join(
                f"{k}={v:,}" for k, v in sorted(busy.items())
            )
        )
    return "\n".join(lines)
