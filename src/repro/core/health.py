"""Failure taxonomy, retry/backoff, and the durability health machine.

The storage stack classifies every ``OSError`` it meets on the write
path into exactly two buckets:

* **transient** (``EIO``, ``ENOSPC``, ``EAGAIN``, ``EINTR``) — the disk
  may come back; retried with capped exponential backoff under a
  deadline (:class:`RetryPolicy`);
* **permanent** (everything else — ``EROFS``, ``EBADF``, …) — retrying
  is pointless; escalated immediately.

:class:`HealthMonitor` is the operator-visible state machine fed by
those outcomes::

    HEALTHY --retry needed--> DEGRADED --retries exhausted--> READ_ONLY
       ^                         |                               |
       |                         +--write succeeded--------------+-> (restore()
       +---------------------------- explicit heal ------------------ after a
                                                                       repair)
    any state --permanent fault--> FAILED   (terminal)

``READ_ONLY`` is a *serving* state: reads and ``range_iter`` keep
working off the in-memory tree, mutations raise :class:`ReadOnlyError`,
and outstanding group-commit tickets fail fast with the same error.  A
successful checkpoint (which proves the disk can take a full snapshot
again) restores ``HEALTHY``; ``FAILED`` is terminal.

The monitor's lock (``"health"`` in the sanitizer's ``LOCK_ORDER``) is
only ever held for the state flip itself — never across I/O.
"""

from __future__ import annotations

import enum
import errno
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.concurrency import sanitizer

T = TypeVar("T")

#: errno values worth retrying: the device said "not right now", not
#: "never".  ENOSPC is transient by design — operators free space, and
#: a store that marks itself FAILED over a full disk can never heal.
TRANSIENT_ERRNOS: frozenset[int] = frozenset(
    {errno.EIO, errno.ENOSPC, errno.EAGAIN, errno.EINTR}
)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is an ``OSError`` worth retrying."""
    return isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS


class HealthState(enum.Enum):
    """Operator-visible durability health, worst first wins."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"      # retries happening, writes still landing
    READ_ONLY = "read_only"    # write path gave up; reads keep serving
    FAILED = "failed"          # permanent fault; terminal


class ReadOnlyError(RuntimeError):
    """A mutation was refused (or abandoned) because the write path is
    degraded to read-only or failed.

    Reads keep serving; the acked history is intact — this error means
    the *new* write was never acknowledged, not that data was lost.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with an overall deadline.

    ``attempts`` bounds the tries, ``deadline`` (seconds) bounds the
    total wall clock including sleeps; whichever trips first ends the
    retry loop.  Delays double from ``base_delay`` up to ``max_delay``.
    """

    attempts: int = 5
    base_delay: float = 0.001
    max_delay: float = 0.05
    deadline: float = 1.0

    def run(
        self,
        fn: Callable[[], T],
        *,
        monitor: Optional["HealthMonitor"] = None,
        recover: Optional[Callable[[], None]] = None,
    ) -> T:
        """Run ``fn``, retrying transient ``OSError``s per this policy.

        ``recover`` (best effort) runs after every transient failure —
        the WAL uses it to rewind a torn tail before rewriting.  On a
        permanent fault the monitor (if any) goes ``FAILED``; on
        exhausted transient retries it goes ``READ_ONLY``; both raise
        :class:`ReadOnlyError` chained to the underlying ``OSError``.

        The first attempt is the hot path — this method sits on every
        WAL append — so it runs with zero setup: no clock read, no loop
        state.  All retry machinery lives in :meth:`_run_slow`.
        """
        try:
            result = fn()
        except OSError as exc:
            return self.resume(fn, exc, monitor=monitor, recover=recover)
        if monitor is not None:
            monitor.record_success()
        return result

    def resume(
        self,
        fn: Callable[[], T],
        first: OSError,
        *,
        monitor: Optional["HealthMonitor"] = None,
        recover: Optional[Callable[[], None]] = None,
    ) -> T:
        """Retry loop for a first attempt the *caller* already made.

        Hot-path callers (the WAL append) inline their first attempt so
        the success case pays for no closures and no policy machinery;
        on failure they hand the exception here and the loop proceeds
        exactly as :meth:`run` would have.  ``first`` counts as attempt
        1; the deadline clock starts here — it bounds time spent
        *retrying*, which is what it was for.
        """
        start = time.monotonic()
        delay = self.base_delay
        attempts = max(1, self.attempts)
        last = first
        attempt = 1
        while True:
            if not is_transient(last):
                if monitor is not None:
                    monitor.mark_failed(last)
                raise ReadOnlyError(
                    f"permanent I/O failure "
                    f"([Errno {last.errno}] {last.strerror}): "
                    f"not retrying"
                ) from last
            if monitor is not None:
                monitor.record_retry(last)
            if recover is not None:
                try:
                    recover()
                except OSError:
                    pass  # best effort; the retry will tell
            if (
                attempt >= attempts
                or time.monotonic() - start >= self.deadline
            ):
                break
            time.sleep(delay)
            delay = min(delay * 2.0, self.max_delay)
            attempt += 1
            try:
                result = fn()
            except OSError as exc:
                last = exc
                continue
            if monitor is not None:
                monitor.record_success()
            return result
        if monitor is not None:
            monitor.mark_read_only(last)
        raise ReadOnlyError(
            f"transient I/O failure persisted past {self.attempts} "
            f"attempt(s) / {self.deadline:.3f}s deadline; "
            f"degrading to read-only (last: [Errno "
            f"{last.errno if last else '?'}] "
            f"{last.strerror if last else '?'})"
        ) from last


class HealthMonitor:
    """Thread-safe durability health state machine plus counters.

    Shared between a :class:`~repro.core.durable.DurableTree` and its
    WAL so that a retry exhausted anywhere on the write path flips the
    whole tree, and mirrored into ``TreeStats`` as the ``health_*``
    counters.
    """

    def __init__(self, name: str = "durable") -> None:
        self.name = name
        self._lock = sanitizer.make_lock("health")
        self._state = HealthState.HEALTHY
        self._last_error: Optional[BaseException] = None
        self.retries = 0
        self.degradations = 0
        self.read_only_trips = 0
        self.recoveries = 0

    @property
    def state(self) -> HealthState:
        """Current state (lock-free read: a stale answer is benign —
        the WAL itself raises if a write slips past a flip)."""
        return self._state

    @property
    def writable(self) -> bool:
        return self._state in (HealthState.HEALTHY, HealthState.DEGRADED)

    @property
    def last_error(self) -> Optional[BaseException]:
        return self._last_error

    def record_retry(self, exc: BaseException) -> None:
        """A transient write-path fault is being retried."""
        with self._lock:
            self.retries += 1
            self._last_error = exc
            if self._state is HealthState.HEALTHY:
                self._state = HealthState.DEGRADED
                self.degradations += 1

    def record_success(self) -> None:
        """A write landed: a degraded disk has come back.

        Called on every successful append, so the HEALTHY case must not
        take the lock — the unlocked read can at worst miss a flip to
        DEGRADED that a concurrent retry is making, and the next
        success repairs that.  The flip back is re-checked under the
        lock.
        """
        if self._state is not HealthState.DEGRADED:
            return
        with self._lock:
            if self._state is HealthState.DEGRADED:
                self._state = HealthState.HEALTHY

    def mark_read_only(self, exc: Optional[BaseException]) -> None:
        """Transient retries exhausted: stop taking writes, keep reads."""
        with self._lock:
            if self._state is HealthState.FAILED:
                return
            if exc is not None:
                self._last_error = exc
            if self._state is not HealthState.READ_ONLY:
                self._state = HealthState.READ_ONLY
                self.read_only_trips += 1

    def mark_failed(self, exc: BaseException) -> None:
        """Permanent fault: terminal."""
        with self._lock:
            self._last_error = exc
            self._state = HealthState.FAILED

    def restore(self) -> bool:
        """Return to ``HEALTHY`` after a successful repair (e.g. a
        checkpoint that proved the disk writable again).  ``FAILED`` is
        terminal: returns False and stays put."""
        with self._lock:
            if self._state is HealthState.FAILED:
                return False
            healed = self._state in (
                HealthState.READ_ONLY,
                HealthState.DEGRADED,
            )
            self._state = HealthState.HEALTHY
            if healed:
                self.recoveries += 1
            return True

    def require_writable(self) -> None:
        """Raise :class:`ReadOnlyError` unless mutations are allowed.

        Lock-free on purpose: this sits in front of every mutation, and
        a racy read only delays the refusal by one op — the write path
        behind it re-raises anyway.
        """
        state = self._state
        if state is HealthState.READ_ONLY or state is HealthState.FAILED:
            exc = self._last_error
            raise ReadOnlyError(
                f"{self.name!r} is {state.value}: mutations refused, "
                f"reads still serving"
                + (f" (cause: {exc})" if exc is not None else "")
            )

    def snapshot(self) -> dict[str, object]:
        """Operator-facing view (CLI/status plumbing)."""
        with self._lock:
            return {
                "state": self._state.value,
                "retries": self.retries,
                "degradations": self.degradations,
                "read_only_trips": self.read_only_trips,
                "recoveries": self.recoveries,
                "last_error": (
                    str(self._last_error)
                    if self._last_error is not None
                    else None
                ),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HealthMonitor({self.name!r}, state={self._state.value})"
