"""Node structures shared by every tree variant.

The trees in this package follow the textbook B+-tree layout the paper
builds on: internal nodes hold pivot keys and child pointers, leaf nodes
hold the actual entries and are chained into a doubly-linked list for range
scans.  Nodes carry parent pointers; DESIGN.md (system S7) documents that
this realizes the paper's ``fp_path[]`` metadata — a split reaches every
ancestor of the fast-path leaf through the parent chain instead of a cached
root-to-leaf path.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from typing import Any, Iterator, Optional

from .batch import merge_run

_node_ids = itertools.count(1)

Key = Any


class Node:
    """Common base for leaf and internal nodes."""

    __slots__ = ("keys", "parent", "node_id")

    def __init__(self) -> None:
        self.keys: list[Key] = []
        self.parent: Optional["InternalNode"] = None
        self.node_id: int = next(_node_ids)

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (overridden by subclasses)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Leaf" if self.is_leaf else "Internal"
        head = self.keys[:4]
        ell = "..." if len(self.keys) > 4 else ""
        return f"<{kind}#{self.node_id} n={len(self.keys)} keys={head}{ell}>"


class LeafNode(Node):
    """A leaf node: parallel sorted ``keys`` / ``values`` lists plus chain
    links to the neighboring leaves."""

    __slots__ = ("values", "next", "prev")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[Any] = []
        self.next: Optional["LeafNode"] = None
        self.prev: Optional["LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        """Always True."""
        return True

    @property
    def size(self) -> int:
        """Number of entries currently stored."""
        return len(self.keys)

    @property
    def min_key(self) -> Key:
        """Smallest key in the leaf (the leaf must be non-empty)."""
        return self.keys[0]

    @property
    def max_key(self) -> Key:
        """Largest key in the leaf (the leaf must be non-empty)."""
        return self.keys[-1]

    def find(self, key: Key) -> Optional[int]:
        """Index of ``key`` in this leaf, or None if absent."""
        idx = bisect_left(self.keys, key)
        if idx < len(self.keys) and self.keys[idx] == key:
            return idx
        return None

    def insert_entry(self, key: Key, value: Any) -> bool:
        """Insert ``(key, value)`` preserving sort order.

        Returns True when a new entry was added, False when an existing
        key's value was overwritten (upsert semantics).
        """
        keys = self.keys
        if not keys or key > keys[-1]:
            # The in-order append case the fast paths live for.
            keys.append(key)
            self.values.append(value)
            return True
        idx = bisect_left(keys, key)
        if keys[idx] == key:
            self.values[idx] = value
            return False
        keys.insert(idx, key)
        self.values.insert(idx, value)
        return True

    def append_entry(self, key: Key, value: Any) -> None:
        """Append an entry known to be greater than every current key."""
        self.keys.append(key)
        self.values.append(value)

    def remove_at(self, idx: int) -> tuple[Key, Any]:
        """Remove and return the entry at ``idx``."""
        return self.keys.pop(idx), self.values.pop(idx)

    def apply_run(self, run_keys: list[Key], run_values: list[Any]) -> int:
        """Place a strictly-increasing run into this leaf in one motion.

        This is the batch-ingest analogue of :meth:`insert_entry`: instead
        of N bisects and N ``list.insert`` calls, the run is located with
        at most two bisects and placed with one slice assignment (or a
        plain ``extend`` for the in-order append case the fast paths live
        for).  Existing keys are upserted — the run's value wins.

        The caller is responsible for capacity: the leaf may grow by up to
        ``len(run_keys)`` entries.  Returns the number of new keys added.
        """
        keys = self.keys
        if not keys or run_keys[0] > keys[-1]:
            keys.extend(run_keys)
            self.values.extend(run_values)
            return len(run_keys)
        lo = bisect_left(keys, run_keys[0])
        hi = bisect_right(keys, run_keys[-1], lo)
        if lo == hi:
            # The run nests between two adjacent existing keys: pure
            # slice insertion, no merge needed.
            keys[lo:lo] = run_keys
            self.values[lo:lo] = run_values
            return len(run_keys)
        merged_keys, merged_vals, added = merge_run(
            keys[lo:hi], self.values[lo:hi], run_keys, run_values
        )
        keys[lo:hi] = merged_keys
        self.values[lo:hi] = merged_vals
        return added

    def position_first_greater(self, bound: Key) -> int:
        """Index of the first key strictly greater than ``bound``.

        This is the ``leaf.position(...)`` primitive of Alg. 2: everything
        at or beyond the returned index is classified as an outlier by IKR.
        """
        return bisect_right(self.keys, bound)

    def split_at(self, pos: int) -> tuple["LeafNode", Key]:
        """Split this leaf, moving entries from ``pos`` onward into a new
        right sibling.  Returns ``(new_right, split_key)``.

        ``pos`` must leave both halves non-empty.  Chain links are fixed
        here; the caller is responsible for registering the new node with
        the parent.
        """
        if not 0 < pos < len(self.keys):
            raise ValueError(
                f"split position {pos} out of range for leaf of "
                f"size {len(self.keys)}"
            )
        right = LeafNode()
        right.keys = self.keys[pos:]
        right.values = self.values[pos:]
        del self.keys[pos:]
        del self.values[pos:]
        right.next = self.next
        if right.next is not None:
            right.next.prev = right
        right.prev = self
        self.next = right
        right.parent = self.parent
        return right, right.keys[0]

    def items(self) -> Iterator[tuple[Key, Any]]:
        """Iterate the leaf's entries in key order."""
        return zip(self.keys, self.values)


class InternalNode(Node):
    """An internal node: ``len(children) == len(keys) + 1``.

    ``children[i]`` roots the subtree of keys in ``[keys[i-1], keys[i])``
    (with the open ends at the boundaries).
    """

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    @property
    def is_leaf(self) -> bool:
        """Always False."""
        return False

    @property
    def size(self) -> int:
        """Number of children."""
        return len(self.children)

    def child_index_for(self, key: Key) -> int:
        """Index of the child whose range contains ``key``."""
        return bisect_right(self.keys, key)

    def index_of_child(self, child: Node, stats: Optional[Any] = None) -> int:
        """Position of ``child`` in this node's child list.

        Seeds the search by bisecting on the child's smallest key, so the
        common case costs O(log fan-out) instead of a linear scan; empty
        children (possible under QuIT's lazy delete) fall back to a scan.
        When the caller passes its ``TreeStats`` the fallback is counted
        in ``stats.index_fallback_scans`` so O(fan-out) regressions are
        visible instead of silently absorbed.
        """
        children = self.children
        if child.keys:
            idx = bisect_right(self.keys, child.keys[0])
            # The seed can be off by the pivot/duplicate boundary; probe
            # outward before conceding to a scan.
            for probe in (idx, idx - 1, idx + 1):
                if 0 <= probe < len(children) and children[probe] is child:
                    return probe
        if stats is not None:
            stats.index_fallback_scans += 1
        for idx, candidate in enumerate(children):
            if candidate is child:
                return idx
        raise ValueError(f"{child!r} is not a child of {self!r}")

    def insert_child(self, split_key: Key, right: Node) -> None:
        """Register a split: add ``split_key`` and the new ``right`` child
        immediately after ``right``'s left sibling."""
        idx = bisect_right(self.keys, split_key)
        self.keys.insert(idx, split_key)
        self.children.insert(idx + 1, right)
        right.parent = self

    def split(self) -> tuple["InternalNode", Key]:
        """Split this internal node in half.

        Returns ``(new_right, push_up_key)`` where ``push_up_key`` moves to
        the parent (it is *not* retained in either half, matching the
        textbook internal split).
        """
        mid = len(self.keys) // 2
        push_up = self.keys[mid]
        right = InternalNode()
        right.keys = self.keys[mid + 1:]
        right.children = self.children[mid + 1:]
        del self.keys[mid:]
        del self.children[mid + 1:]
        for child in right.children:
            child.parent = right
        right.parent = self.parent
        return right, push_up
