"""Node structures shared by every tree variant.

The trees in this package follow the textbook B+-tree layout the paper
builds on: internal nodes hold pivot keys and child pointers, leaf nodes
hold the actual entries and are chained into a doubly-linked list for range
scans.  Nodes carry parent pointers; DESIGN.md (system S7) documents that
this realizes the paper's ``fp_path[]`` metadata — a split reaches every
ancestor of the fast-path leaf through the parent chain instead of a cached
root-to-leaf path.

Two leaf layouts share one API (DESIGN.md, "Gapped leaf layout"):

* :class:`LeafNode` — the classic layout: compact parallel ``keys`` /
  ``values`` lists, every mid-leaf insert shifts the tail with
  ``list.insert``.
* :class:`GappedLeafNode` — a gapped, slot-array layout: entries occupy
  the prefix ``[0, fill)`` of pre-sized slot arrays whose tail slots form
  a gap pool.  An in-order insert *claims* the next gap slot with a plain
  store instead of growing the list, and leaf rebuilds (splits, run
  overflows, bulk loads) re-establish the pool.  For uniform ``int`` /
  ``float`` key domains the key slots are backed by a typed ``array``
  (8-byte machine values instead of boxed objects), auto-detected at
  rebuild time with a clean demotion back to object lists when a
  non-conforming key shows up.

Shared read paths use :meth:`LeafNode.view` — ``(keys, values, n)`` with
entries live at indices ``[0, n)`` — so one implementation serves both
layouts without copying.
"""

from __future__ import annotations

import itertools
from array import array
from bisect import bisect_left, bisect_right
from typing import Any, Iterator, Optional, Sequence, Union

from .batch import merge_run
from .stats import TreeStats

_node_ids = itertools.count(1)

Key = Any

#: Slot storage for gapped keys: an object list or a typed array.
KeySlots = Union["list[Key]", "array[int]", "array[float]"]

#: Sink for layout counters of leaves constructed outside a tree (unit
#: tests, ad-hoc scripts).  Trees pass their own ``TreeStats`` instead.
_DETACHED_STATS = TreeStats()


class Node:
    """Common base for leaf and internal nodes."""

    __slots__ = ("parent", "node_id")

    #: Sorted pivot keys (internal) or entry keys (leaf).  List-layout
    #: nodes store a plain list; :class:`GappedLeafNode` serves a packed
    #: copy of its live slot prefix through a property.
    keys: list[Key]

    def __init__(self) -> None:
        self.parent: Optional["InternalNode"] = None
        self.node_id: int = next(_node_ids)

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (overridden by subclasses)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Leaf" if self.is_leaf else "Internal"
        head = self.keys[:4]
        ell = "..." if len(self.keys) > 4 else ""
        return f"<{kind}#{self.node_id} n={len(self.keys)} keys={head}{ell}>"


class LeafNode(Node):
    """A leaf node: parallel sorted ``keys`` / ``values`` lists plus chain
    links to the neighboring leaves."""

    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self) -> None:
        super().__init__()
        self.keys: list[Key] = []
        self.values: list[Any] = []
        self.next: Optional["LeafNode"] = None
        self.prev: Optional["LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        """Always True."""
        return True

    @property
    def size(self) -> int:
        """Number of entries currently stored."""
        return len(self.keys)

    @property
    def min_key(self) -> Key:
        """Smallest key in the leaf (the leaf must be non-empty)."""
        return self.keys[0]

    @property
    def max_key(self) -> Key:
        """Largest key in the leaf (the leaf must be non-empty)."""
        return self.keys[-1]

    def view(self) -> tuple[Sequence[Key], Sequence[Any], int]:
        """Zero-copy read view ``(keys, values, n)``.

        Entries are live at indices ``[0, n)``; anything beyond ``n`` is
        layout-private and must not be read.  Callers must treat the
        sequences as immutable.
        """
        keys = self.keys
        return keys, self.values, len(keys)

    def find(self, key: Key) -> Optional[int]:
        """Index of ``key`` in this leaf, or None if absent."""
        idx = bisect_left(self.keys, key)
        if idx < len(self.keys) and self.keys[idx] == key:
            return idx
        return None

    def value_at(self, idx: int) -> Any:
        """Value stored at entry index ``idx`` (as returned by
        :meth:`find`), without materializing the entry lists."""
        return self.values[idx]

    def insert_entry(self, key: Key, value: Any) -> bool:
        """Insert ``(key, value)`` preserving sort order.

        Returns True when a new entry was added, False when an existing
        key's value was overwritten (upsert semantics).
        """
        keys = self.keys
        if not keys or key > keys[-1]:
            # The in-order append case the fast paths live for.
            keys.append(key)
            self.values.append(value)
            return True
        idx = bisect_left(keys, key)
        if keys[idx] == key:
            self.values[idx] = value
            return False
        keys.insert(idx, key)
        self.values.insert(idx, value)
        return True

    def append_entry(self, key: Key, value: Any) -> None:
        """Append an entry known to be greater than every current key."""
        self.keys.append(key)
        self.values.append(value)

    def extend_entries(
        self, run_keys: Sequence[Key], run_values: Sequence[Any]
    ) -> None:
        """Append entries known to be greater than every current key."""
        self.keys.extend(run_keys)
        self.values.extend(run_values)

    def drop_prefix(self, count: int) -> None:
        """Delete the first ``count`` entries."""
        del self.keys[:count]
        del self.values[:count]

    def remove_at(self, idx: int) -> tuple[Key, Any]:
        """Remove and return the entry at ``idx``."""
        return self.keys.pop(idx), self.values.pop(idx)

    def apply_run(self, run_keys: list[Key], run_values: list[Any]) -> int:
        """Place a strictly-increasing run into this leaf in one motion.

        This is the batch-ingest analogue of :meth:`insert_entry`: instead
        of N bisects and N ``list.insert`` calls, the run is located with
        at most two bisects and placed with one slice assignment (or a
        plain ``extend`` for the in-order append case the fast paths live
        for).  Existing keys are upserted — the run's value wins.

        The caller is responsible for capacity: the leaf may grow by up to
        ``len(run_keys)`` entries.  Returns the number of new keys added.
        """
        keys = self.keys
        if not keys or run_keys[0] > keys[-1]:
            keys.extend(run_keys)
            self.values.extend(run_values)
            return len(run_keys)
        lo = bisect_left(keys, run_keys[0])
        hi = bisect_right(keys, run_keys[-1], lo)
        if lo == hi:
            # The run nests between two adjacent existing keys: pure
            # slice insertion, no merge needed.
            keys[lo:lo] = run_keys
            self.values[lo:lo] = run_values
            return len(run_keys)
        merged_keys, merged_vals, added = merge_run(
            keys[lo:hi], self.values[lo:hi], run_keys, run_values
        )
        keys[lo:hi] = merged_keys
        self.values[lo:hi] = merged_vals
        return added

    def position_first_greater(self, bound: Key) -> int:
        """Index of the first key strictly greater than ``bound``.

        This is the ``leaf.position(...)`` primitive of Alg. 2: everything
        at or beyond the returned index is classified as an outlier by IKR.
        """
        return bisect_right(self.keys, bound)

    def _make_sibling(self) -> "LeafNode":
        """A new, empty leaf of this leaf's layout (split helper)."""
        return LeafNode()

    def split_at(self, pos: int) -> tuple["LeafNode", Key]:
        """Split this leaf, moving entries from ``pos`` onward into a new
        right sibling.  Returns ``(new_right, split_key)``.

        ``pos`` must leave both halves non-empty.  Chain links are fixed
        here; the caller is responsible for registering the new node with
        the parent.
        """
        if not 0 < pos < self.size:
            raise ValueError(
                f"split position {pos} out of range for leaf of "
                f"size {self.size}"
            )
        right = self._make_sibling()
        self._move_tail_into(right, pos)
        right.next = self.next
        if right.next is not None:
            right.next.prev = right
        right.prev = self
        self.next = right
        right.parent = self.parent
        return right, right.min_key

    def _move_tail_into(self, right: "LeafNode", pos: int) -> None:
        """Move entries from ``pos`` onward into the fresh leaf ``right``."""
        right.keys = self.keys[pos:]
        right.values = self.values[pos:]
        del self.keys[pos:]
        del self.values[pos:]

    def items(self) -> Iterator[tuple[Key, Any]]:
        """Iterate the leaf's entries in key order."""
        return zip(self.keys, self.values)


class GappedLeafNode(LeafNode):
    """Gapped, slot-array leaf layout (BS-tree style) behind the
    :class:`LeafNode` API, with a *migrating gap cursor*.

    The slab holds ``fill`` live entries plus ``len(skeys) - fill`` gap
    slots.  The gap slots sit **together at the last insertion point**:
    entries occupy ``[0, gap)`` and ``[gap + glen, len(skeys))`` with the
    gap at ``[gap, gap + glen)`` (``glen = len(skeys) - fill``).  Gap
    slots hold junk (for typed arrays: a repeated live key, so every slot
    stays typecode-valid).  Invariants:

    * the live entries, read around the gap, are strictly increasing and
      ``len(svals) == len(skeys)``;
    * ``0 <= gap <= fill``; ``gap == fill`` means the gap pool is at the
      tail and the live entries are contiguous in ``[0, fill)``
      (the *compacted* state every read and rebuild operates in);
    * ``len(skeys) >= capacity`` at all times (the constructor pre-sizes
      the slab and every rebuild re-pads).

    An insert that lands exactly at the cursor — the overwhelmingly
    common case on near-sorted streams, where each leaf absorbs an
    ascending run just left of its displaced tail keys — is **two
    comparisons and two slot stores**: no bisect, no shift.  An insert
    elsewhere closes the gap (one C-level slice move), bisects, and
    re-opens the gap at the new position, so the cursor migrates to
    wherever the run is landing.  Reads compact lazily the same way;
    rebuilds (:meth:`split_at`, run overflows, bulk loads) repack the
    live prefix and restore the pool — the layout's "redistribute".

    When every key being packed is a plain ``int`` (within int64) or a
    plain ``float``, the key slab is a typed ``array('q')``/``array('d')``
    — 8 bytes per slot instead of a pointer to a boxed object.  A later
    key that does not fit (other type, overflow) demotes the slab to an
    object list in place; ``values`` slots are always object lists.
    """

    __slots__ = ("skeys", "svals", "fill", "gap", "gap_hi", "stats")

    def __init__(
        self, capacity: int = 0, stats: Optional[TreeStats] = None
    ) -> None:
        Node.__init__(self)
        self.next = None
        self.prev = None
        self.fill: int = 0
        self.gap: int = 0
        # Cached first live key on the far side of the gap (None when the
        # gap sits at the tail).  The cursor-hit check is then two
        # comparisons — ``skeys[gap - 1] < key < gap_hi`` — without
        # computing the gap's far edge (``len(skeys) - fill + gap``) on
        # every insert.  The near edge needs no cache: ``skeys[gap - 1]``
        # is by construction the last key claimed.
        self.gap_hi: Optional[Key] = None
        self.skeys: KeySlots = [None] * capacity
        self.svals: list[Any] = [None] * capacity
        self.stats: TreeStats = stats if stats is not None else _DETACHED_STATS

    def _compact(self) -> None:
        """Close a migrated gap: slide the suffix entries down so the
        live entries are contiguous in ``[0, fill)`` and the gap pool
        returns to the tail (one C-level slice move per array)."""
        gap = self.gap
        fill = self.fill
        if gap == fill:
            return
        total = len(self.skeys)
        glen = total - fill
        skeys = self.skeys
        skeys[gap:fill] = skeys[gap + glen : total]
        svals = self.svals
        svals[gap:fill] = svals[gap + glen : total]
        # The pool tail keeps duplicate refs of the entries just slid
        # down rather than being re-padded with None: at most a slab's
        # worth of transient pins per leaf, overwritten by later claims.
        self.gap = fill
        self.gap_hi = None

    # ------------------------------------------------------------------
    # Storage bridge: the inherited attribute API keeps working
    # ------------------------------------------------------------------

    @property  # type: ignore[override]
    def keys(self) -> list[Key]:
        """Packed copy of the live keys (read-only bridge for cold paths;
        hot paths use :meth:`view` or the slot arrays directly)."""
        if self.gap != self.fill:
            self._compact()
        live = self.skeys[: self.fill]
        return live if isinstance(live, list) else live.tolist()

    @keys.setter
    def keys(self, new_keys: list[Key]) -> None:
        # Whole-list assignment (bulk load, overflow rebuild) repacks the
        # slab and re-establishes the gap pool.  Compact first so the
        # value slots are contiguous under the new keys.
        if self.gap != self.fill:
            self._compact()
        self._pack_keys(new_keys)

    @property  # type: ignore[override]
    def values(self) -> list[Any]:
        """Packed copy of the live values (read-only bridge)."""
        if self.gap != self.fill:
            self._compact()
        return self.svals[: self.fill]

    @values.setter
    def values(self, new_values: list[Any]) -> None:
        if self.gap != self.fill:
            self._compact()
        svals = list(new_values)
        pad = max(len(self.skeys), len(svals)) - len(svals)
        if pad:
            svals.extend([None] * pad)
        self.svals = svals

    @property
    def typed(self) -> bool:
        """True when the key slab is a typed ``array``."""
        return not isinstance(self.skeys, list)

    def _pack_keys(
        self, new_keys: Sequence[Key], slab: Optional[int] = None
    ) -> None:
        """Repack the key slab from ``new_keys``, padding the tail back up
        to ``slab`` slots (default: the current slab size) — the re-gap
        step."""
        n = len(new_keys)
        slab = max(len(self.skeys) if slab is None else slab, n)
        slots = _typed_slots(new_keys)
        if slots is None:
            slots = list(new_keys)
            slots.extend([None] * (slab - n))
        else:
            self.stats.typed_leaves += 1
            if slab > n:
                slots.extend(slots[-1:] * (slab - n))
        if slab > n:
            self.stats.gap_redistributions += 1
        self.skeys = slots
        self.fill = n
        self.gap = n
        self.gap_hi = None

    def _demote(self) -> None:
        """Fall back from typed key slots to an object list in place."""
        self.skeys = self.skeys.tolist()  # type: ignore[union-attr]
        self.stats.typed_demotions += 1

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of entries currently stored."""
        return self.fill

    @property
    def min_key(self) -> Key:
        """Smallest key in the leaf (the leaf must be non-empty).

        O(1) in any cursor state: the smallest key is ``skeys[0]``
        unless the gap sits at index 0, in which case the live entries
        start just past the gap's far edge — no compaction needed.
        """
        if self.gap:
            return self.skeys[0]
        return self.skeys[len(self.skeys) - self.fill]

    @property
    def max_key(self) -> Key:
        """Largest key in the leaf (the leaf must be non-empty).

        O(1) in any cursor state: with the gap mid-slab the live
        entries extend to the physical end, otherwise they end at
        ``fill`` — no compaction needed.
        """
        fill = self.fill
        if self.gap == fill:
            return self.skeys[fill - 1]
        return self.skeys[len(self.skeys) - 1]

    def view(self) -> tuple[Sequence[Key], Sequence[Any], int]:
        """Zero-copy read view ``(keys, values, n)`` over the slot arrays
        (live entries at ``[0, n)``; the gap-pool tail must not be read).
        """
        if self.gap != self.fill:
            self._compact()
        return self.skeys, self.svals, self.fill

    def find(self, key: Key) -> Optional[int]:
        """Index of ``key`` in this leaf, or None if absent."""
        if self.gap != self.fill:
            self._compact()
        fill = self.fill
        skeys = self.skeys
        idx = bisect_left(skeys, key, 0, fill)
        if idx < fill and skeys[idx] == key:
            return idx
        return None

    def value_at(self, idx: int) -> Any:
        """Value stored at entry index ``idx``, straight from the slot
        array (no packed-copy materialization)."""
        if self.gap != self.fill:
            self._compact()
        return self.svals[idx]

    def position_first_greater(self, bound: Key) -> int:
        """Index of the first key strictly greater than ``bound``."""
        if self.gap != self.fill:
            self._compact()
        return bisect_right(self.skeys, bound, 0, self.fill)

    def items(self) -> Iterator[tuple[Key, Any]]:
        """Iterate the leaf's entries in key order."""
        if self.gap != self.fill:
            self._compact()
        fill = self.fill
        return zip(
            itertools.islice(iter(self.skeys), fill),
            itertools.islice(iter(self.svals), fill),
        )

    # ------------------------------------------------------------------
    # Point mutations
    # ------------------------------------------------------------------

    def insert_entry(self, key: Key, value: Any) -> bool:
        """Insert preserving sort order; True when a new entry was added.

        An insert landing exactly at the gap cursor claims the next gap
        slot with two comparisons and two stores (no bisect, no shift);
        anything else migrates the gap to the new position — a slice
        move proportional to the *distance*, not the leaf size — so the
        cursor follows wherever the run is landing.
        """
        fill = self.fill
        skeys = self.skeys
        if fill < len(skeys):
            gap = self.gap
            if (gap == 0 or skeys[gap - 1] < key) and (
                (hi := self.gap_hi) is None or key < hi
            ):
                try:
                    skeys[gap] = key
                except (TypeError, OverflowError):
                    self._demote()
                    self.skeys[gap] = key
                self.svals[gap] = value
                self.gap = gap + 1
                self.fill = fill + 1
                if hi is not None:
                    # Only mid-leaf claims count: an append (gap at the
                    # tail) is free in any layout, so counting it would
                    # just dilute the metric the cursor exists for.
                    self.stats.gap_hits += 1
                return True
            return self._gap_insert(key, value)
        return self._grow_insert(key, value)

    def _gap_insert(self, key: Key, value: Any) -> bool:
        """Cursor-miss insert while gap slots exist: locate the key with
        a two-segment bisect (no compaction), migrate the gap to the
        insertion point — one slice move proportional to the *distance*,
        junk copies left behind in the pool — and claim its first slot."""
        skeys = self.skeys
        svals = self.svals
        fill = self.fill
        gap = self.gap
        glen = len(skeys) - fill
        if gap != 0 and key <= skeys[gap - 1]:
            idx = bisect_left(skeys, key, 0, gap)
            if skeys[idx] == key:
                svals[idx] = value
                return False
            # Slide [idx, gap) right against the gap's far edge.
            skeys[idx + glen : gap + glen] = skeys[idx:gap]
            svals[idx + glen : gap + glen] = svals[idx:gap]
        else:
            phys = bisect_left(skeys, key, gap + glen, len(skeys))
            idx = phys - glen
            if idx < fill and skeys[phys] == key:
                svals[phys] = value
                return False
            if idx > gap:
                # Slide [gap, idx) (physical [gap+glen, idx+glen)) left.
                skeys[gap:idx] = skeys[gap + glen : idx + glen]
                svals[gap:idx] = svals[gap + glen : idx + glen]
        try:
            skeys[idx] = key
        except (TypeError, OverflowError):
            self._demote()
            skeys = self.skeys
            skeys[idx] = key
        svals[idx] = value
        self.gap = idx + 1
        self.gap_hi = skeys[idx + glen] if idx < fill else None
        self.fill = fill + 1
        return True

    def _grow_insert(self, key: Key, value: Any) -> bool:
        """Insert with the slab exhausted (over-capacity leaf): compact
        (a no-op unless mid-gap) and grow the slab in place."""
        self._compact()
        skeys = self.skeys
        fill = self.fill
        idx = bisect_left(skeys, key, 0, fill)
        if idx < fill and skeys[idx] == key:
            self.svals[idx] = value
            return False
        if idx == fill:
            self._append_grow(key, value)
            return True
        try:
            skeys.insert(idx, key)
        except (TypeError, OverflowError):
            self._demote()
            skeys = self.skeys
            skeys.insert(idx, key)
        self.svals.insert(idx, value)
        fill += 1
        self.fill = fill
        self.gap = fill
        return True

    def _append_grow(self, key: Key, value: Any) -> None:
        """Append past the slab end (only reachable over capacity)."""
        skeys = self.skeys
        try:
            skeys.append(key)
        except (TypeError, OverflowError):
            self._demote()
            self.skeys.append(key)
        self.svals.append(value)
        self.fill += 1
        self.gap = self.fill

    def append_entry(self, key: Key, value: Any) -> None:
        """Append an entry known to be greater than every current key."""
        if self.gap != self.fill:
            self._compact()
        fill = self.fill
        skeys = self.skeys
        if fill < len(skeys):
            try:
                skeys[fill] = key
            except (TypeError, OverflowError):
                self._demote()
                self.skeys[fill] = key
            self.svals[fill] = value
            self.fill = fill + 1
            self.gap = self.fill
        else:
            self._append_grow(key, value)

    def remove_at(self, idx: int) -> tuple[Key, Any]:
        """Remove and return the entry at ``idx``; the freed slot returns
        to the gap pool (the slab length never shrinks)."""
        if self.gap != self.fill:
            self._compact()
        skeys = self.skeys
        key = skeys.pop(idx)
        value = self.svals.pop(idx)
        fill = self.fill - 1
        self.fill = fill
        self.gap = fill
        # Re-pad so the slab keeps >= capacity slots (gap-claim safety).
        skeys.append(skeys[-1] if len(skeys) else key)
        self.svals.append(None)
        return key, value

    # ------------------------------------------------------------------
    # Run / bulk mutations
    # ------------------------------------------------------------------

    def extend_entries(
        self, run_keys: Sequence[Key], run_values: Sequence[Any]
    ) -> None:
        """Append entries known to be greater than every current key,
        filling gap slots first."""
        if self.gap != self.fill:
            self._compact()
        fill = self.fill
        m = len(run_keys)
        self._splice_keys(fill, fill + m, run_keys)
        self.svals[fill : fill + m] = run_values
        self.fill = fill + m
        self.gap = self.fill

    def drop_prefix(self, count: int) -> None:
        """Delete the first ``count`` entries (slots return to the pool)."""
        if count <= 0:
            return
        if self.gap != self.fill:
            self._compact()
        skeys = self.skeys
        pad = skeys[-count:]  # junk refill, typecode-valid by construction
        del skeys[:count]
        skeys.extend(pad)
        svals = self.svals
        del svals[:count]
        svals.extend([None] * count)
        fill = self.fill - count
        self.fill = fill
        self.gap = fill

    def _splice_keys(self, lo: int, hi: int, seq: Sequence[Key]) -> None:
        """``skeys[lo:hi] = seq`` with typed-array conversion/demotion."""
        skeys = self.skeys
        if isinstance(skeys, list):
            skeys[lo:hi] = seq
            return
        try:
            skeys[lo:hi] = array(skeys.typecode, seq)
        except (TypeError, OverflowError):
            self._demote()
            self.skeys[lo:hi] = list(seq)

    def apply_run(self, run_keys: list[Key], run_values: list[Any]) -> int:
        """Place a strictly-increasing run into this leaf in one motion
        (gapped analogue of :meth:`LeafNode.apply_run`; the append case
        lands in the gap pool via one slice store)."""
        if self.gap != self.fill:
            self._compact()
        fill = self.fill
        skeys = self.skeys
        svals = self.svals
        m = len(run_keys)
        if fill == 0 or run_keys[0] > skeys[fill - 1]:
            self._splice_keys(fill, fill + m, run_keys)
            svals[fill : fill + m] = run_values
            self.fill = fill + m
            self.gap = self.fill
            return m
        lo = bisect_left(skeys, run_keys[0], 0, fill)
        hi = bisect_right(skeys, run_keys[-1], lo, fill)
        if lo == hi:
            # Nested run: one slice insertion; junk tail slides right and
            # the slab grows by m (re-gapped at the next rebuild).
            self._splice_keys(lo, lo, run_keys)
            svals[lo:lo] = run_values
            self.fill = fill + m
            self.gap = self.fill
            return m
        window_keys = skeys[lo:hi]
        if not isinstance(window_keys, list):
            window_keys = window_keys.tolist()
        merged_keys, merged_vals, added = merge_run(
            window_keys, svals[lo:hi], run_keys, run_values
        )
        self._splice_keys(lo, hi, merged_keys)
        svals[lo:hi] = merged_vals
        self.fill = fill + added
        self.gap = self.fill
        return added

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def _make_sibling(self) -> "GappedLeafNode":
        return GappedLeafNode(0, self.stats)

    def split_at(self, pos: int) -> tuple["LeafNode", Key]:
        """Split, moving entries from ``pos`` onward into a new right
        sibling (fused override: validation, tail move, and chain links
        in one frame — splits sit on the ingest hot path).

        When the slab is full (``fill == len(skeys)`` — every split a
        tree triggers), the right sibling takes a *whole-slab copy with
        the gap at the front*: one C-level slice per array, no pad
        allocation.  Its live entries stay at physical ``[pos, slab)``
        (``gap = 0``, ``glen = pos``), which is a legal cursor state —
        the first out-of-window insert migrates the gap wherever that
        leaf's run is landing, paying one bounded slice move instead of
        every split paying an unconditional repack.
        """
        if self.gap != self.fill:
            self._compact()
        fill = self.fill
        if not 0 < pos < fill:
            raise ValueError(
                f"split position {pos} out of range for leaf of "
                f"size {fill}"
            )
        stats = self.stats
        skeys = self.skeys
        right = GappedLeafNode.__new__(GappedLeafNode)
        right.node_id = next(_node_ids)
        right.stats = stats
        if fill == len(skeys):
            split_key = skeys[pos]
            right.skeys = skeys[:]
            right.svals = self.svals[:]
            right.gap = 0
            right.gap_hi = split_key
        else:
            self._move_right_tail(right, pos, fill)
            split_key = right.skeys[0]
        right.fill = fill - pos
        stats.gap_redistributions += 1
        self.fill = pos
        self.gap = pos
        nxt = self.next
        right.next = nxt
        if nxt is not None:
            nxt.prev = right
        right.prev = self
        self.next = right
        right.parent = self.parent
        return right, split_key

    def _move_right_tail(
        self, right: "GappedLeafNode", pos: int, fill: int
    ) -> None:
        """Copy entries ``[pos, fill)`` into ``right`` packed at the
        front with the gap pool re-padded to our slab size (the general
        split path, used when the slab has slack beyond ``fill``)."""
        skeys = self.skeys
        slab = len(skeys)
        n = fill - pos
        right_keys = skeys[pos:fill]
        if type(right_keys) is list:
            right_keys.extend([None] * (slab - n))
        else:
            right_keys.extend(right_keys[-1:] * (slab - n))
        right.skeys = right_keys
        right.gap = n
        right.gap_hi = None
        right_vals = self.svals[pos:fill]
        right_vals.extend([None] * (slab - n))
        right.svals = right_vals

    def _move_tail_into(self, right: "LeafNode", pos: int) -> None:
        # ``right`` comes from ``_make_sibling`` and is gapped; size its
        # slab like ours (== capacity in tree use), so both halves come
        # out of the split with a refilled gap pool.
        if self.gap != self.fill:
            self._compact()
        fill = self.fill
        sibling: "GappedLeafNode" = right  # type: ignore[assignment]
        self._move_right_tail(sibling, pos, fill)
        sibling.fill = fill - pos
        self.stats.gap_redistributions += 1
        self.fill = pos
        self.gap = pos


def _typed_slots(entries: Sequence[Key]) -> Optional[KeySlots]:
    """Typed slot array for ``entries`` when the key domain allows it.

    ``int`` domains (the common case) are validated by the ``array('q')``
    constructor itself at C speed — any non-int or out-of-int64 element
    raises and the caller falls back to object slots.  ``float`` domains
    are pre-checked element-wise because ``array('d')`` would silently
    coerce stray ints (changing the type a reader gets back).
    """
    if not entries:
        return None
    first = type(entries[0])
    if first is int:
        try:
            return array("q", entries)
        except (TypeError, OverflowError):
            return None
    if first is float:
        if all(type(k) is float for k in entries):
            return array("d", entries)
    return None


def make_leaf(
    layout: str, capacity: int, stats: Optional[TreeStats] = None
) -> LeafNode:
    """Construct an empty leaf of the requested ``layout``.

    ``"list"`` returns the classic compact-list :class:`LeafNode`;
    ``"gapped"`` returns a :class:`GappedLeafNode` with a ``capacity``-slot
    slab wired to ``stats`` (for ``gap_hits`` / ``gap_redistributions`` /
    ``typed_leaves`` accounting).
    """
    if layout == "gapped":
        return GappedLeafNode(capacity, stats)
    return LeafNode()


class InternalNode(Node):
    """An internal node: ``len(children) == len(keys) + 1``.

    ``children[i]`` roots the subtree of keys in ``[keys[i-1], keys[i])``
    (with the open ends at the boundaries).
    """

    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        super().__init__()
        self.keys: list[Key] = []
        self.children: list[Node] = []

    @property
    def is_leaf(self) -> bool:
        """Always False."""
        return False

    @property
    def size(self) -> int:
        """Number of children."""
        return len(self.children)

    def child_index_for(self, key: Key) -> int:
        """Index of the child whose range contains ``key``."""
        return bisect_right(self.keys, key)

    def index_of_child(self, child: Node, stats: Optional[Any] = None) -> int:
        """Position of ``child`` in this node's child list.

        Seeds the search by bisecting on the child's smallest key, so the
        common case costs O(log fan-out) instead of a linear scan; empty
        children (possible under QuIT's lazy delete) fall back to a scan.
        When the caller passes its ``TreeStats`` the fallback is counted
        in ``stats.index_fallback_scans`` so O(fan-out) regressions are
        visible instead of silently absorbed.
        """
        children = self.children
        if child.is_leaf:
            populated = child.size > 0
            seed_key = child.min_key if populated else None  # type: ignore[attr-defined]
        else:
            populated = bool(child.keys)
            seed_key = child.keys[0] if populated else None
        if populated:
            idx = bisect_right(self.keys, seed_key)
            # The seed can be off by the pivot/duplicate boundary; probe
            # outward before conceding to a scan.
            for probe in (idx, idx - 1, idx + 1):
                if 0 <= probe < len(children) and children[probe] is child:
                    return probe
        if stats is not None:
            stats.index_fallback_scans += 1
        for idx, candidate in enumerate(children):
            if candidate is child:
                return idx
        raise ValueError(f"{child!r} is not a child of {self!r}")

    def insert_child(
        self, split_key: Key, right: Node, idx: Optional[int] = None
    ) -> None:
        """Register a split: add ``split_key`` and the new ``right`` child
        immediately after ``right``'s left sibling.

        Callers that already know the pivot position (e.g. from
        :meth:`index_of_child` on the left sibling) pass ``idx`` to skip
        the bisect.  The two C-level ``list.insert`` memmoves stay: the
        measured alternatives — a combined slice-splice
        (``keys[idx:idx] = (split_key,)``) and a single paired
        ``(key, child)`` list — run 1.4× and 1.75× *slower* per splice in
        CPython (394 ns and 483 ns vs 276 ns at fan-out 64; see DESIGN.md,
        "Gapped leaf layout"), because each slice assignment allocates a
        temporary and paired tuples tax every descent's bisect.
        """
        keys = self.keys
        if idx is None:
            idx = bisect_right(keys, split_key)
        keys.insert(idx, split_key)
        self.children.insert(idx + 1, right)
        right.parent = self

    def split(self) -> tuple["InternalNode", Key]:
        """Split this internal node in half.

        Returns ``(new_right, push_up_key)`` where ``push_up_key`` moves to
        the parent (it is *not* retained in either half, matching the
        textbook internal split).
        """
        mid = len(self.keys) // 2
        push_up = self.keys[mid]
        right = InternalNode()
        right.keys = self.keys[mid + 1:]
        right.children = self.children[mid + 1:]
        del self.keys[mid:]
        del self.children[mid + 1:]
        for child in right.children:
            child.parent = right
        right.parent = self.parent
        return right, push_up
