"""Background integrity scrub: CRC-verify, quarantine, self-heal.

Silent bit rot is the one disk fault fsync cannot answer for: the ack
was honest when it was given, the medium decayed afterwards, and nobody
notices until the bytes are needed — at recovery, or when a replica
fetches them.  The :class:`Scrubber` closes that window by re-reading
durable artifacts *while the tree is healthy*:

* **closed WAL segments** are re-parsed record by record against their
  CRC32s (the active segment is deliberately skipped: its tail is in
  flux, and replay's torn-tail tolerance owns it);
* **the checkpoint snapshot** is verified with
  :func:`repro.core.persist.verify_snapshot` (per-line CRC32 for v2).

Verification runs under the tree's checkpoint gate (shared side) so a
concurrent checkpoint cannot unlink a segment mid-read, and is *paced*:
each cycle verifies at most ``max_bytes_per_cycle`` bytes, resuming
from a rolling cursor, so a scrub never monopolizes the disk the
writers are using.

When corruption is found the artifact is first **quarantined** (copied
into ``<directory>/quarantine/`` as evidence — never destroyed in
place), then **repaired**:

* with a ``peer_heal`` hook (a ``Replica`` supplies
  ``heal_from_peer``), the node rebuilds itself from its replication
  peer via the existing snapshot + WAL-cursor machinery;
* otherwise (a primary, or a standalone tree) a checkpoint rewrites
  the snapshot from the live in-memory state — which already applied
  every record the rotted artifact held — and truncates the damaged
  WAL, which also restores a degraded :class:`HealthMonitor`.

``scrub.cycle`` is the outermost lock in the sanitizer's
``LOCK_ORDER``: a repair may take the replica lock, the checkpoint
gate, and everything below them.
"""

from __future__ import annotations

import shutil
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from ..concurrency import sanitizer
from .durable import SNAPSHOT_NAME, WAL_DIRNAME, DurableTree
from .health import ReadOnlyError
from .persist import verify_snapshot
from .wal import _parse_segment, _read_segment, _segment_seq, segment_paths

QUARANTINE_DIRNAME = "quarantine"


@dataclass
class ScrubCycleReport:
    """What one scrub cycle checked, found, and fixed.

    Attributes:
        cycle: 1-based cycle number.
        segments_checked: closed WAL segments verified this cycle.
        bytes_checked: segment bytes read and CRC-verified.
        snapshot_checked: the checkpoint snapshot was verified.
        issues: human-readable descriptions of every corruption found.
        corrupt_paths: the artifacts those issues live in.
        quarantined: quarantine copies made (paths as strings).
        repaired: a local checkpoint rewrote clean state.
        peer_repaired: the peer-heal hook rebuilt this node.
    """

    cycle: int
    segments_checked: int = 0
    bytes_checked: int = 0
    snapshot_checked: bool = False
    issues: list[str] = field(default_factory=list)
    corrupt_paths: list[Path] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    repaired: bool = False
    peer_repaired: bool = False

    @property
    def clean(self) -> bool:
        """True when nothing was corrupt."""
        return not self.issues


class Scrubber:
    """Paced background integrity verification for a durable tree.

    Args:
        durable: the tree to scrub — either a :class:`DurableTree` or a
            zero-arg callable returning the *current* one (a replica's
            durable tree is replaced on bootstrap, so replicas pass
            ``lambda: replica.durable``).
        interval: seconds between background cycles (:meth:`start`).
        max_bytes_per_cycle: pacing budget — segment bytes verified per
            cycle before the cursor parks until the next one.
        peer_heal: zero-arg hook that rebuilds this node from its
            replication peer, returning True on success.  Tried before
            (instead of) the local checkpoint repair.
        auto_repair: when True (default) corruption without a working
            peer triggers a local checkpoint to rewrite clean state;
            when False the scrubber only detects and quarantines.
    """

    def __init__(
        self,
        durable: Union[DurableTree, Callable[[], DurableTree]],
        *,
        interval: float = 0.05,
        max_bytes_per_cycle: int = 4 * 1024 * 1024,
        peer_heal: Optional[Callable[[], bool]] = None,
        auto_repair: bool = True,
    ) -> None:
        if callable(durable):
            self._provider: Callable[[], DurableTree] = durable
        else:
            concrete = durable

            def _fixed() -> DurableTree:
                return concrete

            self._provider = _fixed
        self.interval = interval
        self.max_bytes_per_cycle = max(1, max_bytes_per_cycle)
        self.peer_heal = peer_heal
        self.auto_repair = auto_repair
        self._lock = sanitizer.make_lock("scrub.cycle")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._cursor_seq = 0
        self.cycles = 0
        self.segments_checked = 0
        self.bytes_checked = 0
        self.corruptions = 0
        self.quarantines = 0
        self.repairs = 0
        self.peer_repairs = 0
        self.last_report: Optional[ScrubCycleReport] = None
        self.last_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------

    def scrub_once(self, *, full: bool = False) -> ScrubCycleReport:
        """Run one verification (+ quarantine + repair) cycle.

        ``full=True`` rewinds the pacing cursor and ignores the byte
        budget, verifying *every* closed segment plus the snapshot in
        this one cycle — the "scrub everything now" operator action
        (a paced cycle only scans forward from the cursor, so damage
        behind it would otherwise wait for the pass to wrap).
        """
        with self._lock:
            durable = self._provider()
            durable.scrubber = self
            report = ScrubCycleReport(cycle=self.cycles + 1)
            if full:
                self._cursor_seq = 0
            with durable._gate.read_locked():
                self._verify_gated(durable, report, full=full)
                if report.corrupt_paths:
                    self._quarantine_gated(durable, report)
            self.cycles += 1
            self.segments_checked += report.segments_checked
            self.bytes_checked += report.bytes_checked
            if report.corrupt_paths:
                self.corruptions += len(report.corrupt_paths)
                self.quarantines += len(report.quarantined)
                self._repair(durable, report)
                # Whatever the repair outcome, restart the pass: the
                # segment landscape has changed under the cursor.
                self._cursor_seq = 0
            self.last_report = report
            return report

    def _verify_gated(
        self, durable: DurableTree, report: ScrubCycleReport,
        *, full: bool = False,
    ) -> None:  # holds: scrub.cycle
        """Verify under the shared checkpoint gate (no truncate races).

        Closed segments are immutable while the gate is held shared, so
        any parse damage here is real corruption, not an append race.
        """
        segments = segment_paths(durable.wal.directory)
        closed = segments[:-1]
        eligible = [
            s for s in closed if _segment_seq(s) > self._cursor_seq
        ]
        wrapped = not eligible
        if wrapped:
            eligible = closed
        if wrapped or full or self.cycles == 0:
            # Start of a pass: verify the snapshot alongside the log.
            report.snapshot_checked = True
            snap = durable.snapshot_path
            for issue in verify_snapshot(snap):
                report.issues.append(f"{snap.name}: {issue}")
            if report.issues:
                report.corrupt_paths.append(snap)
        for seg in eligible:
            if not full and report.bytes_checked >= self.max_bytes_per_cycle:
                break
            self._cursor_seq = _segment_seq(seg)
            report.segments_checked += 1
            try:
                data = _read_segment(seg)
            except ReadOnlyError as exc:
                report.issues.append(f"{seg.name}: unreadable: {exc}")
                report.corrupt_paths.append(seg)
                continue
            report.bytes_checked += len(data)
            parse = _parse_segment(data)
            if parse.intact:
                continue
            if parse.checksum_failures:
                kind = "checksum failure"
            else:
                kind = "torn record"
            report.issues.append(
                f"{seg.name}: {kind} at offset {parse.offset} "
                f"(closed segment: real corruption)"
            )
            report.corrupt_paths.append(seg)

    def _quarantine_gated(
        self, durable: DurableTree, report: ScrubCycleReport
    ) -> None:  # holds: scrub.cycle
        """Copy corrupt artifacts aside as evidence before any repair
        touches them.  Copies, never moves: deleting a middle WAL
        segment would manufacture a sequence gap."""
        qdir = durable.directory / QUARANTINE_DIRNAME
        try:
            qdir.mkdir(exist_ok=True)
        except OSError as exc:  # pragma: no cover - disk truly dead
            self.last_error = exc
            return
        for path in report.corrupt_paths:
            if not path.exists():
                continue
            dst = qdir / f"{path.name}.cycle{report.cycle:06d}"
            try:
                shutil.copy2(path, dst)
            except OSError as exc:
                # Evidence copy is best-effort; the repair matters more.
                self.last_error = exc
                continue
            report.quarantined.append(str(dst))

    def _repair(
        self, durable: DurableTree, report: ScrubCycleReport
    ) -> None:  # holds: scrub.cycle
        """Heal: peer rebuild when available, local checkpoint otherwise.

        Runs outside the checkpoint gate — both repairs take their own
        exclusive locks (``repl.replica`` / the write side of
        ``durable.gate``), which nest correctly inside ``scrub.cycle``.
        """
        if self.peer_heal is not None:
            try:
                healed = self.peer_heal()
            except Exception as exc:
                self.last_error = exc
                healed = False
            if healed:
                self.peer_repairs += 1
                report.peer_repaired = True
                return
        if not self.auto_repair:
            return
        try:
            # The live tree already applied every op the rotted artifact
            # held; snapshotting it and truncating the damaged WAL is a
            # full repair (and restores a degraded HealthMonitor).
            durable.checkpoint()
        except Exception as exc:
            self.last_error = exc
            return
        self.repairs += 1
        report.repaired = True

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the paced background loop (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="quit-scrubber", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scrub_once()
            except Exception as exc:
                # A scrub failure must not kill the watchdog; record it
                # and keep pacing.
                self.last_error = exc

    def stop(self) -> None:
        """Stop the background loop and join the thread."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "Scrubber":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def verify_artifacts(
    directory: Union[str, Path]
) -> dict[str, list[str]]:
    """Offline CRC verification of a durability directory.

    Checks the snapshot and *every* WAL segment (including the final
    one: offline there is no in-flight append, so its torn tail — a
    normal crash artifact that repair will trim — is reported as a
    ``note:`` rather than a corruption).  Returns ``{artifact:
    [issues]}`` with an empty list per intact artifact; issues starting
    with ``"note:"`` are informational, everything else is damage.
    """
    directory = Path(directory)
    out: dict[str, list[str]] = {}
    snap = directory / SNAPSHOT_NAME
    if snap.exists():
        out[str(snap)] = verify_snapshot(snap)
    prev_seq: Optional[int] = None
    segments = segment_paths(directory / WAL_DIRNAME)
    for seg in segments:
        issues: list[str] = []
        seq = _segment_seq(seg)
        if prev_seq is not None and seq != prev_seq + 1:
            issues.append(
                f"sequence gap: follows segment {prev_seq}, "
                f"expected {prev_seq + 1}"
            )
        prev_seq = seq
        try:
            data = _read_segment(seg)
        except ReadOnlyError as exc:
            issues.append(f"unreadable: {exc}")
            out[str(seg)] = issues
            continue
        parse = _parse_segment(data)
        if parse.checksum_failures:
            issues.append(f"checksum failure at offset {parse.offset}")
        elif parse.truncated and seg != segments[-1]:
            issues.append(
                f"torn record at offset {parse.offset} below the tail"
            )
        elif parse.truncated:
            issues.append(
                "note: torn tail (in-flight append at crash; "
                "recovery's repair will trim it)"
            )
        out[str(seg)] = issues
    return out
