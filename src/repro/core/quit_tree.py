"""The Quick Insertion Tree (QuIT) — the paper's primary contribution (§4).

QuIT extends the pole-B+-tree with three strategies:

* **Variable split** (Alg. 2): when the pole splits and ``pole_prev`` is at
  least half full, IKR locates the first outlier position ``l`` inside the
  full pole.  If outliers occupy less than half the node (``l >
  def_split_pos``), the node splits at ``l - 1``, carrying one non-outlier
  into the new node, which becomes the pole — the left node is left almost
  full (this is what yields ~100% leaf occupancy for sorted data,
  Fig. 10a).  Otherwise the node splits at ``l``, shipping all outliers to
  the new node while the pole pointer stays.
* **Redistribution**: if ``pole_prev`` is under half full at pole-split
  time (a possible byproduct of an earlier variable split), entries flow
  from the front of the pole into ``pole_prev`` until the latter is exactly
  half full, instead of splitting (Fig. 7c).
* **Stale-pole reset** (§4.3): after ``T_R = floor(sqrt(leaf_capacity))``
  consecutive top-inserts the pole is re-pinned to the leaf that accepted
  the latest insert, recovering from workload shifts (Fig. 12).

Deletes targeting the pole skip eager rebalancing, and deleting the pole's
last entry resets the pole to ``pole_prev`` (§4.4).
"""

from __future__ import annotations

from typing import Optional

from .bptree import TreeInvariantError
from .node import Key, LeafNode
from .pole_tree import PoleBPlusTree

#: Multiples of the IKR-estimated key density that a within-run gap may
#: reach before the run is considered ended (see _in_order_run_length).
_RUN_GAP_SLACK = 4.0

#: Floor for the density estimate, guarding integer keys ingested densely
#: enough that ``(q - p) / prev_size`` rounds toward zero.
_MIN_DENSITY = 1e-9


class QuITTree(PoleBPlusTree):
    """Quick Insertion Tree: pole fast path + variable split +
    redistribution + stale-pole reset."""

    name = "QuIT"

    # ------------------------------------------------------------------
    # Variable split strategy (Alg. 2)
    # ------------------------------------------------------------------

    def _split_full_leaf(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> tuple[LeafNode, Optional[Key], Optional[Key]]:
        if leaf is not self._fp.leaf:
            # Alg. 2 lines 1-2: non-pole leaves split at 50%.
            return super()._split_full_leaf(leaf, key, low, high)
        return self._split_full_pole(leaf, key, low, high)

    def _split_full_pole(
        self,
        pole: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> tuple[LeafNode, Optional[Key], Optional[Key]]:
        """Alg. 2 for a full pole: variable split or redistribution."""
        fp = self._fp
        prev = fp.prev
        half = self.config.leaf_half
        prev_usable = (
            prev is not None
            and prev is not pole
            and prev.size > 0
            and prev.min_key <= pole.min_key
        )
        if prev_usable and prev.size < half and pole.prev is prev:
            self._redistribute_into_prev(pole, prev)
            fp.fails = 0
            new_min = pole.min_key
            if key < new_min:
                return prev, self.bounds_of_leaf(prev)[0], new_min
            return pole, new_min, high
        threshold = (
            self._ikr_for_pole(pole) if prev_usable and prev.size >= half
            else None
        )
        if threshold is None:
            # No trustworthy density estimate: fall back to the default
            # 50% split with Alg. 1's pointer-update rule.
            return super(QuITTree, self)._split_full_leaf(
                pole, key, low, high
            )
        split_pos = min(
            pole.position_first_greater(threshold),
            self._in_order_run_length(pole, prev),
        )
        if split_pos > half:
            # Few outliers: split at l-1, the new (nearly empty) node takes
            # one non-outlier plus the outliers and becomes the pole.
            split_pos = min(split_pos - 1, pole.size - 1)
            right, split_key = self._do_leaf_split(pole, split_pos)
            self.stats.variable_splits += 1
            self._advance_pole(pole, right, split_key, high)
        else:
            # Mostly outliers: ship all of them to the new node; the pole
            # stays and regains space for future fast inserts.
            split_pos = max(split_pos, 1)
            right, split_key = self._do_leaf_split(pole, split_pos)
            self.stats.variable_splits += 1
            fp.low, fp.high = low, split_key
            fp.next_candidate = right
        if key >= split_key:
            return right, split_key, high
        return pole, low, split_key

    def _in_order_run_length(self, pole: LeafNode, prev: LeafNode) -> int:
        """Length of the contiguous in-order run at the bottom of the pole.

        Eq. 2's acceptance window spans ``pole_size`` densities above
        ``q``, so a *future* in-order key that arrived early (a forward
        outlier with small displacement) can slip under the IKR threshold.
        Carrying such a key to the new pole as its minimum would strand
        every not-yet-arrived key below it.  The entries that actually
        arrived in order form a dense run starting at ``q``; the run ends
        at the first gap that a handful of in-order densities cannot
        explain.
        """
        density = max(
            (pole.min_key - prev.min_key) / prev.size, _MIN_DENSITY
        )
        gap_limit = density * self.config.ikr_scale * _RUN_GAP_SLACK
        keys, _, n = pole.view()
        for i in range(1, n):
            if keys[i] - keys[i - 1] > gap_limit:
                return i
        return n

    def _redistribute_into_prev(self, pole: LeafNode, prev: LeafNode) -> None:
        """Move entries from the front of the pole into ``pole_prev`` until
        the latter is exactly half full (Fig. 7c), updating the separator
        pivot between the two leaves."""
        take = self.config.leaf_half - prev.size
        if not 0 < take < pole.size:
            raise TreeInvariantError(
                f"redistribution take={take} outside (0, {pole.size}); "
                "caller must ensure the previous leaf is under half full "
                "and the pole can cover the deficit"
            )
        pk, pv, _ = pole.view()
        prev.extend_entries(pk[:take], pv[:take])
        pole.drop_prefix(take)
        new_min = pole.min_key
        self._update_lower_separator(pole, new_min)
        self._fp.low = new_min
        self.stats.redistributions += 1

    def _update_lower_separator(self, leaf: LeafNode, new_key: Key) -> None:
        """Set the pivot that lower-bounds ``leaf``'s subtree to
        ``new_key`` (the nearest ancestor where the subtree is not the
        leftmost child holds that pivot)."""
        child = leaf
        parent = child.parent
        while parent is not None:
            idx = parent.index_of_child(child, self.stats)
            if idx > 0:
                parent.keys[idx - 1] = new_key
                return
            child = parent
            parent = child.parent
        # Leftmost leaf of the whole tree: no lower separator exists.

    # ------------------------------------------------------------------
    # Stale-pole reset (§4.3)
    # ------------------------------------------------------------------

    def _note_top_insert_miss(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        if self._count_consecutive_miss() >= self.config.reset_after:
            self._reset_pole_to(leaf, low, high)

    def _reset_pole_to(
        self, leaf: LeafNode, low: Optional[Key], high: Optional[Key]
    ) -> None:
        fp = self._fp
        fp.leaf = leaf
        fp.prev = leaf.prev
        fp.low = low
        fp.high = high
        fp.next_candidate = None
        fp.fails = 0
        self.stats.pole_resets += 1

    # ------------------------------------------------------------------
    # Deletes (§4.4)
    # ------------------------------------------------------------------

    def _skip_eager_rebalance(self, leaf: LeafNode) -> bool:
        # Deletes in the pole do not rebalance eagerly: the pole is the
        # node expected to receive the next in-order inserts.
        return leaf is self._fp.leaf

    def _on_entry_deleted(self, leaf: LeafNode, key: Key) -> None:
        fp = self._fp
        if leaf is fp.leaf and leaf.size == 0 and fp.prev is not None:
            # The pole just emptied: fall back to pole_prev.
            fp.leaf = fp.prev
            fp.prev = fp.leaf.prev
            fp.next_candidate = None
            fp.fails = 0
