"""Sorted-run detection and merging for the batched ingest pipeline.

The paper's thesis is that near-sorted ingest should not pay a full
root-to-leaf traversal per key; the pure-Python reproduction additionally
should not pay a full *interpreter dispatch* per key.  This module holds
the two order-N primitives the batch path is built on:

* :func:`carve_runs` scans a batch once and carves it into maximal
  non-decreasing runs — the unit the tree applies with one descent per
  pivot-bounded segment instead of one per key;
* :func:`merge_run` merges one such run into a leaf's key/value lists with
  a single linear pass (upsert semantics: the run's value wins).

Run semantics (documented in docs/tuning.md): a run ends at the first key
strictly smaller than its predecessor.  Equal adjacent keys do *not* end a
run — they are collapsed in place, last write winning, which preserves the
arrival-order upsert semantics of a per-key ``insert`` loop.  Because runs
are applied in batch order, a key recurring in a later run likewise
overwrites its earlier value.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator

try:  # numpy accelerates run detection for numeric keys; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in test dep
    _np = None

# Key is structurally ``Any`` (see repro.core.node); redeclared here rather
# than imported so node.py can use merge_run without an import cycle.
Key = Any

#: Below this batch size the numpy conversion overhead outweighs the
#: vectorized breakpoint scan.
_VECTORIZE_MIN = 64


def probe_runs(
    items: Iterable[tuple[Key, Any]],
) -> tuple[list[tuple[Key, Any]], int]:
    """Materialize ``items`` and count its maximal non-decreasing runs.

    One O(n) scan (vectorized for numeric keys) that does *not* build the
    runs — callers use the count to pick an ingest strategy (apply runs
    in arrival order vs coalesce a fragmented batch by sorting) before
    paying for :func:`carve_runs`.  Returns ``(items_as_list, run_count)``.
    """
    if not isinstance(items, list):
        items = list(items)
    n = len(items)
    if n < 2:
        return items, n
    if _np is not None and n >= _VECTORIZE_MIN:
        keys = [k for k, _ in items]
        try:
            arr = _np.asarray(keys)
            if arr.ndim == 1 and arr.dtype.kind in "iuf":
                return items, int((arr[1:] < arr[:-1]).sum()) + 1
        except (ValueError, TypeError, OverflowError):
            pass
    runs = 1
    prev = items[0][0]
    for key, _ in items:
        if key < prev:
            runs += 1
        prev = key
    return items, runs


def carve_runs(
    items: Iterable[tuple[Key, Any]],
) -> Iterator[tuple[list[Key], list[Any]]]:
    """Carve ``(key, value)`` pairs into maximal non-decreasing runs.

    Yields ``(run_keys, run_values)`` pairs where ``run_keys`` is strictly
    increasing (duplicates within a run collapse to the latest value).
    A fully sorted batch yields exactly one run; a reverse-sorted batch
    degenerates to one run per entry, matching the per-key insert cost.

    Numeric batches large enough to amortize the conversion are scanned
    with a vectorized breakpoint detector; everything else (strings,
    tuples, mixed types) takes the generic single-pass scan.
    """
    if not isinstance(items, list):
        items = list(items)
    if not items:
        return
    if _np is not None and len(items) >= _VECTORIZE_MIN:
        keys = [k for k, _ in items]
        arr = None
        try:
            candidate = _np.asarray(keys)
            if candidate.ndim == 1 and candidate.dtype.kind in "iuf":
                arr = candidate
        except (ValueError, TypeError, OverflowError):
            arr = None
        if arr is not None:
            yield from _carve_runs_vectorized(items, keys, arr)
            return
    yield from _carve_runs_generic(items)


def _carve_runs_vectorized(
    items: list[tuple[Key, Any]],
    keys: list[Key],
    arr: "Any",
) -> Iterator[tuple[list[Key], list[Any]]]:
    """Run carving driven by a C-speed breakpoint scan over ``arr``."""
    head, tail = arr[:-1], arr[1:]
    starts = _np.flatnonzero(tail < head) + 1
    has_dups = bool((tail == head).any())
    bounds = [0, *starts.tolist(), len(items)]
    for lo, hi in zip(bounds, bounds[1:]):
        run_keys = keys[lo:hi]
        run_vals = [v for _, v in items[lo:hi]]
        if has_dups:
            run_keys, run_vals = _collapse_duplicates(run_keys, run_vals)
        yield run_keys, run_vals


def _carve_runs_generic(
    items: list[tuple[Key, Any]],
) -> Iterator[tuple[list[Key], list[Any]]]:
    """Single-pass run carving for arbitrary comparable keys."""
    run_keys: list[Key] = []
    run_vals: list[Any] = []
    append_key = run_keys.append
    append_val = run_vals.append
    prev: Key = None
    for key, value in items:
        if run_keys:
            if key > prev:
                append_key(key)
                append_val(value)
            elif key == prev:
                run_vals[-1] = value
            else:
                yield run_keys, run_vals
                run_keys = [key]
                run_vals = [value]
                append_key = run_keys.append
                append_val = run_vals.append
        else:
            append_key(key)
            append_val(value)
        prev = key
    if run_keys:
        yield run_keys, run_vals


def _collapse_duplicates(
    run_keys: list[Key], run_vals: list[Any]
) -> tuple[list[Key], list[Any]]:
    """Collapse equal adjacent keys in a non-decreasing run, keeping the
    latest value (arrival-order upsert semantics)."""
    out_keys: list[Key] = []
    out_vals: list[Any] = []
    for key, value in zip(run_keys, run_vals):
        if out_keys and key == out_keys[-1]:
            out_vals[-1] = value
        else:
            out_keys.append(key)
            out_vals.append(value)
    return out_keys, out_vals


def merge_run(
    base_keys: list[Key],
    base_vals: list[Any],
    run_keys: list[Key],
    run_vals: list[Any],
) -> tuple[list[Key], list[Any], int]:
    """Merge a strictly-increasing run into sorted ``base`` lists.

    Returns ``(keys, values, added)`` where ``added`` is the number of run
    keys not already present in the base.  For duplicate keys the run's
    value wins (it is the freshest write).  Neither input is mutated.

    Disjoint placements — the run entirely before or after the base, or
    nested between two adjacent base keys — are served by C-level list
    concatenation; only the overlapping window (located by two bisects)
    is merged element by element.
    """
    if not base_keys:
        return list(run_keys), list(run_vals), len(run_keys)
    if not run_keys:
        return list(base_keys), list(base_vals), 0
    if run_keys[0] > base_keys[-1]:
        return base_keys + run_keys, base_vals + run_vals, len(run_keys)
    if run_keys[-1] < base_keys[0]:
        return run_keys + base_keys, run_vals + base_vals, len(run_keys)
    lo = bisect_left(base_keys, run_keys[0])
    hi = bisect_right(base_keys, run_keys[-1], lo)
    if lo == hi:
        out_keys = base_keys[:lo] + run_keys + base_keys[lo:]
        out_vals = base_vals[:lo] + run_vals + base_vals[lo:]
        return out_keys, out_vals, len(run_keys)
    rn = len(run_keys)
    if rn * 4 <= hi - lo:
        # Sparse run: copying the base (C-speed) and placing each run key
        # with bisect + list.insert (C-speed memmove) is cheaper than an
        # element-by-element interpreted walk of the window.
        out_keys = base_keys[:]
        out_vals = base_vals[:]
        pos = lo
        added = 0
        for t in range(rn):
            key = run_keys[t]
            pos = bisect_left(out_keys, key, pos)
            if pos < len(out_keys) and out_keys[pos] == key:
                out_vals[pos] = run_vals[t]
            else:
                out_keys.insert(pos, key)
                out_vals.insert(pos, run_vals[t])
                added += 1
            pos += 1
        return out_keys, out_vals, added
    out_keys = base_keys[:lo]
    out_vals = base_vals[:lo]
    bi, ri = lo, 0
    while bi < hi and ri < rn:
        bk = base_keys[bi]
        rk = run_keys[ri]
        if bk < rk:
            out_keys.append(bk)
            out_vals.append(base_vals[bi])
            bi += 1
        elif bk > rk:
            out_keys.append(rk)
            out_vals.append(run_vals[ri])
            ri += 1
        else:
            out_keys.append(rk)
            out_vals.append(run_vals[ri])
            bi += 1
            ri += 1
    if ri < rn:
        out_keys.extend(run_keys[ri:])
        out_vals.extend(run_vals[ri:])
    out_keys.extend(base_keys[bi:])
    out_vals.extend(base_vals[bi:])
    return out_keys, out_vals, len(out_keys) - len(base_keys)
