"""A classical in-memory B+-tree (the paper's baseline index).

This is the substrate every fast-path variant builds on: top-to-bottom
traversal for inserts, point and range lookups over interlinked leaves,
deletes with borrow/merge rebalancing, and bulk loading.  The fast-path
variants (:mod:`repro.core.tail_tree`, :mod:`repro.core.lil_tree`,
:mod:`repro.core.pole_tree`, :mod:`repro.core.quit_tree`) override a small
set of hooks — leaf-split position choice, post-split and post-top-insert
callbacks — so that all variants share one traversal/split/rebalance
implementation, mirroring the paper's "same underlying B+-tree
implementation" methodology (§5).
"""

from __future__ import annotations

from bisect import bisect_left
from operator import itemgetter
from typing import Any, Iterable, Iterator, Optional

from .batch import carve_runs, merge_run, probe_runs
from .config import (
    ENTRY_BYTES,
    NODE_HEADER_BYTES,
    PIVOT_BYTES,
    TreeConfig,
)
from .node import GappedLeafNode, InternalNode, Key, LeafNode, Node, make_leaf
from .stats import OccupancyStats, ScrubReport, TreeStats


class TreeInvariantError(AssertionError):
    """A structural invariant of the tree does not hold.

    Raised explicitly by :meth:`BPlusTree.validate` (never via the
    ``assert`` statement, so validation survives ``python -O``).
    Subclasses :class:`AssertionError` for compatibility with callers
    that treated validation failures as assertion failures.
    """

#: Default leaf fill for run-driven overflow rebuilds in
#: :meth:`BPlusTree.insert_many`.  Packing rebuilt leaves completely full
#: (1.0) makes the very next run landing in them overflow again; ~85%
#: leaves one typical segment of headroom and matches the leaf occupancy a
#: per-key-built tree converges to.
BATCH_FILL_FACTOR = 0.85

#: Minimum segment length for a segment to retarget the batch-local
#: frontier hint in :meth:`BPlusTree._insert_run`.  Shorter segments are
#: almost always displaced outliers; letting them steal the hint would
#: make the next run descend again to find its way back to the in-order
#: frontier.
_HINT_MIN_SEGMENT = 4

#: Key extractor for the coalescing sort in :meth:`BPlusTree.insert_many`.
_key_of = itemgetter(0)

#: Maximum leaves a batched read may walk along the chain before it
#: concedes and re-descends from the root.  Sorted probe batches usually
#: advance exactly one leaf at a time (limit never reached); a probe that
#: jumps far ahead would otherwise degrade to an O(leaves) linear scan
#: when a descent is O(height).
_READ_CHAIN_LIMIT = 8


class BPlusTree:
    """Textbook B+-tree with upsert semantics and instrumentation.

    Args:
        config: static tree configuration; defaults to
            :class:`~repro.core.config.TreeConfig` defaults.

    The tree stores unique keys; inserting an existing key overwrites its
    value.  All operation counts are accumulated in :attr:`stats`.
    """

    name = "B+-tree"

    def __init__(self, config: Optional[TreeConfig] = None) -> None:
        self.config = config or TreeConfig()
        self.stats = TreeStats()
        root = self._new_leaf()
        self._root: Node = root
        self._head: LeafNode = root
        self._tail: LeafNode = root
        self._size = 0
        self._height = 1

    @property
    def layout(self) -> str:
        """Leaf storage layout this tree was built with (``"gapped"`` or
        ``"list"``); part of the layout-selection surface every variant
        facade exposes."""
        return self.config.layout

    def _new_leaf(self) -> LeafNode:
        """Fresh leaf in the configured layout.  Every code path that
        materializes a leaf (root, splits, bulk loads, run-overflow
        rebuilds) must route through here (or through
        :meth:`LeafNode.split_at`, which clones the layout) so a tree
        never mixes layouts."""
        return make_leaf(
            self.config.layout, self.config.leaf_capacity, self.stats
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Key) -> bool:
        return self.get(key, default=_MISSING) is not _MISSING

    def __getitem__(self, key: Key) -> Any:
        """Dict-style lookup; raises KeyError when absent."""
        value = self.get(key, default=_MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __setitem__(self, key: Key, value: Any) -> None:
        """Dict-style upsert."""
        self.insert(key, value)

    def __delitem__(self, key: Key) -> None:
        """Dict-style delete; raises KeyError when absent."""
        if not self.delete(key):
            raise KeyError(key)

    def __iter__(self) -> Iterator[Key]:
        return self.keys()

    def __bool__(self) -> bool:
        # A tree with entries is truthy; don't fall back to __len__ via
        # surprising paths.
        return self._size > 0

    @property
    def height(self) -> int:
        """Number of levels, counting the leaf level (1 for a leaf root)."""
        return self._height

    @property
    def head_leaf(self) -> LeafNode:
        """Leftmost leaf."""
        return self._head

    @property
    def tail_leaf(self) -> LeafNode:
        """Rightmost leaf."""
        return self._tail

    @property
    def root(self) -> Node:
        """Root node (exposed for validation and white-box tests)."""
        return self._root

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------

    def insert(self, key: Key, value: Any = None) -> None:
        """Insert ``(key, value)``; a classical tree always top-inserts."""
        self._top_insert(key, value)

    def _top_insert(self, key: Key, value: Any) -> LeafNode:
        """Root-to-leaf traversal insert.  Returns the accepting leaf.

        The returned leaf is the node the entry physically landed in,
        *after* any split caused by the insertion — the variants use it to
        retarget their fast-path pointers.
        """
        self.stats.top_inserts += 1
        leaf, low, high = self._descend_for_insert(key)
        leaf, low, high = self._leaf_insert(leaf, key, value, low, high)
        self._after_top_insert(leaf, key, low, high)
        return leaf

    def _leaf_insert(
        self,
        leaf: LeafNode,
        key: Key,
        value: Any,
        low: Optional[Key],
        high: Optional[Key],
    ) -> tuple[LeafNode, Optional[Key], Optional[Key]]:
        """Insert into ``leaf`` (splitting first if full).

        ``low``/``high`` are the pivot bounds of ``leaf``'s key range as
        observed during the descent (None = unbounded).  Returns the leaf
        the entry landed in together with that leaf's (possibly narrowed)
        pivot bounds — threading them through here keeps the fast-path
        metadata updates O(1).
        """
        if leaf.size >= self.config.leaf_capacity:
            leaf, low, high = self._split_full_leaf(leaf, key, low, high)
        if leaf.insert_entry(key, value):
            self._size += 1
        return leaf, low, high

    def _split_full_leaf(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> tuple[LeafNode, Optional[Key], Optional[Key]]:
        """Split a full ``leaf``; return the half that should accept
        ``key`` plus that half's pivot bounds.  Subclasses hook
        split-position choice and metadata updates here."""
        pos = self._choose_leaf_split_pos(leaf, key)
        right, split_key = self._do_leaf_split(leaf, pos)
        self._after_leaf_split(leaf, right, split_key, key, low, high)
        if key >= split_key:
            return right, split_key, high
        return leaf, low, split_key

    def _do_leaf_split(self, leaf: LeafNode, pos: int) -> tuple[LeafNode, Key]:
        """Mechanical leaf split at ``pos`` + parent registration."""
        right, split_key = leaf.split_at(pos)
        self.stats.leaf_splits += 1
        if leaf is self._tail:
            self._tail = right
        self._insert_into_parent(leaf, split_key, right)
        return right, split_key

    def _choose_leaf_split_pos(self, leaf: LeafNode, key: Key) -> int:
        """Split position for a full leaf; the classical tree splits at 50%."""
        return leaf.size // 2

    def _after_leaf_split(
        self,
        left: LeafNode,
        right: LeafNode,
        split_key: Key,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        """Hook invoked after a leaf split (before the entry is placed)."""

    def _after_top_insert(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        """Hook invoked after a top-insert lands in ``leaf``; ``low`` /
        ``high`` are the leaf's pivot bounds after any split."""

    def _insert_into_parent(
        self, left: Node, split_key: Key, right: Node
    ) -> None:
        """Register ``right`` (split off ``left`` at ``split_key``) with the
        parent, growing the tree if ``left`` was the root."""
        parent = left.parent
        if parent is None:
            new_root = InternalNode()
            new_root.keys = [split_key]
            new_root.children = [left, right]
            left.parent = new_root
            right.parent = new_root
            self._root = new_root
            self._height += 1
            return
        parent.insert_child(split_key, right)
        if parent.size > self.config.internal_capacity:
            new_right, push_up = parent.split()
            self.stats.internal_splits += 1
            self._insert_into_parent(parent, push_up, new_right)

    # ------------------------------------------------------------------
    # Descents
    # ------------------------------------------------------------------

    def _descend_for_insert(
        self, key: Key
    ) -> tuple[LeafNode, Optional[Key], Optional[Key]]:
        """Find the leaf for ``key`` along with its pivot bounds.

        Returns ``(leaf, low, high)`` where the leaf's permissible key range
        is ``[low, high)`` (None meaning unbounded on that side).  Counts
        the traversal in ``stats.insert_traversal_nodes``.
        """
        node = self._root
        low: Optional[Key] = None
        high: Optional[Key] = None
        nodes = 1
        while not node.is_leaf:
            internal: InternalNode = node  # type: ignore[assignment]
            idx = internal.child_index_for(key)
            if idx > 0:
                low = internal.keys[idx - 1]
            if idx < len(internal.keys):
                high = internal.keys[idx]
            node = internal.children[idx]
            nodes += 1
        self.stats.insert_traversal_nodes += nodes
        return node, low, high  # type: ignore[return-value]

    def _find_leaf(self, key: Key, count: bool = True) -> LeafNode:
        """Leaf that would contain ``key``; counts lookup node accesses."""
        node = self._root
        nodes = 1
        while not node.is_leaf:
            internal: InternalNode = node  # type: ignore[assignment]
            node = internal.children[internal.child_index_for(key)]
            nodes += 1
        if count:
            self.stats.node_accesses += nodes
            self.stats.leaf_accesses += 1
        return node  # type: ignore[return-value]

    def bounds_of_leaf(
        self, leaf: LeafNode
    ) -> tuple[Optional[Key], Optional[Key]]:
        """Pivot bounds ``[low, high)`` of ``leaf`` from the parent chain.

        This recomputes — in O(height) — the same information a descent
        produces, and is used to refresh fast-path metadata after deletes
        and rebalances.
        """
        low: Optional[Key] = None
        high: Optional[Key] = None
        child: Node = leaf
        parent = child.parent
        while parent is not None and (low is None or high is None):
            idx = parent.index_of_child(child, self.stats)
            if low is None and idx > 0:
                low = parent.keys[idx - 1]
            if high is None and idx < len(parent.keys):
                high = parent.keys[idx]
            child = parent
            parent = child.parent
        return low, high

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        """Point lookup; returns ``default`` when ``key`` is absent."""
        self.stats.point_lookups += 1
        leaf = self._find_leaf(key)
        idx = leaf.find(key)
        if idx is None:
            return default
        return leaf.value_at(idx)

    def get_many(self, keys: Iterable[Key], default: Any = None) -> list[Any]:
        """Batched point lookups; returns values aligned with ``keys``
        (``default`` for absent keys) — the read-side twin of
        :meth:`insert_many`.

        The probe batch is sorted, so consecutive probes usually land in
        the same leaf or its chain successor: the batch pays one descent
        to position, then drains probes with a bisect each, advancing
        along the leaf chain instead of re-descending.  A probe more than
        :data:`_READ_CHAIN_LIMIT` leaves ahead falls back to a descent
        (or the variant's fast-path window via
        :meth:`_read_target_from_fp`).

        Advancing by leaf *content* rather than pivot bounds is safe for
        reads: the separator between a leaf and its successor satisfies
        ``leaf keys < sep <= successor.min_key``, so a probe below the
        successor's smallest key can only live in (or be absent from) the
        current leaf.  An empty chain successor (QuIT's lazy delete)
        hides its range, so the walk gives up and descends.

        Counts ``read_batches`` / ``read_chain_hits`` /
        ``read_redescents`` (plus the fast-path read counters on the
        variants); probes themselves are *not* added to
        ``point_lookups`` — batch traffic is reported separately, as on
        the write side.
        """
        key_list = keys if isinstance(keys, list) else list(keys)
        n = len(key_list)
        out = [default] * n
        if not n:
            return out
        stats = self.stats
        stats.read_batches += 1
        order = sorted(range(n), key=key_list.__getitem__)
        redescents = 0
        fp_hits = 0
        leaf: Optional[LeafNode] = None
        lk: Any = []  # leaf key view (list or typed array)
        lv: Any = []
        ln = 0  # live-entry count of the current view
        hi: Optional[Key] = None  # successor's smallest key (the horizon)
        bounded = False  # True when ``hi`` is a real horizon
        force = False  # degenerate leaf: every probe must reposition
        for pos in order:
            key = key_list[pos]
            if leaf is None or force or (bounded and key >= hi):
                # Reposition: chain-advance when the probe is near,
                # otherwise the fast-path window, otherwise a descent.
                node: Optional[LeafNode] = None
                if leaf is not None and not force:
                    cur = leaf
                    for _ in range(_READ_CHAIN_LIMIT):
                        nxt = cur.next
                        if nxt is None:
                            node = cur
                            break
                        nk, _, nn = nxt.view()
                        if not nn:  # opaque empty leaf: cannot see past
                            break
                        if key < nk[0]:
                            node = cur
                            break
                        cur = nxt
                if node is not None:
                    leaf = node
                else:
                    leaf = self._read_target_from_fp(key)
                    if leaf is None:
                        redescents += 1
                        leaf = self._find_leaf(key)
                    else:
                        fp_hits += 1
                lk, lv, ln = leaf.view()
                force = False
                nxt = leaf.next
                if nxt is None:
                    bounded = False
                else:
                    nk, _, nn = nxt.view()
                    if nn:
                        hi = nk[0]
                        bounded = True
                    elif ln:
                        # Empty successor: no trustworthy horizon.  Any
                        # probe beyond this leaf's own content re-descends
                        # (the max key itself redundantly repositions —
                        # harmless).
                        hi = lk[ln - 1]
                        bounded = True
                    else:
                        force = True
            idx = bisect_left(lk, key, 0, ln)
            if idx < ln and lk[idx] == key:
                out[pos] = lv[idx]
        stats.read_redescents += redescents
        stats.read_chain_hits += n - redescents - fp_hits
        return out

    def _read_target_from_fp(self, key: Key) -> Optional[LeafNode]:
        """Leaf serving a point read for ``key`` straight from the
        variant's fast-path pointer, or None when the window misses.
        The classical tree has no such pointer."""
        return None

    def _probe_leaf_for_read(
        self, key: Key, hint: Optional[LeafNode] = None
    ) -> LeafNode:
        """Leaf that would contain ``key``, reusing ``hint`` from a
        previous (smaller or equal) probe when the target is within
        :data:`_READ_CHAIN_LIMIT` chain hops.

        Only valid for *ascending* probe sequences where ``hint`` is the
        leaf returned for the previous probe — the walk never moves left,
        so an out-of-order probe would silently read the wrong leaf.
        Shared by the wrappers (duplicates) that batch composite-key
        probes; counts ``read_chain_hits`` / ``read_redescents``.
        """
        stats = self.stats
        if hint is not None:
            cur = hint
            for _ in range(_READ_CHAIN_LIMIT):
                nxt = cur.next
                if nxt is None:
                    stats.read_chain_hits += 1
                    return cur
                nk, _, nn = nxt.view()
                if not nn:
                    break
                if key < nk[0]:
                    stats.read_chain_hits += 1
                    return cur
                cur = nxt
        stats.read_redescents += 1
        return self._find_leaf(key)

    def range_query(self, start: Key, end: Key) -> list[tuple[Key, Any]]:
        """All entries with ``start <= key < end`` in key order (§4.4).

        One descent positions on the first leaf with ``bisect_left``;
        the leaf chain is then walked chunk-wise, each leaf contributing
        one slice.  Interior leaves are recognized with a single
        ``max_key < end`` comparison — only the boundary leaves pay a
        bisect.  Every touched leaf is counted in
        ``stats.leaf_accesses``.
        """
        stats = self.stats
        stats.range_lookups += 1
        if start >= end:
            return []
        leaf: Optional[LeafNode] = self._find_leaf(start)
        lk, lv, ln = leaf.view()
        lo = bisect_left(lk, start, 0, ln)
        out: list[tuple[Key, Any]] = []
        while leaf is not None:
            if ln:
                if lk[ln - 1] < end:
                    out.extend(zip(lk[lo:ln], lv[lo:ln]))
                else:
                    hi = bisect_left(lk, end, lo, ln)
                    out.extend(zip(lk[lo:hi], lv[lo:hi]))
                    return out
            lo = 0
            leaf = leaf.next
            if leaf is not None:
                stats.node_accesses += 1
                stats.leaf_accesses += 1
                lk, lv, ln = leaf.view()
        return out

    def range_iter(self, start: Key, end: Key) -> Iterator[tuple[Key, Any]]:
        """Lazily yield entries with ``start <= key < end`` in key order.

        Generator analogue of :meth:`range_query`: one descent via
        ``bisect_left``, then chunk-by-chunk along the leaf chain,
        short-circuiting on the last leaf whose ``max_key`` reaches
        ``end``.  Nothing is materialized, so callers can abandon the
        scan early ("next N after K" queries); each leaf's chunk is
        snapshotted as it is entered, so in-place mutation of *other*
        leaves during iteration is tolerated.
        """
        self.stats.range_lookups += 1
        if start >= end:
            return
        leaf: Optional[LeafNode] = self._find_leaf(start)
        lk, lv, ln = leaf.view()
        lo = bisect_left(lk, start, 0, ln)
        while leaf is not None:
            if ln:
                if lk[ln - 1] < end:
                    yield from zip(lk[lo:ln], lv[lo:ln])
                else:
                    hi = bisect_left(lk, end, lo, ln)
                    yield from zip(lk[lo:hi], lv[lo:hi])
                    return
            lo = 0
            leaf = leaf.next
            if leaf is not None:
                self.stats.node_accesses += 1
                self.stats.leaf_accesses += 1
                lk, lv, ln = leaf.view()

    def count_range(self, start: Key, end: Key) -> int:
        """Number of entries in ``[start, end)`` without materializing
        them: interior leaves contribute ``len(keys)``, only the two
        boundary leaves pay a bisect."""
        stats = self.stats
        stats.range_lookups += 1
        if start >= end:
            return 0
        leaf: Optional[LeafNode] = self._find_leaf(start)
        lk, _, ln = leaf.view()
        lo = bisect_left(lk, start, 0, ln)
        total = 0
        while leaf is not None:
            if ln:
                if lk[ln - 1] < end:
                    total += ln - lo
                else:
                    return total + bisect_left(lk, end, lo, ln) - lo
            lo = 0
            leaf = leaf.next
            if leaf is not None:
                stats.node_accesses += 1
                stats.leaf_accesses += 1
                lk, _, ln = leaf.view()
        return total

    def update(self, items: Iterable[tuple[Key, Any]]) -> None:
        """Insert every ``(key, value)`` pair (dict-style bulk upsert)."""
        insert = self.insert
        for key, value in items:
            insert(key, value)

    def delete_range(self, start: Key, end: Key) -> int:
        """Delete every entry with ``start <= key < end``; returns the
        number of entries removed."""
        victims = [k for k, _ in self.range_iter(start, end)]
        for key in victims:
            self.delete(key)
        return len(victims)

    # ------------------------------------------------------------------
    # Deletes
    # ------------------------------------------------------------------

    def delete(self, key: Key) -> bool:
        """Delete ``key``; returns True when the key existed (§4.4)."""
        self.stats.deletes += 1
        leaf = self._find_leaf(key, count=False)
        idx = leaf.find(key)
        if idx is None:
            return False
        leaf.remove_at(idx)
        self._size -= 1
        self._on_entry_deleted(leaf, key)
        if leaf.parent is not None and not self._skip_eager_rebalance(leaf):
            if leaf.size < self._min_leaf_fill():
                self._rebalance_leaf(leaf)
        self._after_delete()
        return True

    def _min_leaf_fill(self) -> int:
        return self.config.leaf_capacity // 2

    def _min_internal_fill(self) -> int:
        return max(2, self.config.internal_capacity // 2)

    def _skip_eager_rebalance(self, leaf: LeafNode) -> bool:
        """QuIT overrides this: deletes in ``pole`` skip eager rebalance."""
        return False

    def _on_entry_deleted(self, leaf: LeafNode, key: Key) -> None:
        """Hook: an entry was just removed from ``leaf``."""

    def _on_leaf_removed(self, leaf: LeafNode, merged_into: LeafNode) -> None:
        """Hook: ``leaf`` was merged away into ``merged_into``."""

    def _after_delete(self) -> None:
        """Hook: a delete (and any rebalancing) finished."""

    def _rebalance_leaf(self, leaf: LeafNode) -> None:
        """Restore the min-fill invariant for an underfull ``leaf`` by
        borrowing from a same-parent sibling or merging with one."""
        parent = leaf.parent
        if parent is None:
            return
        idx = parent.index_of_child(leaf, self.stats)
        min_fill = self._min_leaf_fill()
        left = parent.children[idx - 1] if idx > 0 else None
        right = (
            parent.children[idx + 1]
            if idx + 1 < len(parent.children)
            else None
        )
        if left is not None and left.size > min_fill:
            self._borrow_from_left_leaf(parent, idx, left, leaf)
            return
        if right is not None and right.size > min_fill:
            self._borrow_from_right_leaf(parent, idx, leaf, right)
            return
        if left is not None:
            self._merge_leaves(parent, idx - 1, left, leaf)
        elif right is not None:
            self._merge_leaves(parent, idx, leaf, right)

    def _borrow_from_left_leaf(
        self, parent: InternalNode, idx: int, left: LeafNode, leaf: LeafNode
    ) -> None:
        key, value = left.remove_at(left.size - 1)
        leaf.insert_entry(key, value)
        parent.keys[idx - 1] = key

    def _borrow_from_right_leaf(
        self, parent: InternalNode, idx: int, leaf: LeafNode, right: LeafNode
    ) -> None:
        key, value = right.remove_at(0)
        leaf.append_entry(key, value)
        parent.keys[idx] = right.min_key

    def _merge_leaves(
        self,
        parent: InternalNode,
        sep_idx: int,
        left: LeafNode,
        right: LeafNode,
    ) -> None:
        """Fold ``right`` into ``left`` and drop the separator at
        ``sep_idx``; propagates underflow upward."""
        rk, rv, rn = right.view()
        left.extend_entries(rk[:rn], rv[:rn])
        left.next = right.next
        if right.next is not None:
            right.next.prev = left
        if right is self._tail:
            self._tail = left
        parent.keys.pop(sep_idx)
        parent.children.pop(sep_idx + 1)
        self._on_leaf_removed(right, left)
        self._shrink_or_rebalance_internal(parent)

    def _shrink_or_rebalance_internal(self, node: InternalNode) -> None:
        if node.parent is None:
            if len(node.children) == 1:
                self._root = node.children[0]
                self._root.parent = None
                self._height -= 1
            return
        if node.size < self._min_internal_fill():
            self._rebalance_internal(node)

    def _rebalance_internal(self, node: InternalNode) -> None:
        parent = node.parent
        if parent is None:
            raise TreeInvariantError(
                "_rebalance_internal called on a parentless node"
            )
        idx = parent.index_of_child(node, self.stats)
        min_fill = self._min_internal_fill()
        left = parent.children[idx - 1] if idx > 0 else None
        right = (
            parent.children[idx + 1]
            if idx + 1 < len(parent.children)
            else None
        )
        if left is not None and left.size > min_fill:
            # Rotate through the parent: parent separator comes down, the
            # left sibling's last key goes up.
            node.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child = left.children.pop()
            child.parent = node
            node.children.insert(0, child)
            return
        if right is not None and right.size > min_fill:
            node.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child = right.children.pop(0)
            child.parent = node
            node.children.append(child)
            return
        if left is not None:
            self._merge_internals(parent, idx - 1, left, node)
        elif right is not None:
            self._merge_internals(parent, idx, node, right)

    def _merge_internals(
        self,
        parent: InternalNode,
        sep_idx: int,
        left: InternalNode,
        right: InternalNode,
    ) -> None:
        left.keys.append(parent.keys[sep_idx])
        left.keys.extend(right.keys)
        for child in right.children:
            child.parent = left
        left.children.extend(right.children)
        parent.keys.pop(sep_idx)
        parent.children.pop(sep_idx + 1)
        self._shrink_or_rebalance_internal(parent)

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def bulk_load(
        self,
        items: Iterable[tuple[Key, Any]],
        fill_factor: float = 1.0,
    ) -> None:
        """Load sorted, unique ``(key, value)`` pairs into an *empty* tree.

        Leaves are packed to ``fill_factor`` of capacity and the internal
        levels are built bottom-up.
        """
        if self._size:
            raise ValueError("bulk_load requires an empty tree")
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")
        pairs = list(items)
        if not pairs:
            return
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a >= b:
                raise ValueError("bulk_load input must be strictly sorted")
        per_leaf = max(1, int(self.config.leaf_capacity * fill_factor))
        leaves: list[LeafNode] = []
        for i in range(0, len(pairs), per_leaf):
            leaf = self._new_leaf()
            chunk = pairs[i: i + per_leaf]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
                leaf.prev = leaves[-1]
            leaves.append(leaf)
        # Avoid leaving a lonely sub-min-fill last leaf: steal from its
        # predecessor so deletes keep their invariants.  Whole-list
        # reassignment (not in-place splicing) so the gapped layout's
        # bridge setters repack correctly.
        if len(leaves) > 1 and leaves[-1].size < self._min_leaf_fill():
            last, prev = leaves[-1], leaves[-2]
            need = self._min_leaf_fill() - last.size
            move = min(need, prev.size - 1)
            pk, pv = prev.keys, prev.values
            last.keys = pk[-move:] + last.keys
            last.values = pv[-move:] + last.values
            prev.keys = pk[:-move]
            prev.values = pv[:-move]
        self._head = leaves[0]
        self._tail = leaves[-1]
        self._size = len(pairs)
        self._root = self._build_internal_levels(leaves)
        self._height = self._measure_height()

    def _build_internal_levels(self, level: list[Node]) -> Node:
        cap = self.config.internal_capacity
        while len(level) > 1:
            parents: list[Node] = []
            i = 0
            n = len(level)
            while i < n:
                take = min(cap, n - i)
                # Never leave a trailing group of one child.
                if n - i - take == 1:
                    take -= 1
                group = level[i: i + take]
                node = InternalNode()
                node.children = group
                node.keys = [self._subtree_min(c) for c in group[1:]]
                for child in group:
                    child.parent = node
                parents.append(node)
                i += take
            level = parents
        return level[0]

    @staticmethod
    def _subtree_min(node: Node) -> Key:
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        return node.min_key  # type: ignore[union-attr]

    def _measure_height(self) -> int:
        node = self._root
        height = 1
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
            height += 1
        return height

    def append_run(
        self,
        run: Iterable[tuple[Key, Any]],
        fill_factor: float = 1.0,
    ) -> int:
        """Append a sorted run of entries, all strictly greater than the
        current maximum key, building packed leaves at the tail.

        This is the bulk-append primitive SWARE's opportunistic bulk
        loading uses (§2).  Returns the number of entries appended.
        """
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")
        per_leaf = max(2, int(self.config.leaf_capacity * fill_factor))
        appended = 0
        prev_key = self._tail.max_key if self._tail.size else None
        for key, value in run:
            if prev_key is not None and key <= prev_key:
                raise ValueError(
                    f"append_run keys must exceed the current max "
                    f"({key!r} <= {prev_key!r})"
                )
            prev_key = key
            tail = self._tail
            if tail.size >= per_leaf:
                fresh = self._new_leaf()
                fresh.keys = [key]
                fresh.values = [value]
                fresh.prev = tail
                fresh.next = None
                tail.next = fresh
                self._tail = fresh
                self._insert_into_parent(tail, key, fresh)
            else:
                tail.append_entry(key, value)
            appended += 1
            self._size += 1
        return appended

    def bulk_insert_run(
        self,
        run: list[tuple[Key, Any]],
        fill_factor: float = 1.0,
    ) -> int:
        """Merge a sorted run of entries into the tree, splicing packed
        leaves in place (SWARE's opportunistic bulk load, generalized to
        land anywhere in the key space).

        The run is partitioned at existing pivot boundaries: each segment
        costs one descent, then its target leaf is rebuilt together with
        the segment into leaves packed to ``fill_factor``.  Near-sorted
        flushes produce long segments (few descents); scrambled flushes
        degrade gracefully to one descent per entry, matching the paper's
        observation that SWARE falls back to B+-tree behaviour.

        Returns the number of *new* keys added (duplicates upsert).
        """
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")
        for (a, _), (b, _) in zip(run, run[1:]):
            if a >= b:
                raise ValueError("bulk_insert_run input must be strictly sorted")
        added_total = 0
        i = 0
        n = len(run)
        while i < n:
            leaf, _, high = self._descend_for_insert(run[i][0])
            self.stats.bulk_splice_segments += 1
            j = i
            while j < n and (high is None or run[j][0] < high):
                j += 1
            added_total += self._splice_into_leaf(
                leaf, run[i:j], fill_factor
            )
            i = j
        self._after_bulk_splice()
        return added_total

    def _splice_into_leaf(
        self,
        leaf: LeafNode,
        segment: list[tuple[Key, Any]],
        fill_factor: float,
    ) -> int:
        """Merge ``segment`` (sorted, within ``leaf``'s pivot range) into
        ``leaf``, rebuilding it into packed leaves.  Returns new-key count.
        """
        added, _ = self._apply_run_segment(
            leaf,
            [k for k, _ in segment],
            [v for _, v in segment],
            fill_factor,
        )
        return added

    def _apply_run_segment(
        self,
        leaf: LeafNode,
        seg_keys: list[Key],
        seg_vals: list[Any],
        fill_factor: float = 1.0,
    ) -> tuple[int, LeafNode]:
        """Place a strictly-increasing segment (within ``leaf``'s pivot
        range) into ``leaf`` in one motion.

        When the segment fits, this is a single :meth:`LeafNode.apply_run`
        (one-two bisects + one slice assignment).  On overflow
        :meth:`_apply_run_overflow` rebuilds the merged result into leaves
        packed to ``fill_factor``.

        Returns ``(added, last_leaf)`` where ``last_leaf`` is the leaf
        holding the segment's largest key after any rebuild.
        """
        if leaf.size + len(seg_keys) <= self.config.leaf_capacity:
            added = leaf.apply_run(seg_keys, seg_vals)
            self._size += added
            return added, leaf
        return self._apply_run_overflow(leaf, seg_keys, seg_vals, fill_factor)

    def _apply_run_overflow(
        self,
        leaf: LeafNode,
        seg_keys: list[Key],
        seg_vals: list[Any],
        fill_factor: float,
    ) -> tuple[int, LeafNode]:
        """Overflow path of :meth:`_apply_run_segment`: merge ``leaf`` with
        the segment and rebuild the result into leaves packed to
        ``fill_factor`` — full right siblings are built directly,
        bulk-load style, instead of splitting repeatedly."""
        merged_keys, merged_vals, added = merge_run(
            leaf.keys, leaf.values, seg_keys, seg_vals
        )
        self._size += added
        if len(merged_keys) <= self.config.leaf_capacity:
            leaf.keys = merged_keys
            leaf.values = merged_vals
            return added, leaf
        per_leaf = max(2, int(self.config.leaf_capacity * fill_factor))
        cuts = list(range(per_leaf, len(merged_keys), per_leaf))
        # Keep the last chunk at or above min fill by moving the final cut.
        if cuts and len(merged_keys) - cuts[-1] < self._min_leaf_fill():
            cuts[-1] = max(
                cuts[-1] - (self._min_leaf_fill() - (len(merged_keys) - cuts[-1])),
                (cuts[-2] + 1) if len(cuts) > 1 else 1,
            )
        bounds = [0, *cuts, len(merged_keys)]
        leaf.keys = merged_keys[: bounds[1]]
        leaf.values = merged_vals[: bounds[1]]
        prev = leaf
        for lo, hi in zip(bounds[1:], bounds[2:]):
            node = self._new_leaf()
            node.keys = merged_keys[lo:hi]
            node.values = merged_vals[lo:hi]
            node.next = prev.next
            node.prev = prev
            if prev.next is not None:
                prev.next.prev = node
            prev.next = node
            if prev is self._tail:
                self._tail = node
            self.stats.leaf_splits += 1
            self._insert_into_parent(prev, merged_keys[lo], node)
            prev = node
        return added, prev

    def _after_bulk_splice(self) -> None:
        """Hook: a bulk splice finished (fast-path variants refresh their
        cached bounds here)."""

    # ------------------------------------------------------------------
    # Batched ingest
    # ------------------------------------------------------------------

    def insert_many(
        self,
        items: Iterable[tuple[Key, Any]],
        fill_factor: float = BATCH_FILL_FACTOR,
    ) -> int:
        """Batched upsert: equivalent to ``for k, v in items: insert(k, v)``
        but with the per-key interpreter overhead amortized away.

        The batch is scanned once and carved into maximal non-decreasing
        runs (:func:`repro.core.batch.carve_runs`); each run is placed
        with at most one descent per pivot-bounded segment, and each
        segment lands in its leaf with one slice assignment instead of
        per-key bisect + ``list.insert`` calls.  Run-driven overflows
        build right siblings packed to ``fill_factor`` directly
        (bulk-load style) rather than splitting repeatedly.  Fast-path
        variants serve a segment straight from their ``tail``/``lil``/
        ``pole`` pointer when the run starts in range, skipping even the
        descent.

        ``fill_factor`` defaults to :data:`BATCH_FILL_FACTOR` rather than
        1.0: leaves rebuilt completely full overflow again on the very
        next run that lands in them, so a little headroom buys fewer
        merge-and-rebuild cycles across batches (and a leaf occupancy
        close to a per-key-built tree's steady state).  Pass 1.0 for
        final, read-mostly batches.

        A fragmented batch (average detected run much shorter than a
        leaf) is *coalesced* first: the items are stable-sorted by key —
        Timsort merges the very runs the detector counted, at C speed —
        and applied as a single run.  Stable sort keeps duplicate keys in
        arrival order, so last-write-wins semantics are preserved
        exactly.  Batches whose runs are long are applied in arrival
        order without sorting, which is the paper-aligned path: intrinsic
        sortedness is exploited, not manufactured.

        Unlike :meth:`bulk_load` the tree may be non-empty and the batch
        arbitrary: unsorted input, duplicate keys (the latest occurrence
        wins) and keys already present (upsert) are all honoured.
        Returns the number of *new* keys added.
        """
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")
        stats = self.stats
        items, n_runs = probe_runs(items)
        if n_runs > 1 and 2 * len(items) < self.config.leaf_capacity * n_runs:
            # Sort by key only (itemgetter), never by value — values may
            # not be comparable, and key-only sorting is what keeps the
            # sort stable w.r.t. arrival order of duplicates.
            items = sorted(items, key=_key_of)
            stats.batch_coalesced += 1
        added = 0
        hint: Optional[tuple[LeafNode, Optional[Key], Optional[Key]]] = None
        for run_keys, run_vals in carve_runs(items):
            stats.batch_runs += 1
            stats.batch_inserts += len(run_keys)
            run_added, hint = self._insert_run(
                run_keys, run_vals, fill_factor, hint
            )
            added += run_added
        return added

    def _insert_run(
        self,
        run_keys: list[Key],
        run_vals: list[Any],
        fill_factor: float = BATCH_FILL_FACTOR,
        hint: Optional[tuple[LeafNode, Optional[Key], Optional[Key]]] = None,
    ) -> tuple[int, Optional[tuple[LeafNode, Optional[Key], Optional[Key]]]]:
        """Apply one strictly-increasing run, segmenting it at existing
        pivot boundaries (each segment = one target leaf).

        Only the run's first segment pays a descent (or a fast-path hit);
        a run that continues past a leaf's upper bound is chained along
        the leaf list — the leaves partition the key space in order, so
        the chain successor of the leaf that absorbed a segment is the
        target for keys starting at its upper bound.

        ``hint`` is the batch-local frontier: the rightmost ``(leaf, low,
        high)`` touched by earlier runs of the same ``insert_many`` call.
        A near-sorted stream breaks a run with one backward outlier and
        then resumes right where the previous run left off, so trying the
        frontier before descending turns the common two-descents-per-
        outlier pattern into one.  The hint is only valid while nothing
        else mutates the tree, which holds within a single ``insert_many``
        call; callers that release locks between runs (the concurrent
        wrapper) must pass ``hint=None`` each time.

        Returns ``(added, hint)`` — the number of new keys added and the
        updated frontier for the next run.
        """
        # Hot loop: locals are hoisted and the fits-in-leaf case (the vast
        # majority of segments) is inlined rather than routed through
        # _apply_run_segment — per-segment call overhead is exactly the
        # cost this path exists to amortize.
        cap = self.config.leaf_capacity
        added = 0
        i = 0
        n = len(run_keys)
        leaf: Optional[LeafNode] = None
        low: Optional[Key] = None
        high: Optional[Key] = None
        last_leaf: Optional[LeafNode] = None
        if hint is not None:
            h_leaf, h_low, h_high = hint
        else:
            h_leaf = h_low = h_high = None
        segments = 0
        chained = 0
        while i < n:
            if leaf is None:
                k0 = run_keys[i]
                target = self._run_target_from_fp(k0)
                if target is not None:
                    leaf, low, high = target
                elif (
                    h_leaf is not None
                    and (h_low is None or k0 >= h_low)
                    and (h_high is None or k0 < h_high)
                ):
                    leaf, low, high = h_leaf, h_low, h_high
                    chained += 1
                else:
                    leaf, low, high = self._descend_for_insert(k0)
            segments += 1
            j = n if high is None else bisect_left(run_keys, high, i)
            if i == 0 and j == n:
                seg_keys, seg_vals = run_keys, run_vals
            else:
                seg_keys, seg_vals = run_keys[i:j], run_vals[i:j]
            if leaf.size + len(seg_keys) <= cap:
                seg_added = leaf.apply_run(seg_keys, seg_vals)
                self._size += seg_added
                last_leaf = leaf
            else:
                seg_added, last_leaf = self._apply_run_overflow(
                    leaf, seg_keys, seg_vals, fill_factor
                )
                if last_leaf is not leaf:
                    # The overflow rebuilt the leaf into packed siblings;
                    # last_leaf is the rightmost piece and its first key
                    # is exactly the separator that bounds it below.
                    low = last_leaf.min_key
            # Track the frontier.  Long segments are the in-order bulk of
            # the stream — where the next run will resume — while short
            # segments are typically displaced outliers that should not
            # steal the hint.  A short segment that lands in the hint
            # leaf itself must still refresh it: an overflow rebuild
            # narrows the leaf's bounds.
            if (
                j - i >= _HINT_MIN_SEGMENT
                or h_leaf is None
                or leaf is h_leaf
                or last_leaf is h_leaf
            ):
                h_leaf, h_low, h_high = last_leaf, low, high
            added += seg_added
            i = j
            leaf = None
            if i < n:
                # The run continues past this leaf's range; its chain
                # successor is the target for the next keys.  The
                # successor's pivot bounds would cost a parent walk, so
                # use O(1) conservative content bounds instead: a key
                # between the successor's current smallest and largest
                # keys is provably inside its pivot range.  The rightmost
                # leaf is unbounded above, so for it only the lower check
                # applies.  Keys in the gaps between content bounds and
                # true pivot bounds fall back to a descent, which routes
                # them correctly.
                nxt = last_leaf.next
                if nxt is not None:
                    nxt_keys, _, nxt_n = nxt.view()
                    if nxt_n and run_keys[i] >= nxt_keys[0]:
                        if nxt.next is None:
                            leaf = nxt
                            low = nxt_keys[0]
                            high = None
                            chained += 1
                        elif run_keys[i] < nxt_keys[nxt_n - 1]:
                            leaf = nxt
                            low = nxt_keys[0]
                            high = nxt_keys[nxt_n - 1]
                            chained += 1
        stats = self.stats
        stats.batch_segments += segments
        stats.batch_chained_segments += chained
        if last_leaf is not None:
            self._after_insert_run(last_leaf)
        if h_leaf is None:
            return added, None
        return added, (h_leaf, h_low, h_high)

    def _run_target_from_fp(
        self, key: Key
    ) -> Optional[tuple[LeafNode, Optional[Key], Optional[Key]]]:
        """Target leaf (plus pivot bounds) for a run starting at ``key``,
        when the variant's fast-path pointer can serve it without a
        descent.  The classical tree has no such pointer."""
        return None

    def _after_insert_run(self, last_leaf: LeafNode) -> None:
        """Hook: a run was applied and its largest key landed in
        ``last_leaf``.  Fast-path variants retarget their pointer here —
        once per run, not per key."""

    # ------------------------------------------------------------------
    # Iteration and introspection
    # ------------------------------------------------------------------

    def leaves(self) -> Iterator[LeafNode]:
        """Iterate leaves left to right."""
        leaf: Optional[LeafNode] = self._head
        while leaf is not None:
            yield leaf
            leaf = leaf.next

    def items(self) -> Iterator[tuple[Key, Any]]:
        """Iterate all entries in key order."""
        for leaf in self.leaves():
            yield from leaf.items()

    def iter_from(self, start: Key) -> Iterator[tuple[Key, Any]]:
        """Iterate entries with ``key >= start`` in key order.

        The cursor API for open-ended scans: one descent to position,
        then the leaf chain.  Unlike :meth:`range_query` nothing is
        materialized, so callers can stop early for "next N after K"
        queries.
        """
        leaf: Optional[LeafNode] = self._find_leaf(start)
        first = True
        while leaf is not None:
            if first:
                for k, v in leaf.items():
                    if k >= start:
                        yield k, v
                first = False
            else:
                yield from leaf.items()
            leaf = leaf.next

    def keys(self) -> Iterator[Key]:
        """Iterate all keys in order."""
        for k, _ in self.items():
            yield k

    def min_key(self) -> Optional[Key]:
        """Smallest key, or None when empty."""
        return self._head.min_key if self._head.size else None

    def max_key(self) -> Optional[Key]:
        """Largest key, or None when empty."""
        return self._tail.max_key if self._tail.size else None

    def occupancy(self) -> OccupancyStats:
        """Leaf-occupancy summary (Fig. 10a / Fig. 11 metric)."""
        stats = OccupancyStats(capacity=self.config.leaf_capacity)
        occs: list[float] = []
        for leaf in self.leaves():
            stats.leaf_count += 1
            stats.entries += leaf.size
            occs.append(leaf.size / self.config.leaf_capacity)
        stats.internal_count = self._count_internal(self._root)
        if occs:
            stats.min_occupancy = min(occs)
            stats.max_occupancy = max(occs)
        return stats

    def _count_internal(self, node: Node) -> int:
        if node.is_leaf:
            return 0
        internal: InternalNode = node  # type: ignore[assignment]
        return 1 + sum(self._count_internal(c) for c in internal.children)

    def memory_bytes(self) -> int:
        """Estimated footprint assuming fixed-size pages (Table 2 metric).

        Like a paged system, every node occupies a full page regardless of
        fill, so footprint is proportional to node count.
        """
        occ = self.occupancy()
        leaf_page = (
            NODE_HEADER_BYTES + self.config.leaf_capacity * ENTRY_BYTES
        )
        internal_page = (
            NODE_HEADER_BYTES + self.config.internal_capacity * PIVOT_BYTES
        )
        return occ.leaf_count * leaf_page + occ.internal_count * internal_page

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(
        self, check_min_fill: bool = True, report: bool = False
    ) -> Optional[list[str]]:
        """Check every structural invariant.

        With ``report=False`` (default) the first violation raises
        :class:`TreeInvariantError`; with ``report=True`` nothing raises
        — every violated invariant is collected and the list returned
        (empty for a healthy tree), which is what ``scrub()`` and
        operator tooling consume.  Violations are raised explicitly (not
        via ``assert``), so validation also works under ``python -O``.

        ``check_min_fill=False`` relaxes the leaf minimum-fill bound
        (QuIT's variable split intentionally creates small leaves).
        """
        errors: Optional[list[str]] = [] if report else None
        self._invariant(
            self._root.parent is None, "root must have no parent", errors
        )
        leaves_via_tree: list[LeafNode] = []
        count = self._validate_node(
            self._root, None, None, self._height, check_min_fill,
            leaves_via_tree, errors,
        )
        self._invariant(
            count == self._size,
            f"size mismatch: counted {count}, recorded {self._size}",
            errors,
        )
        # The chain walk bounds its own length: a corrupt ``next`` link
        # could form a cycle, and report mode must terminate anyway.
        chain: list[LeafNode] = []
        leaf: Optional[LeafNode] = self._head
        limit = 2 * len(leaves_via_tree) + 2
        while leaf is not None and len(chain) <= limit:
            chain.append(leaf)
            leaf = leaf.next
        if leaf is not None:
            self._invariant(
                False, "leaf chain longer than the tree (cycle?)", errors
            )
        self._invariant(
            [id(x) for x in chain] == [id(x) for x in leaves_via_tree],
            "leaf chain does not match tree order",
            errors,
        )
        if chain:
            self._invariant(
                chain[0] is self._head, "head pointer astray", errors
            )
            self._invariant(
                chain[-1] is self._tail, "tail pointer astray", errors
            )
        for a, b in zip(chain, chain[1:]):
            self._invariant(b.prev is a, "broken prev link", errors)
        flat = [k for lf in chain for k in lf.keys]
        self._invariant(
            flat == sorted(set(flat)), "global key order violated", errors
        )
        self._invariant(
            self._height == self._measure_height(), "height drifted", errors
        )
        return errors

    def check(self, check_min_fill: bool = True) -> list[str]:
        """Non-raising validation: the list of violated invariants.

        Unlike :meth:`validate`, which stops at the first violation,
        this surveys the whole structure — an operator diagnosing a
        recovered tree wants every problem, not the first.
        """
        result = self.validate(check_min_fill=check_min_fill, report=True)
        if result is None:
            raise TreeInvariantError("validate(report=True) returned None")
        return result

    @staticmethod
    def _invariant(
        cond: bool, message: str, errors: Optional[list[str]]
    ) -> bool:
        """Raise ``TreeInvariantError`` (or collect into ``errors``)."""
        if cond:
            return True
        if errors is None:
            raise TreeInvariantError(message)
        errors.append(message)
        return False

    def _validate_node(
        self,
        node: Node,
        low: Optional[Key],
        high: Optional[Key],
        depth: int,
        check_min_fill: bool,
        leaves_out: list[LeafNode],
        errors: Optional[list[str]],
    ) -> int:
        require = self._invariant
        keys = node.keys
        require(
            all(a < b for a, b in zip(keys, keys[1:])),
            f"unsorted keys in {node!r}",
            errors,
        )
        if keys:
            if low is not None:
                require(
                    keys[0] >= low, f"key below lower pivot in {node!r}",
                    errors,
                )
            if high is not None:
                require(
                    keys[-1] < high, f"key above upper pivot in {node!r}",
                    errors,
                )
        if node.is_leaf:
            leaf: LeafNode = node  # type: ignore[assignment]
            require(depth == 1, "leaves must share one level", errors)
            if isinstance(leaf, GappedLeafNode):
                require(
                    len(leaf.skeys) == len(leaf.svals),
                    f"slot slab length mismatch in {leaf!r}",
                    errors,
                )
                require(
                    0 <= leaf.fill <= len(leaf.skeys),
                    f"fill outside slot slab in {leaf!r}",
                    errors,
                )
                require(
                    0 <= leaf.gap <= leaf.fill,
                    f"gap cursor outside live range in {leaf!r}",
                    errors,
                )
                require(
                    len(leaf.skeys) >= self.config.leaf_capacity,
                    f"slot slab below capacity in {leaf!r}",
                    errors,
                )
            else:
                require(
                    len(leaf.keys) == len(leaf.values),
                    f"keys/values length mismatch in {leaf!r}",
                    errors,
                )
            require(
                leaf.size <= self.config.leaf_capacity,
                f"leaf {leaf!r} above capacity",
                errors,
            )
            if check_min_fill and leaf.parent is not None:
                require(
                    leaf.size >= self._min_leaf_fill(),
                    f"leaf {leaf!r} below min fill",
                    errors,
                )
            leaves_out.append(leaf)
            return leaf.size
        internal: InternalNode = node  # type: ignore[assignment]
        require(
            len(internal.children) == len(internal.keys) + 1,
            f"child/separator count mismatch in {internal!r}",
            errors,
        )
        require(
            internal.size <= self.config.internal_capacity + 1,
            f"internal {internal!r} above capacity",
            errors,
        )
        if internal.parent is not None:
            require(
                internal.size >= 2, "internal node with < 2 children",
                errors,
            )
        total = 0
        for i, child in enumerate(internal.children):
            require(
                child.parent is internal, "broken parent pointer", errors
            )
            child_low = internal.keys[i - 1] if i > 0 else low
            child_high = (
                internal.keys[i] if i < len(internal.keys) else high
            )
            total += self._validate_node(
                child, child_low, child_high, depth - 1, check_min_fill,
                leaves_out, errors,
            )
        return total

    # ------------------------------------------------------------------
    # Scrubbing (post-recovery hygiene)
    # ------------------------------------------------------------------

    def scrub(self) -> "ScrubReport":
        """Verify derived/auxiliary state and repair what can be reset.

        The classical tree keeps no fast-path metadata, so its scrub
        only audits the ``head``/``tail`` chain endpoints (repairable by
        rescanning the chain).  Fast-path variants extend this with
        ``lil``/``pole``/``tail`` pointer checks — see
        :meth:`repro.core.fastpath.FastPathTree.scrub`.  Structural
        damage (which scrubbing cannot repair) is reported via
        :meth:`check`, not here.
        """
        report = ScrubReport(variant=self.name)
        self.stats.scrub_checks += 1
        leaf: Optional[LeafNode] = self._head
        last = leaf
        hops = 0
        while leaf is not None and leaf.next is not None:
            last = leaf.next
            leaf = leaf.next
            hops += 1
            if hops > 2 * self._size + 2:  # cycle: unrepairable here
                report.issues.append("leaf chain does not terminate")
                return report
        if last is not self._tail:
            report.issues.append("tail pointer does not end the chain")
            self._tail = last  # type: ignore[assignment]
            report.repairs += 1
            self.stats.scrub_resets += 1
        return report


class _Missing:
    """Sentinel distinguishing "absent" from a stored None value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
