"""Shared machinery for fast-path tree variants.

A fast-path variant keeps a :class:`~repro.core.metadata.FastPathState`
(leaf pointer + admissible key range) and serves an insert through it —
without any tree traversal — whenever the key falls inside the range.
Everything else (the traversal insert, splits, deletes, lookups) is
inherited from :class:`~repro.core.bptree.BPlusTree`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Optional

from .bptree import BPlusTree
from .config import TreeConfig
from .metadata import FastPathState
from .node import GappedLeafNode, Key, LeafNode
from .stats import ScrubReport


class FastPathTree(BPlusTree):
    """Base class for tail / lil / pole / QuIT variants."""

    def __init__(self, config: Optional[TreeConfig] = None) -> None:
        super().__init__(config)
        self._fp = self._make_fp_state()
        self._fp.leaf = self._head
        # Branch once here, not per insert: the gapped fast path inlines
        # the slot-claim against the leaf's slot arrays directly.  The
        # capacity is cached for the same reason (config is frozen).
        self._gapped = self.config.layout == "gapped"
        self._leaf_cap = self.config.leaf_capacity

    def _make_fp_state(self) -> FastPathState:
        return FastPathState()

    @property
    def fast_path_leaf(self) -> Optional[LeafNode]:
        """The current fast-path leaf (exposed for tests/inspection)."""
        return self._fp.leaf

    @property
    def fast_path_bounds(self) -> tuple[Optional[Key], Optional[Key]]:
        """The fast path's admissible ``[low, high)`` key range."""
        return self._fp.low, self._fp.high

    # ------------------------------------------------------------------
    # Insert dispatch
    # ------------------------------------------------------------------

    def insert(self, key: Key, value: Any = None) -> None:
        """Insert via the fast path when the key is in range, else via a
        classical top-insert.

        The in-range, leaf-has-room case is fully inlined: it is the
        operation the fast path exists for, and each saved Python call
        measurably widens the fast-vs-top cost gap the paper measures.
        """
        if self._fast_path_accepts(key):
            self.stats.fast_inserts += 1
            fp = self._fp
            leaf = fp.leaf
            if self._gapped:
                # Slot-array fast path: an insert landing at the leaf's
                # gap cursor is two comparisons and two C-level stores —
                # no bisect, no shifting.  The slab is always at least
                # leaf_capacity long, so ``fill < capacity`` implies a
                # gap slot exists.  (``gap_hits`` is counted only on the
                # out-of-line ``insert_entry`` path — a per-hit counter
                # bump here would cost as much as the shift it avoids.)
                gleaf: GappedLeafNode = leaf  # type: ignore[assignment]
                fill = gleaf.fill
                if fill < self._leaf_cap:
                    gap = gleaf.gap
                    skeys = gleaf.skeys
                    if (gap == 0 or skeys[gap - 1] < key) and (
                        (hi := gleaf.gap_hi) is None or key < hi
                    ):
                        try:
                            skeys[gap] = key
                        except (TypeError, OverflowError):
                            gleaf._demote()
                            gleaf.skeys[gap] = key
                        gleaf.svals[gap] = value
                        gleaf.gap = gap + 1
                        gleaf.fill = fill + 1
                        self._size += 1
                    elif gleaf._gap_insert(key, value):
                        # Cursor miss with gap slots free (fill < cap
                        # implies the slab has room): skip straight to
                        # the gap-migrating insert.
                        self._size += 1
                else:
                    leaf, _, _ = self._leaf_insert(
                        gleaf, key, value, fp.low, fp.high
                    )
            else:
                keys = leaf.keys
                if len(keys) < self._leaf_cap:
                    if not keys or key > keys[-1]:
                        keys.append(key)
                        leaf.values.append(value)
                        self._size += 1
                    else:
                        idx = bisect_left(keys, key)
                        if keys[idx] == key:
                            leaf.values[idx] = value
                        else:
                            keys.insert(idx, key)
                            leaf.values.insert(idx, value)
                            self._size += 1
                else:
                    leaf, _, _ = self._leaf_insert(
                        leaf, key, value, fp.low, fp.high
                    )
            self._after_fast_insert(leaf, key)
        else:
            self._top_insert(key, value)

    def _fast_path_accepts(self, key: Key) -> bool:
        """Whether the fast path may serve ``key`` (variants refine)."""
        return self._fp.accepts(key)

    def _after_fast_insert(self, leaf: LeafNode, key: Key) -> None:
        """Hook invoked after a fast-path insert lands in ``leaf``."""

    # ------------------------------------------------------------------
    # Fast-path-aware reads
    # ------------------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        """Point lookup that probes the fast-path window before descending.

        The insert fast path maintains the invariant that a key inside
        ``[fp_min, fp_max)`` belongs to the cached leaf (inserts place it
        there without a descent), so an in-window read can serve from
        that leaf directly — read-mostly phases of near-sorted workloads
        skip the root entirely.  Window hits and misses are counted in
        ``read_fast_hits`` / ``read_fast_misses``, the read analogues of
        ``fast_inserts`` / ``top_inserts``.
        """
        # Window check and descent are inlined (no _fast_path_accepts or
        # super().get dispatch): the out-of-window path must stay within
        # noise of the plain B+-tree get, which Fig. 10b's no-read-penalty
        # property measures.  The generic [low, high) test is exact for
        # every variant — the tail pins fp.high to None by construction.
        stats = self.stats
        fp = self._fp
        leaf = fp.leaf
        if (
            leaf is not None
            and (fp.low is None or key >= fp.low)
            and (fp.high is None or key < fp.high)
        ):
            stats.read_fast_hits += 1
            stats.point_lookups += 1
            stats.node_accesses += 1
            stats.leaf_accesses += 1
        else:
            stats.read_fast_misses += 1
            stats.point_lookups += 1
            leaf = self._find_leaf(key)
        idx = leaf.find(key)
        if idx is None:
            return default
        return leaf.value_at(idx)

    def _read_target_from_fp(self, key: Key) -> Optional[LeafNode]:
        """Serve a batched-read repositioning from the fast-path pointer
        when the probe falls in the window — the whole group of probes
        draining into that leaf skips the descent, not just one."""
        if self._fast_path_accepts(key):
            self.stats.read_fast_hits += 1
            return self._fp.leaf
        self.stats.read_fast_misses += 1
        return None

    # ------------------------------------------------------------------
    # Batched ingest
    # ------------------------------------------------------------------

    def _run_target_from_fp(
        self, key: Key
    ) -> Optional[tuple[LeafNode, Optional[Key], Optional[Key]]]:
        """Serve a run segment straight from the fast-path pointer when
        its first key is in range — the batch analogue of the per-key
        fast insert: the whole segment skips the descent, not just one
        entry."""
        if self._fast_path_accepts(key):
            fp = self._fp
            self.stats.batch_fast_segments += 1
            return fp.leaf, fp.low, fp.high
        return None

    def _after_insert_run(self, leaf: LeafNode) -> None:
        """Retarget the fast path to the leaf holding the run's tail.

        This is exactly lil's eager retargeting rule generalized to runs
        — the pointer lands where the last key of the run landed; the
        tail and pole variants override it with their own pinning
        policies.  O(height) once per run — amortized over the whole
        run, unlike the per-key bookkeeping of ``insert``.
        """
        fp = self._fp
        fp.leaf = leaf
        fp.low, fp.high = self.bounds_of_leaf(leaf)

    # ------------------------------------------------------------------
    # Metadata upkeep on structural changes
    # ------------------------------------------------------------------

    def _refresh_fp_bounds(self) -> None:
        """Recompute the fast-path leaf's pivot bounds from the tree.

        Used after deletes: borrows and merges move separators, so the
        cached range may no longer bracket the leaf.  O(height).
        """
        leaf = self._fp.leaf
        if leaf is None:
            return
        self._fp.low, self._fp.high = self.bounds_of_leaf(leaf)

    def _on_leaf_removed(self, leaf: LeafNode, merged_into: LeafNode) -> None:
        if self._fp.leaf is leaf:
            self._fp.leaf = merged_into

    def _after_delete(self) -> None:
        self._refresh_fp_bounds()

    def bulk_load(
        self, items: Iterable[tuple[Key, Any]], fill_factor: float = 1.0
    ) -> None:
        """Bulk load, then re-pin the fast path to the new tail leaf."""
        super().bulk_load(items, fill_factor)
        self._fp.leaf = self._tail
        self._fp.low, self._fp.high = self.bounds_of_leaf(self._tail)

    def _after_bulk_splice(self) -> None:
        # A splice can split the fast-path leaf outside the normal split
        # hooks, so the cached pivot bounds must be recomputed.
        self._refresh_fp_bounds()

    # ------------------------------------------------------------------
    # Scrubbing (post-recovery hygiene)
    # ------------------------------------------------------------------

    def scrub(self) -> ScrubReport:
        """Audit the fast-path metadata; reset it when untrustworthy.

        Inserts and window reads act on ``fp.leaf`` *without a descent*
        whenever a key falls inside ``[fp.low, fp.high)``, so the cached
        window being a **subset** of the leaf's true pivot range is the
        safety invariant: a window wider than the range routes keys into
        the wrong leaf (silent order violation) or declares present keys
        absent.  A window *narrower* than the range is merely
        conservative (some fast-path hits degrade to top-inserts) and is
        left alone.  Any unsafe finding resets the pointer to the tail
        leaf — always a valid pin — and counts ``stats.scrub_resets``
        instead of asserting, so a recovered or degraded tree keeps
        serving.
        """
        report = super().scrub()
        fp = self._fp
        leaf = fp.leaf
        unsafe = False
        if leaf is None:
            report.issues.append("fast-path leaf unset")
            unsafe = True
        elif not self._leaf_attached(leaf):
            report.issues.append("fast-path leaf detached from tree")
            unsafe = True
        else:
            pb_low, pb_high = self.bounds_of_leaf(leaf)
            if pb_low is not None and (fp.low is None or fp.low < pb_low):
                report.issues.append(
                    "fast-path window extends below the leaf's pivot range"
                )
                unsafe = True
            if pb_high is not None and (
                fp.high is None or fp.high > pb_high
            ):
                report.issues.append(
                    "fast-path window extends above the leaf's pivot range"
                )
                unsafe = True
        unsafe |= self._scrub_extra(report)
        if unsafe:
            self._scrub_reset_fp()
            report.repairs += 1
            self.stats.scrub_resets += 1
        return report

    def _leaf_attached(self, leaf: LeafNode) -> bool:
        """Whether ``leaf`` hangs off this tree's root (bounded walk)."""
        node = leaf
        hops = 0
        while node.parent is not None:
            node = node.parent
            hops += 1
            if hops > self._height + 2:
                return False
        return node is self._root

    def _scrub_extra(self, report: ScrubReport) -> bool:
        """Variant-specific scrub checks; True when a reset is needed."""
        return False

    def _scrub_reset_fp(self) -> None:
        """Re-pin the fast path to the tail leaf (always a valid pin)."""
        fp = self._fp
        fp.leaf = self._tail
        fp.low, fp.high = self.bounds_of_leaf(self._tail)
