"""Configuration objects shared by all tree variants.

The paper's default setup uses 4KB pages holding up to 510 8-byte entries
per leaf.  A pure-Python reproduction defaults to a smaller leaf capacity so
that benchmark workloads still produce thousands of leaf splits at a
laptop-friendly number of keys.  Every knob the paper exposes (leaf capacity,
IKR scale, reset threshold) is configurable here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


# Paper defaults (§5, "Index Design and Default Setup").
PAPER_LEAF_CAPACITY = 510
PAPER_IKR_SCALE = 1.5

# Reproduction defaults, scaled down per DESIGN.md §3 substitution 1.
DEFAULT_LEAF_CAPACITY = 64
DEFAULT_INTERNAL_CAPACITY = 64

# Synthetic sizing used when estimating memory footprints (Table 2):
# the paper uses 8-byte entries (4-byte keys + 4-byte values) and
# 8-byte child pointers in internal nodes.
ENTRY_BYTES = 8
PIVOT_BYTES = 12  # 4-byte key + 8-byte child pointer
NODE_HEADER_BYTES = 32


def reset_threshold(leaf_capacity: int) -> int:
    """Stale-pole reset threshold ``T_R = floor(sqrt(leaf_capacity))`` (§4.3).

    The paper's default configuration yields ``floor(sqrt(510)) = 22``.
    """
    if leaf_capacity < 1:
        raise ValueError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
    return int(math.isqrt(leaf_capacity))


@dataclass(frozen=True)
class TreeConfig:
    """Static configuration for a tree index.

    Attributes:
        leaf_capacity: maximum number of entries in a leaf node.
        internal_capacity: maximum number of children in an internal node.
        ikr_scale: the IKR ``scale`` buffer factor (Eq. 2); 1.5 by default,
            following the interquartile-range convention the paper cites.
        reset_after: number of consecutive top-inserts after which QuIT
            resets a stale ``pole`` (``T_R``).  Defaults to
            ``floor(sqrt(leaf_capacity))``.
        layout: leaf storage layout — ``"gapped"`` (default) for the
            slot-array layout with gap pools and typed-array key
            domains, ``"list"`` for the classic compact parallel lists
            (the pre-gapped baseline, kept for comparison benchmarks).
    """

    leaf_capacity: int = DEFAULT_LEAF_CAPACITY
    internal_capacity: int = DEFAULT_INTERNAL_CAPACITY
    ikr_scale: float = PAPER_IKR_SCALE
    reset_after: int = field(default=-1)
    layout: str = "gapped"

    def __post_init__(self) -> None:
        if self.layout not in ("gapped", "list"):
            raise ValueError(
                f"layout must be 'gapped' or 'list', got {self.layout!r}"
            )
        if self.leaf_capacity < 4:
            raise ValueError(
                f"leaf_capacity must be >= 4, got {self.leaf_capacity}"
            )
        if self.internal_capacity < 4:
            raise ValueError(
                f"internal_capacity must be >= 4, got {self.internal_capacity}"
            )
        if self.ikr_scale <= 0:
            raise ValueError(f"ikr_scale must be > 0, got {self.ikr_scale}")
        if self.reset_after == -1:
            object.__setattr__(
                self, "reset_after", reset_threshold(self.leaf_capacity)
            )
        if self.reset_after < 1:
            raise ValueError(
                f"reset_after must be >= 1, got {self.reset_after}"
            )

    @property
    def leaf_half(self) -> int:
        """Default split position ``def_split_pos = leaf_capacity / 2``."""
        return self.leaf_capacity // 2

    @classmethod
    def paper_defaults(cls) -> "TreeConfig":
        """The configuration used by the paper's evaluation (510/leaf)."""
        return cls(
            leaf_capacity=PAPER_LEAF_CAPACITY,
            internal_capacity=PAPER_LEAF_CAPACITY,
        )
