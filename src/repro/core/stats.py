"""Instrumentation counters shared by every index variant.

All evaluation figures in the paper are driven by a small set of
work-proportional counters: how many inserts used the fast path vs a full
top-to-bottom traversal, how many nodes a lookup touched, and how many
structural operations (splits, redistributions, resets) occurred.  Keeping
them in one mutable dataclass lets the benchmark harness read a consistent
snapshot from any tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class TreeStats:
    """Mutable operation counters for a tree index.

    Attributes:
        fast_inserts: inserts that used the fast path (tail / lil / pole).
        top_inserts: inserts that performed a root-to-leaf traversal.
        leaf_splits: number of leaf-node splits.
        internal_splits: number of internal-node splits.
        variable_splits: leaf splits that used QuIT's IKR-guided split point
            (Alg. 2) instead of the default 50% position.
        redistributions: Alg. 2 redistributions into ``pole_prev``.
        pole_updates: times the ``pole`` pointer advanced after a split.
        pole_catchups: times a top-insert into ``pole_next`` moved ``pole``
            forward ("catching up to predicted outliers", §4.2).
        pole_resets: stale-pole resets (§4.3).
        node_accesses: nodes touched by lookups (internal + leaf).
        leaf_accesses: leaf nodes touched by lookups (Fig. 10c metric).
        point_lookups / range_lookups / deletes: operation counts.
        insert_traversal_nodes: nodes touched while descending for
            top-inserts (proxy for insert cost in the analytical model).
        bulk_splice_segments: descents performed by ``bulk_insert_run``
            (one per pivot-bounded segment of the spliced run).
        batch_inserts: entries ingested through ``insert_many``.
        batch_runs: maximal non-decreasing runs the batch detector carved
            out of ``insert_many`` batches (after coalescing, when it
            applied).
        batch_coalesced: fragmented ``insert_many`` batches that were
            stable-sorted into a single run before application.
        batch_segments: pivot-bounded segments the batch path applied
            (>= batch_runs; each segment costs at most one descent).
        batch_fast_segments: batch segments whose target leaf came
            straight from the variant's fast-path pointer (no descent).
        batch_chained_segments: batch segments whose target leaf was
            reached without a descent via batch-local locality: the leaf
            chain from the previous segment of the same run, or the
            frontier (rightmost leaf touched) of earlier runs in the same
            ``insert_many`` call.
        index_fallback_scans: ``InternalNode.index_of_child`` calls that
            fell back to the O(fan-out) linear scan (typically empty
            children under QuIT's lazy delete).
        read_batches: ``get_many`` calls (one per probe batch).
        read_chain_hits: batched probes resolved without a root-to-leaf
            descent — served from the leaf the previous probe landed in,
            or a chain successor within ``_READ_CHAIN_LIMIT`` hops.
        read_redescents: root-to-leaf descents performed inside
            ``get_many`` (including the batch's first positioning
            descent; a fully chained batch counts exactly one).
        read_fast_hits: point reads served straight from the fast-path
            pointer's cached leaf because the probe key fell inside its
            ``[fp_min, fp_max)`` window (read-side analogue of
            ``fast_inserts``).
        read_fast_misses: point reads that consulted the fast-path
            window and missed, falling back to a descent.
        scrub_checks: ``scrub()`` passes run over this tree.
        scrub_resets: fast-path/auxiliary pointers that ``scrub()``
            found inconsistent and reset (graceful degradation after
            recovery instead of trusting derived state blindly).
        gap_hits: mid-leaf point inserts a gapped leaf absorbed by
            claiming a slot from its gap pool (one C-level store)
            where a compact list would have shifted entries.  Pure
            appends are not counted (free in any layout), and neither
            are the inlined fast-path claims of the tail/lil/pole/QuIT
            insert loop — the counter tracks the out-of-line
            ``insert_entry`` path.  Zero under the list layout.
        gap_redistributions: gapped-leaf rebuilds (splits, run-overflow
            repacks, bulk loads) that re-established gap slack — the
            layout's "redistribute" events.
        typed_leaves: gapped-leaf repacks that chose typed ``array``
            key storage (uniform int/float key domain detected).
        typed_demotions: typed key slabs demoted back to object lists
            because a non-conforming key arrived (type change or int64
            overflow).
        wal_group_batches: group-commit batches the WAL flusher has
            fsynced (mirrored from the WAL by ``DurableTree.stats``).
        wal_group_batch_records: records across all those batches;
            ``wal_group_batch_mean`` derives the mean batch size — the
            fsync amortization factor.
        wal_group_batch_max: largest single group-commit batch.
        wal_unsynced_acks: acknowledgements handed out before their
            bytes were fsynced (``fsync="interval"``/``"none"`` only):
            the size of the durability loss window.  Always 0 under
            ``"always"`` and ``"group"``.
        health_retries: transient write-path I/O faults retried
            (mirrored from the tree's ``HealthMonitor``).
        health_degradations: HEALTHY→DEGRADED transitions (first retry
            of an episode).
        health_read_only_trips: times exhausted retries degraded the
            tree to read-only.
        health_recoveries: explicit heals (``restore()`` after a
            successful checkpoint/repair) out of a degraded state.
        scrub_cycles: background scrubber verification cycles run
            (mirrored from the attached ``Scrubber``, if any).
        scrub_corruptions: corrupt artifacts (WAL segments/snapshots)
            the scrubber detected.
        scrub_quarantines: corrupt artifacts copied into the
            ``quarantine/`` directory as evidence before repair.
        scrub_peer_repairs: corruptions healed by re-fetching state
            from the replication peer.
    """

    fast_inserts: int = 0
    top_inserts: int = 0
    leaf_splits: int = 0
    internal_splits: int = 0
    variable_splits: int = 0
    redistributions: int = 0
    pole_updates: int = 0
    pole_catchups: int = 0
    pole_resets: int = 0
    node_accesses: int = 0
    leaf_accesses: int = 0
    point_lookups: int = 0
    range_lookups: int = 0
    deletes: int = 0
    insert_traversal_nodes: int = 0
    bulk_splice_segments: int = 0
    batch_inserts: int = 0
    batch_runs: int = 0
    batch_coalesced: int = 0
    batch_segments: int = 0
    batch_fast_segments: int = 0
    batch_chained_segments: int = 0
    index_fallback_scans: int = 0
    read_batches: int = 0
    read_chain_hits: int = 0
    read_redescents: int = 0
    read_fast_hits: int = 0
    read_fast_misses: int = 0
    scrub_checks: int = 0
    scrub_resets: int = 0
    gap_hits: int = 0
    gap_redistributions: int = 0
    typed_leaves: int = 0
    typed_demotions: int = 0
    wal_group_batches: int = 0
    wal_group_batch_records: int = 0
    wal_group_batch_max: int = 0
    wal_unsynced_acks: int = 0
    health_retries: int = 0
    health_degradations: int = 0
    health_read_only_trips: int = 0
    health_recoveries: int = 0
    scrub_cycles: int = 0
    scrub_corruptions: int = 0
    scrub_quarantines: int = 0
    scrub_peer_repairs: int = 0

    @property
    def wal_group_batch_mean(self) -> float:
        """Mean group-commit batch size (0.0 before the first batch)."""
        if not self.wal_group_batches:
            return 0.0
        return self.wal_group_batch_records / self.wal_group_batches

    @property
    def inserts(self) -> int:
        """Total number of inserts performed."""
        return self.fast_inserts + self.top_inserts

    @property
    def fast_insert_fraction(self) -> float:
        """Fraction of inserts served by the fast path (0.0 when empty)."""
        total = self.inserts
        return self.fast_inserts / total if total else 0.0

    @property
    def top_insert_fraction(self) -> float:
        """Fraction of inserts that required a full traversal."""
        total = self.inserts
        return self.top_inserts / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "TreeStats":
        """Return an independent copy of the current counters."""
        return TreeStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def diff(self, earlier: "TreeStats") -> "TreeStats":
        """Return counters accumulated since an ``earlier`` snapshot."""
        return TreeStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for reporting)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class ScrubReport:
    """Outcome of a ``scrub()`` pass over one tree.

    Attributes:
        variant: ``name`` of the scrubbed tree class.
        issues: human-readable description of each inconsistency found
            in derived state (fast-path pointers, chain endpoints).
        repairs: how many of those were repaired in place (pointer
            resets); issues without a matching repair are unrepairable
            by scrubbing and need :meth:`BPlusTree.check`.
    """

    variant: str = ""
    issues: list[str] = field(default_factory=list)
    repairs: int = 0

    @property
    def clean(self) -> bool:
        """True when no inconsistency was found."""
        return not self.issues


@dataclass
class OccupancyStats:
    """Leaf-occupancy summary used by Fig. 10a / 11 / Table 2.

    Attributes:
        leaf_count: number of leaf nodes.
        internal_count: number of internal nodes.
        entries: total entries stored in the leaves.
        capacity: per-leaf capacity the occupancy is measured against.
        min_occupancy / max_occupancy: extremes over all leaves (fractions).
    """

    leaf_count: int = 0
    internal_count: int = 0
    entries: int = 0
    capacity: int = 0
    min_occupancy: float = 0.0
    max_occupancy: float = 0.0

    @property
    def avg_occupancy(self) -> float:
        """Average leaf fill fraction in [0, 1]."""
        if not self.leaf_count or not self.capacity:
            return 0.0
        return self.entries / (self.leaf_count * self.capacity)

    @property
    def node_count(self) -> int:
        """Total number of nodes (leaves + internals)."""
        return self.leaf_count + self.internal_count
