"""In-order Key estimatoR (IKR) — the paper's lightweight outlier
predictor (§4.1, Eq. 2).

Given the smallest keys ``p`` and ``q`` of ``pole_prev`` and ``pole`` and
their sizes, IKR extrapolates the maximum key value that ``pole_size``
further in-order entries could plausibly reach:

    x = q + ((q - p) / pole_prev_size) * pole_size * scale

Any key greater than ``x`` is classified as an outlier.  ``scale`` widens
the acceptance band to absorb local density fluctuation; the paper follows
the interquartile-range convention and uses 1.5.
"""

from __future__ import annotations

from .config import PAPER_IKR_SCALE


def ikr_threshold(
    p: float,
    q: float,
    pole_prev_size: int,
    pole_size: int,
    scale: float = PAPER_IKR_SCALE,
) -> float:
    """Maximum acceptable (non-outlier) key per Eq. 2.

    Args:
        p: smallest key in ``pole_prev`` (a known non-outlier).
        q: smallest key in ``pole`` (a known non-outlier, ``q >= p``).
        pole_prev_size: entries in ``pole_prev``; must be positive.  The
            paper bounds it at >= 50% of capacity before trusting the
            estimate — callers enforce that policy, this function only
            needs it non-zero.
        pole_size: entries in ``pole`` (the node about to split).
        scale: slack multiplier (1.5 by default).

    Returns:
        The threshold ``x``; keys ``> x`` are outliers.

    Raises:
        ValueError: on non-positive sizes or ``q < p``.
    """
    if pole_prev_size <= 0:
        raise ValueError(
            f"pole_prev_size must be positive, got {pole_prev_size}"
        )
    if pole_size < 0:
        raise ValueError(f"pole_size must be non-negative, got {pole_size}")
    if q < p:
        raise ValueError(f"expected q >= p, got q={q!r} < p={p!r}")
    density = (q - p) / pole_prev_size
    return q + density * pole_size * scale


def is_outlier(
    key: float,
    p: float,
    q: float,
    pole_prev_size: int,
    pole_size: int,
    scale: float = PAPER_IKR_SCALE,
) -> bool:
    """True when ``key`` exceeds the IKR acceptance threshold."""
    return key > ikr_threshold(p, q, pole_prev_size, pole_size, scale)
