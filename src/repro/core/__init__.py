"""Core index structures: the classical B+-tree substrate and the
sortedness-aware fast-path variants (tail, lil, pole, QuIT)."""

from .ablation import QuITNoResetTree, QuITNoVariableSplitTree
from .batch import carve_runs, merge_run, probe_runs
from .bptree import BPlusTree, TreeInvariantError
from .describe import TreeDescription, describe, format_description
from .durable import DurableTree, RecoveryReport
from .duplicates import DuplicateKeyIndex
from .config import TreeConfig, reset_threshold
from .fastpath import FastPathTree
from .health import (
    HealthMonitor,
    HealthState,
    ReadOnlyError,
    RetryPolicy,
    is_transient,
)
from .ikr import ikr_threshold, is_outlier
from .lil_tree import LilBPlusTree
from .metadata import (
    METADATA_FIELDS,
    FastPathState,
    PoleState,
    extra_metadata_bytes,
    metadata_bytes,
)
from .node import InternalNode, LeafNode, Node
from .persist import PersistenceError, load_tree, save_tree, verify_snapshot
from .pole_tree import PoleBPlusTree
from .quit_tree import QuITTree
from .scrubber import ScrubCycleReport, Scrubber, verify_artifacts
from .stats import OccupancyStats, ScrubReport, TreeStats
from .tail_tree import TailBPlusTree
from .wal import (
    WALDeadError,
    WALError,
    WALPosition,
    WALReader,
    WALRecord,
    WALReplayResult,
    WALStreamError,
    WALTruncatedError,
    WriteAheadLog,
    first_position,
    repair_wal,
    replay_wal,
)

#: All tree variants benchmarked by the paper, in presentation order.
TREE_VARIANTS = (
    BPlusTree,
    TailBPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITTree,
)

__all__ = [
    "BPlusTree",
    "carve_runs",
    "merge_run",
    "probe_runs",
    "QuITNoResetTree",
    "QuITNoVariableSplitTree",
    "FastPathTree",
    "TailBPlusTree",
    "LilBPlusTree",
    "PoleBPlusTree",
    "QuITTree",
    "TreeConfig",
    "TreeStats",
    "OccupancyStats",
    "FastPathState",
    "PoleState",
    "LeafNode",
    "InternalNode",
    "Node",
    "ikr_threshold",
    "is_outlier",
    "reset_threshold",
    "metadata_bytes",
    "extra_metadata_bytes",
    "METADATA_FIELDS",
    "TREE_VARIANTS",
    "save_tree",
    "load_tree",
    "PersistenceError",
    "TreeInvariantError",
    "ScrubReport",
    "DurableTree",
    "RecoveryReport",
    "HealthMonitor",
    "HealthState",
    "ReadOnlyError",
    "RetryPolicy",
    "is_transient",
    "Scrubber",
    "ScrubCycleReport",
    "verify_artifacts",
    "verify_snapshot",
    "WriteAheadLog",
    "WALDeadError",
    "WALError",
    "WALPosition",
    "WALReader",
    "WALRecord",
    "WALReplayResult",
    "WALStreamError",
    "WALTruncatedError",
    "first_position",
    "replay_wal",
    "repair_wal",
    "describe",
    "format_description",
    "TreeDescription",
    "DuplicateKeyIndex",
]
