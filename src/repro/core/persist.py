"""Persistence helpers: dump an index to a file and reload it.

The on-disk format is deliberately simple and durable: a small header
(format tag, entry count, configuration) followed by one
tab-separated ``key<TAB>value`` line per entry in key order.  Loading
rebuilds the index via packed bulk loading, so a reloaded tree starts at
optimal occupancy regardless of the ingestion history that produced it.

Values are stored via ``repr`` and restored with
:func:`ast.literal_eval`, so any Python literal (numbers, strings,
tuples, lists, dicts, None, booleans) round-trips; arbitrary objects are
rejected at save time rather than corrupting the file.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional, Type, Union

from .bptree import BPlusTree
from .config import TreeConfig

_FORMAT_TAG = "quit-tree-v1"


class PersistenceError(ValueError):
    """Raised for unserializable values or malformed files."""


def save_tree(tree: BPlusTree, path: Union[str, Path]) -> int:
    """Write ``tree`` to ``path``; returns the number of entries saved."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write(
            f"{_FORMAT_TAG}\t{len(tree)}\t"
            f"{tree.config.leaf_capacity}\t"
            f"{tree.config.internal_capacity}\n"
        )
        for key, value in tree.items():
            key_repr = repr(key)
            value_repr = repr(value)
            for label, text in (("key", key_repr), ("value", value_repr)):
                if "\t" in text or "\n" in text:
                    raise PersistenceError(
                        f"{label} {text!r} contains a separator character"
                    )
                try:
                    ast.literal_eval(text)
                except (ValueError, SyntaxError):
                    raise PersistenceError(
                        f"{label} {text!r} is not a Python literal; "
                        "only literal keys/values can be persisted"
                    ) from None
            fh.write(f"{key_repr}\t{value_repr}\n")
            count += 1
    return count


def load_tree(
    path: Union[str, Path],
    tree_class: Type[BPlusTree] = BPlusTree,
    config: Optional[TreeConfig] = None,
    fill_factor: float = 1.0,
) -> BPlusTree:
    """Rebuild an index saved by :func:`save_tree`.

    Args:
        path: file written by :func:`save_tree`.
        tree_class: index variant to instantiate (any tree class).
        config: overrides the persisted node capacities when given.
        fill_factor: leaf packing for the rebuild (1.0 = fully packed).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n").split("\t")
        if len(header) != 4 or header[0] != _FORMAT_TAG:
            raise PersistenceError(f"{path} is not a {_FORMAT_TAG} file")
        try:
            expected = int(header[1])
            leaf_capacity = int(header[2])
            internal_capacity = int(header[3])
        except ValueError:
            raise PersistenceError(f"malformed header in {path}") from None
        if config is None:
            config = TreeConfig(
                leaf_capacity=leaf_capacity,
                internal_capacity=internal_capacity,
            )
        pairs = []
        for line_no, line in enumerate(fh, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                key_repr, value_repr = line.split("\t")
                pairs.append((
                    ast.literal_eval(key_repr),
                    ast.literal_eval(value_repr),
                ))
            except (ValueError, SyntaxError):
                raise PersistenceError(
                    f"malformed entry at {path}:{line_no}"
                ) from None
    if len(pairs) != expected:
        raise PersistenceError(
            f"{path} declares {expected} entries but holds {len(pairs)}"
        )
    tree = tree_class(config)
    tree.bulk_load(pairs, fill_factor=fill_factor)
    return tree
