"""Persistence helpers: dump an index to a file and reload it.

Two on-disk formats share one loader:

* **v1** (``quit-tree-v1``): a small header (format tag, entry count,
  configuration) followed by one tab-separated ``key<TAB>value`` line per
  entry in key order.
* **v2** (``quit-tree-v2``): the same header, but every entry line is
  prefixed with the CRC32 of its ``key<TAB>value`` body
  (``crc<TAB>key<TAB>value``), so a flipped bit is caught at load time
  instead of silently rebuilding a wrong tree.  This is the format
  :meth:`repro.core.durable.DurableTree.checkpoint` writes.

Writes are **atomic**: the tree is serialized to a same-directory temp
file which is fsynced and ``os.replace``d over the destination only on
success.  A failure mid-write (unserializable value, full disk, injected
fault) unlinks the temp file and leaves any previous good snapshot at
``path`` untouched.

Loading rebuilds the index via packed bulk loading, so a reloaded tree
starts at optimal occupancy regardless of the ingestion history that
produced it.

Values are stored via ``repr`` and restored with
:func:`ast.literal_eval`, so any Python literal (numbers, strings,
tuples, lists, dicts, None, booleans) round-trips; arbitrary objects are
rejected at save time rather than corrupting the file.
"""

from __future__ import annotations

import ast
import io
import os
import zlib
from pathlib import Path
from typing import Any, Optional, TextIO, Type, Union

from ..concurrency import sanitizer
from ..testing import failpoints, iofaults
from .bptree import BPlusTree
from .config import TreeConfig
from .health import HealthMonitor, ReadOnlyError, RetryPolicy

_FORMAT_TAG = "quit-tree-v1"
_FORMAT_TAG_V2 = "quit-tree-v2"


class PersistenceError(ValueError):
    """Raised for unserializable values or malformed/corrupt files."""


def _entry_repr(key: Any, value: Any) -> tuple[str, str]:
    """Validated ``repr`` pair for one entry; raises PersistenceError."""
    key_repr = repr(key)
    value_repr = repr(value)
    for label, text in (("key", key_repr), ("value", value_repr)):
        if "\t" in text or "\n" in text:
            raise PersistenceError(
                f"{label} {text!r} contains a separator character"
            )
        try:
            ast.literal_eval(text)
        except (ValueError, SyntaxError):
            raise PersistenceError(
                f"{label} {text!r} is not a Python literal; "
                "only literal keys/values can be persisted"
            ) from None
    return key_repr, value_repr


def _write_entries(tree: BPlusTree, fh: TextIO, version: int) -> int:
    # The layout column was appended to the header after the fact;
    # loaders accept both the 4-column (pre-layout) and 5-column forms.
    fh.write(
        f"{_FORMAT_TAG_V2 if version == 2 else _FORMAT_TAG}\t{len(tree)}\t"
        f"{tree.config.leaf_capacity}\t"
        f"{tree.config.internal_capacity}\t"
        f"{tree.config.layout}\n"
    )
    count = 0
    for key, value in tree.items():
        key_repr, value_repr = _entry_repr(key, value)
        body = f"{key_repr}\t{value_repr}"
        if version == 2:
            fh.write(f"{zlib.crc32(body.encode('utf-8')):08x}\t{body}\n")
        else:
            fh.write(f"{body}\n")
        count += 1
    return count


def save_tree(
    tree: BPlusTree,
    path: Union[str, Path],
    *,
    version: int = 1,
    retry: Optional[RetryPolicy] = None,
    health: Optional[HealthMonitor] = None,
) -> int:
    """Atomically write ``tree`` to ``path``; returns the entry count.

    Args:
        tree: any tree variant (anything with ``config``, ``__len__``
            and ``items()``).
        path: destination file, replaced atomically on success.
        version: 1 for the legacy format, 2 for per-record CRC32.
        retry: when given, transient I/O faults (EIO/ENOSPC) on the
            temp-file write/fsync and the final rename are retried per
            the policy — each write attempt starts the temp file over,
            so a torn attempt can never leave a half-written prefix in
            front of the retried copy.
        health: monitor fed by the retry loop (see
            :class:`repro.core.health.HealthMonitor`).

    The tree is serialized to memory first: a serialization error
    (unserializable value) aborts before any byte touches the disk, and
    the disk write becomes a single shimmed operation that fault
    injection can tear or rot meaningfully.
    """
    if version not in (1, 2):
        raise PersistenceError(f"unknown snapshot version {version}")
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    buffer = io.StringIO()
    count = _write_entries(tree, buffer, version)
    data = buffer.getvalue().encode("utf-8")
    failpoints.fire("snapshot.before_tmp_write")

    def write_tmp() -> None:
        with tmp.open("wb") as fh:
            iofaults.write("io.snapshot.write", fh, data)
            fh.flush()
            if sanitizer.enabled():
                sanitizer.note_fsync("snapshot.tmp")
            iofaults.fsync("io.snapshot.fsync", fh)

    def discard_tmp() -> None:
        tmp.unlink(missing_ok=True)

    try:
        if retry is None:
            write_tmp()
        else:
            retry.run(write_tmp, monitor=health, recover=discard_tmp)
    except Exception:
        tmp.unlink(missing_ok=True)
        raise
    failpoints.fire("snapshot.after_tmp_write")

    def rename() -> None:
        iofaults.replace("io.snapshot.replace", tmp, path)

    try:
        if retry is None:
            rename()
        else:
            retry.run(rename, monitor=health)
    except Exception:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_parent_dir(path)
    failpoints.fire("snapshot.after_replace")
    return count


def _fsync_parent_dir(path: Path) -> None:
    """Make the rename itself durable (best-effort off POSIX)."""
    if sanitizer.enabled():
        sanitizer.note_fsync("snapshot.dir")
    try:
        fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def load_tree(
    path: Union[str, Path],
    tree_class: Type[BPlusTree] = BPlusTree,
    config: Optional[TreeConfig] = None,
    fill_factor: float = 1.0,
) -> BPlusTree:
    """Rebuild an index saved by :func:`save_tree` (either version).

    Args:
        path: file written by :func:`save_tree`.
        tree_class: index variant to instantiate (any tree class).
        config: overrides the persisted node capacities when given.
        fill_factor: leaf packing for the rebuild (1.0 = fully packed).

    Raises:
        PersistenceError: malformed header/entries, an entry count
            mismatch, (v2) a per-record checksum failure, or a snapshot
            that stays unreadable after transient-I/O retries.
    """
    path = Path(path)
    text = _read_snapshot_text(path)
    lines = text.split("\n")
    header = lines[0].split("\t")
    if len(header) not in (4, 5) or header[0] not in (
        _FORMAT_TAG,
        _FORMAT_TAG_V2,
    ):
        raise PersistenceError(
            f"{path} is not a {_FORMAT_TAG}/{_FORMAT_TAG_V2} file"
        )
    checksummed = header[0] == _FORMAT_TAG_V2
    try:
        expected = int(header[1])
        leaf_capacity = int(header[2])
        internal_capacity = int(header[3])
    except ValueError:
        raise PersistenceError(f"malformed header in {path}") from None
    if config is None:
        extra = {}
        if len(header) == 5:  # pre-layout snapshots omit the column
            if header[4] not in ("gapped", "list"):
                raise PersistenceError(
                    f"unknown layout {header[4]!r} in {path}"
                )
            extra["layout"] = header[4]
        config = TreeConfig(
            leaf_capacity=leaf_capacity,
            internal_capacity=internal_capacity,
            **extra,
        )
    pairs = []
    for line_no, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        if checksummed:
            crc_hex, sep, body = line.partition("\t")
            if not sep:
                raise PersistenceError(
                    f"malformed entry at {path}:{line_no}"
                )
            try:
                crc = int(crc_hex, 16)
            except ValueError:
                raise PersistenceError(
                    f"malformed checksum at {path}:{line_no}"
                ) from None
            if zlib.crc32(body.encode("utf-8")) != crc:
                raise PersistenceError(
                    f"checksum mismatch at {path}:{line_no}"
                )
        else:
            body = line
        try:
            key_repr, value_repr = body.split("\t")
            pairs.append((
                ast.literal_eval(key_repr),
                ast.literal_eval(value_repr),
            ))
        except (ValueError, SyntaxError):
            raise PersistenceError(
                f"malformed entry at {path}:{line_no}"
            ) from None
    if len(pairs) != expected:
        raise PersistenceError(
            f"{path} declares {expected} entries but holds {len(pairs)}"
        )
    tree = tree_class(config)
    tree.bulk_load(pairs, fill_factor=fill_factor)
    return tree


#: Transient-retry policy for snapshot reads: a flaky read must not
#: fail a recovery (and must never flip health — no monitor is fed).
_SNAP_READ_RETRY = RetryPolicy(
    attempts=3, base_delay=0.001, max_delay=0.01, deadline=0.25
)


def _read_snapshot_bytes(path: Path) -> bytes:
    return _SNAP_READ_RETRY.run(
        lambda: iofaults.read_bytes("io.snapshot.read", path)
    )


def _read_snapshot_text(path: Path) -> str:
    """Read + decode a snapshot; all failures become PersistenceError
    (except a genuinely missing file, which stays FileNotFoundError)."""
    try:
        raw = _read_snapshot_bytes(path)
    except ReadOnlyError as exc:
        cause = exc.__cause__
        if isinstance(cause, FileNotFoundError):
            raise cause
        raise PersistenceError(f"{path} is unreadable: {exc}") from exc
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise PersistenceError(
            f"{path} is not valid UTF-8 (corrupt?): {exc}"
        ) from exc


def verify_snapshot(path: Union[str, Path]) -> list[str]:
    """CRC/structure-verify a snapshot without rebuilding the tree.

    Returns a list of human-readable issues — empty means intact (or no
    snapshot at all, which is a legal state).  Unlike :func:`load_tree`
    this never raises and never stops at the first bad record, so the
    scrubber and the CLI ``verify`` subcommand can report the full
    damage picture (capped at 8 issues).
    """
    path = Path(path)
    if not path.exists():
        return []
    issues: list[str] = []
    try:
        raw = _read_snapshot_bytes(path)
    except (ReadOnlyError, OSError) as exc:
        return [f"unreadable: {exc}"]
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        return [f"not valid UTF-8: {exc}"]
    lines = text.split("\n")
    header = lines[0].split("\t")
    if len(header) not in (4, 5) or header[0] not in (
        _FORMAT_TAG,
        _FORMAT_TAG_V2,
    ):
        return [f"bad header: {lines[0][:80]!r}"]
    checksummed = header[0] == _FORMAT_TAG_V2
    try:
        expected = int(header[1])
    except ValueError:
        return [f"malformed entry count {header[1]!r}"]
    entries = 0
    suppressed = False
    for line_no, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        if len(issues) >= 8:
            issues.append("... (further issues suppressed)")
            suppressed = True
            break
        if checksummed:
            crc_hex, sep, body = line.partition("\t")
            if not sep:
                issues.append(f"line {line_no}: malformed entry")
                continue
            try:
                crc = int(crc_hex, 16)
            except ValueError:
                issues.append(f"line {line_no}: malformed checksum")
                continue
            if zlib.crc32(body.encode("utf-8")) != crc:
                issues.append(f"line {line_no}: checksum mismatch")
                continue
        entries += 1
    if not suppressed and entries != expected:
        issues.append(
            f"declares {expected} entries but holds {entries}"
        )
    return issues
