"""B+-tree with the predicted-ordered-leaf (pole) fast path (§4.1-4.2).

Unlike ``lil``, the ``pole`` pointer is *not* retargeted by top-inserts:
it may advance only when the pole leaf splits, and only when the smallest
key of the newly created node is judged a non-outlier by the In-order Key
estimatoR (Eq. 2 / Alg. 1).  When the new node's minimum *is* an outlier,
the pole stays put and the new node is remembered as ``pole_next``; a later
top-insert landing there that IKR accepts lets the pole "catch up" (§4.2).

This class is the paper's "pole-B+-tree" of §5.2.3 — QuIT *without* the
variable split, redistribution, and stale-pole reset strategies (those live
in :class:`~repro.core.quit_tree.QuITTree`).  It therefore reproduces the
stress-test pathology of Fig. 12: once trapped by a scrambled segment, it
never recovers the fast path.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from .fastpath import FastPathTree
from .ikr import ikr_threshold
from .metadata import PoleState
from .node import Key, LeafNode
from .stats import ScrubReport


class PoleBPlusTree(FastPathTree):
    """B+-tree whose fast path is the predicted ordered leaf."""

    name = "pole-B+-tree"

    _fp: PoleState

    def _make_fp_state(self) -> PoleState:
        return PoleState()

    @property
    def pole_prev(self) -> Optional[LeafNode]:
        """The leaf preceding the pole (IKR's reference density window)."""
        return self._fp.prev

    @property
    def pole_next(self) -> Optional[LeafNode]:
        """The outlier node split off the pole, if any (catch-up target)."""
        return self._fp.next_candidate

    # ------------------------------------------------------------------
    # Fast-path admission (Alg. 1 line 1)
    # ------------------------------------------------------------------

    def _fast_path_accepts(self, key: Key) -> bool:
        # pole_min <= key < pole_max, where the bounds are "the smallest
        # and largest keys that can be inserted into pole" (§4.2) — the
        # pivot bounds.  The upper check is omitted while the pole is the
        # tail leaf (fp.high is None by construction there).  Inlined
        # bound checks: this runs on every single insert.
        fp = self._fp
        if fp.leaf is None:
            return False
        low = fp.low
        if low is not None and key < low:
            return False
        high = fp.high
        return high is None or key < high

    def _count_consecutive_miss(self) -> int:
        """Bump and return the consecutive-top-insert counter.

        ``fails`` resets implicitly whenever a fast insert happened since
        the previous miss (tracked through the fast-insert counter), so
        the fast path itself carries no bookkeeping.
        """
        fp = self._fp
        fast_now = self.stats.fast_inserts
        if fast_now != fp.last_fast_mark:
            fp.fails = 0
            fp.last_fast_mark = fast_now
        fp.fails += 1
        return fp.fails

    # ------------------------------------------------------------------
    # Pole-update policy on split (Alg. 1 lines 2-8, Fig. 6)
    # ------------------------------------------------------------------

    def _after_leaf_split(
        self,
        left: LeafNode,
        right: LeafNode,
        split_key: Key,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        if left is not self._fp.leaf:
            return
        self._decide_pole_after_split(left, right, split_key, key, low, high)

    def _decide_pole_after_split(
        self,
        left: LeafNode,
        right: LeafNode,
        split_key: Key,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        """Advance the pole to ``right`` iff ``split_key`` (= ``r``, the
        smallest key of the new node) is not an outlier per IKR."""
        fp = self._fp
        threshold = self._ikr_for_pole(left, extra=right.size)
        if threshold is None:
            # No usable pole_prev yet (initialization, §4.2): follow the
            # inserted entry, like the very first split of the root leaf.
            if key >= split_key:
                self._advance_pole(left, right, split_key, high)
            else:
                fp.low, fp.high = low, split_key
                fp.next_candidate = right
            return
        if split_key <= threshold:
            self._advance_pole(left, right, split_key, high)
        else:
            fp.low, fp.high = low, split_key
            fp.next_candidate = right

    def _ikr_for_pole(
        self, pole: LeafNode, extra: int = 0
    ) -> Optional[float]:
        """IKR threshold ``x`` for the current pole, or None when
        ``pole_prev`` cannot support an estimate.

        ``extra`` accounts for entries that have already been moved out of
        the pole (e.g. into the right half of a split): Eq. 2's
        ``pole_size`` is the pole's population at decision time.
        """
        prev = self._fp.prev
        if prev is None or prev.size == 0 or pole.size == 0:
            return None
        p, q = prev.min_key, pole.min_key
        if q < p:
            # Stale prev reference (structure moved underneath it).
            return None
        try:
            return ikr_threshold(
                p, q, prev.size, pole.size + extra, self.config.ikr_scale
            )
        except TypeError:
            # Non-arithmetic keys (tuples, strings): IKR needs a key
            # *domain* to extrapolate into, so the pole degrades
            # gracefully to its 50%-split / follow-the-entry behaviour.
            return None

    def _advance_pole(
        self,
        left: LeafNode,
        right: LeafNode,
        split_key: Key,
        high: Optional[Key],
    ) -> None:
        fp = self._fp
        fp.prev = left
        fp.leaf = right
        fp.low = split_key
        fp.high = high
        # next_candidate is intentionally preserved: it is the outlier node
        # bounding the pole from above, and remains the catch-up target
        # after any number of advances underneath it.
        self.stats.pole_updates += 1

    # ------------------------------------------------------------------
    # Catching up to predicted outliers (Alg. 1 lines 11-14)
    # ------------------------------------------------------------------

    def _after_top_insert(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        fp = self._fp
        pole = fp.leaf
        # Cheap structural checks first; the IKR float math only runs for
        # the two catch-up candidates (§4.2).  "beyond" means the in-order
        # stream crossed the pole's upper bound into the physically
        # adjacent leaf — identity-checking the neighbor is O(1) and far
        # more selective than comparing the key against fp.high.
        is_candidate = leaf is fp.next_candidate
        beyond = (
            pole is not None
            and leaf is pole.next
            and fp.high is not None
            and key >= fp.high
        )
        if (is_candidate or beyond) and pole is not None and pole.size:
            threshold = self._ikr_for_pole(pole)
            if is_candidate and (threshold is None or key <= threshold):
                self._catch_up_to(leaf, low, high)
                return
            # Generalized catch-up: the in-order stream crossed the pole's
            # upper bound into the neighboring node and IKR judges the key
            # non-outlier, so the fast path should follow it (§4.2,
            # "catching up to previously marked outliers").
            if beyond and threshold is not None and key <= threshold:
                self._catch_up_to(leaf, low, high)
                return
        self._note_top_insert_miss(leaf, key, low, high)

    def _catch_up_to(
        self, leaf: LeafNode, low: Optional[Key], high: Optional[Key]
    ) -> None:
        fp = self._fp
        fp.prev = fp.leaf
        fp.leaf = leaf
        fp.low = low
        fp.high = high
        fp.next_candidate = None
        fp.fails = 0
        self.stats.pole_catchups += 1

    def _note_top_insert_miss(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        """Hook: a top-insert bypassed the fast path entirely.  The plain
        pole tree only counts it; QuIT adds the reset strategy."""
        self._count_consecutive_miss()

    # ------------------------------------------------------------------
    # Batched ingest
    # ------------------------------------------------------------------

    def _after_insert_run(self, leaf: LeafNode) -> None:
        """Re-pin the pole to the leaf holding the run's tail.

        A per-key top-insert must not move the pole (it may be an
        outlier), but a run's tail is the in-order frontier by
        construction — an outlier that broke the previous run starts its
        own run and the detector folds the stream back into order at the
        next ascent, so pinning to the tail is the batch analogue of the
        post-``bulk_load`` pinning.
        """
        fp = self._fp
        fp.prev = leaf.prev
        fp.leaf = leaf
        fp.low, fp.high = self.bounds_of_leaf(leaf)
        fp.next_candidate = None
        fp.fails = 0

    # ------------------------------------------------------------------
    # Scrubbing
    # ------------------------------------------------------------------

    def _scrub_extra(self, report: ScrubReport) -> bool:
        """Audit ``pole_prev``/``pole_next`` (IKR's reference window).

        A stale ``pole_prev`` — detached, identical to the pole, or with
        a min key *above* the pole's — would feed IKR a negative density
        window.  The runtime guards degrade gracefully (IKR returns no
        estimate), but after recovery the reference should be rebuilt
        rather than left poisoned.
        """
        fp = self._fp
        unsafe = False
        prev = fp.prev
        pole = fp.leaf
        if prev is not None:
            if prev is pole:
                report.issues.append("pole_prev aliases the pole itself")
                unsafe = True
            elif not self._leaf_attached(prev):
                report.issues.append("pole_prev detached from tree")
                unsafe = True
            elif (
                pole is not None
                and prev.size > 0
                and pole.size > 0
                and prev.min_key > pole.min_key
            ):
                report.issues.append("pole_prev min key above the pole's")
                unsafe = True
        if fp.next_candidate is not None and not self._leaf_attached(
            fp.next_candidate
        ):
            report.issues.append("pole_next detached from tree")
            unsafe = True
        return unsafe

    def _scrub_reset_fp(self) -> None:
        """Re-pin pole (and its IKR references) to the tail leaf."""
        super()._scrub_reset_fp()
        fp = self._fp
        fp.prev = self._tail.prev
        fp.next_candidate = None
        fp.fails = 0

    # ------------------------------------------------------------------
    # Structural upkeep
    # ------------------------------------------------------------------

    def _on_leaf_removed(self, leaf: LeafNode, merged_into: LeafNode) -> None:
        fp = self._fp
        if fp.leaf is leaf:
            fp.leaf = merged_into
        if fp.prev is leaf:
            fp.prev = merged_into
        if fp.next_candidate is leaf:
            fp.next_candidate = None

    def bulk_load(
        self,
        items: Iterable[tuple[Key, Any]],
        fill_factor: float = 1.0,
    ) -> None:
        """Bulk load, then re-pin pole (and pole_prev) to the tail."""
        super().bulk_load(items, fill_factor)
        fp = self._fp
        fp.leaf = self._tail
        fp.prev = self._tail.prev
        fp.low, fp.high = self.bounds_of_leaf(self._tail)
        fp.next_candidate = None
        fp.fails = 0
