"""Ablation variants of QuIT, isolating each design feature (§4.3).

DESIGN.md calls these out for the ablation benches: the paper itself
evaluates the "pole-B+-tree" (QuIT minus variable split, redistribution,
and reset; :class:`~repro.core.pole_tree.PoleBPlusTree`) in §5.2.3.  The
two classes here complete the feature lattice:

* :class:`QuITNoResetTree` — variable split + redistribution, no stale-pole
  reset.  Demonstrates why reset exists (the pole can strand permanently
  on workload shifts).
* :class:`QuITNoVariableSplitTree` — pole + reset, but plain 50% splits.
  Demonstrates that the variable split is what buys the occupancy gains
  of Fig. 10a / Table 2.
"""

from __future__ import annotations

from typing import Optional

from .node import Key, LeafNode
from .quit_tree import QuITTree


class QuITNoResetTree(QuITTree):
    """QuIT without the stale-pole reset strategy."""

    name = "QuIT-no-reset"

    def _note_top_insert_miss(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        # Count the miss but never reset.
        self._count_consecutive_miss()


class QuITNoVariableSplitTree(QuITTree):
    """QuIT without the variable split / redistribution strategies.

    Every leaf split happens at the default 50% position (Alg. 1's
    behaviour), so occupancy matches the classical B+-tree while the
    fast-path and reset machinery stay intact.
    """

    name = "QuIT-50%-split"

    def _split_full_leaf(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> LeafNode:
        # Bypass QuITTree's Alg. 2 override: 50% split + Alg. 1 pole
        # update, exactly as in the plain pole-B+-tree.
        return super(QuITTree, self)._split_full_leaf(leaf, key, low, high)
