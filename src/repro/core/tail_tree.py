"""B+-tree with the production-style tail-leaf fast path (§2).

The tail-leaf optimization (PostgreSQL's fast-path insertion) keeps a
pointer to the rightmost leaf and the smallest key that leaf may accept
(its lower pivot bound).  Any incoming key at or above that bound is placed
directly into the tail leaf; everything else takes a regular top-insert.

The optimization degrades exactly as the paper describes: one leaf's worth
of forward outliers raises the tail's lower bound far beyond the in-order
stream, after which every in-order insert reverts to a top-insert until the
stream catches up (Fig. 3).
"""

from __future__ import annotations

from typing import Optional

from .fastpath import FastPathTree
from .node import Key, LeafNode
from .stats import ScrubReport


class TailBPlusTree(FastPathTree):
    """B+-tree whose fast path is pinned to the tail (rightmost) leaf."""

    name = "tail-B+-tree"

    def _fast_path_accepts(self, key: Key) -> bool:
        # The tail has no upper bound; only the lower pivot bound matters.
        fp = self._fp
        return fp.leaf is not None and (fp.low is None or key >= fp.low)

    def _after_leaf_split(
        self,
        left: LeafNode,
        right: LeafNode,
        split_key: Key,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        # _do_leaf_split already advanced self._tail when the tail split;
        # re-pin the fast path to the (possibly new) tail leaf.
        if right is self._tail:
            self._fp.leaf = right
            self._fp.low = split_key
            self._fp.high = None

    def _after_delete(self) -> None:
        # Merges may have replaced the tail; keep the pin on the tail.
        self._fp.leaf = self._tail
        self._refresh_fp_bounds()
        self._fp.high = None

    def _after_bulk_splice(self) -> None:
        # A splice may have appended new leaves past the old tail.
        self._fp.leaf = self._tail
        self._refresh_fp_bounds()
        self._fp.high = None

    def _after_insert_run(self, leaf: LeafNode) -> None:
        # The tail pin never follows the run; a run-driven rebuild may
        # have grown new tail leaves, so re-derive the pin and its bound.
        self._fp.leaf = self._tail
        self._refresh_fp_bounds()
        self._fp.high = None

    def _scrub_extra(self, report: ScrubReport) -> bool:
        # The tail variant's one extra invariant: the pin *is* the tail.
        if self._fp.leaf is not self._tail:
            report.issues.append("fast-path pin is not the tail leaf")
            return True
        return False
