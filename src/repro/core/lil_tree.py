"""B+-tree with the last-insertion-leaf (lil) fast path (§3, Fig. 4).

``lil`` points to the leaf that received the most recent insert, together
with that leaf's admissible key range.  The pointer moves eagerly: every
top-insert retargets it to the accepting leaf, and a split of the lil leaf
moves it to whichever half received the entry.  This lets a near-sorted
stream "come back" to the right leaf after an outlier at the cost of up to
two top-inserts per out-of-order entry (the paper's Eq. 1:
``FI(k) = (1 - k)^2``).
"""

from __future__ import annotations

from typing import Optional

from .fastpath import FastPathTree
from .node import Key, LeafNode


class LilBPlusTree(FastPathTree):
    """B+-tree whose fast path follows the last insertion leaf."""

    name = "lil-B+-tree"

    def _after_leaf_split(
        self,
        left: LeafNode,
        right: LeafNode,
        split_key: Key,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        if left is not self._fp.leaf:
            return
        # Fig. 4c-e: follow the entry into whichever half accepts it.
        if key >= split_key:
            self._fp.leaf = right
            self._fp.low = split_key
            self._fp.high = high
        else:
            self._fp.low = low
            self._fp.high = split_key

    def _after_top_insert(
        self,
        leaf: LeafNode,
        key: Key,
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        # Fig. 4b: a top-insert retargets lil to the accepting leaf; the
        # insert path threads the post-split pivot bounds through.
        fp = self._fp
        fp.leaf = leaf
        fp.low = low
        fp.high = high

    # Batched ingest (insert_many) needs no override here: the inherited
    # FastPathTree._after_insert_run — retarget to the leaf holding the
    # run's tail — is precisely the lil rule applied per run instead of
    # per key.
