"""``quit-check`` command-line entry point.

Usage::

    quit-check [paths ...]           # default: src/ if it exists, else .
    quit-check --rule no-bare-assert src/
    quit-check --list-rules
    quit-check --format json src/
    quit-check --format summary src/   # rule inventory + per-rule counts

``--format summary`` emits a stable JSON object — every registered rule
with its finding count (zeros included) plus the number of files
scanned — suitable for committing as a baseline and diffing in CI.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import Project, all_rules, run_rules


def _default_paths() -> List[Path]:
    src = Path("src")
    return [src] if src.is_dir() else [Path(".")]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quit-check",
        description="Repo-aware static analysis for the QuIT tree codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list available rules and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "summary"),
        default="text",
        help="output format (default: text); summary = per-rule counts",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:20s} {rule.description}")
        return 0

    paths = list(args.paths) or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"quit-check: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    project = Project.from_paths(paths)
    try:
        findings = run_rules(project, args.rules)
    except ValueError as exc:
        print(f"quit-check: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    elif args.format == "summary":
        selected = args.rules or [rule.name for rule in all_rules()]
        counts = {name: 0 for name in sorted(selected)}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        print(
            json.dumps(
                {"files": len(project.files), "findings": counts},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        files = len(project.files)
        print(
            f"quit-check: {len(findings)} finding(s) in {files} file(s)",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
