"""lock-discipline: static lock-order + guarded-write analysis.

The repo has one canonical lock order — outermost first — defined in
:data:`repro.concurrency.sanitizer.LOCK_ORDER` (the runtime sanitizer
checks the same table, so static and dynamic analysis cannot drift).
This rule rebuilds the acquisition graph *statically*:

1. **Lock recognition.**  ``with`` items are matched syntactically:
   ``with self._gate.read_locked():``, ``with self._meta:``,
   ``with self._leaf_locks.locked(n):``, a local alias bound from
   ``lock_for(...)``, a module-level ``with _lock:``, and the
   ``exclusive()`` escape hatch.  Known attributes map to canonical
   lock ids via :data:`CANONICAL`; unknown lock-shaped attributes get a
   synthetic ``<module>.<attr>`` id and still participate in cycle
   detection.

2. **Inter-procedural summaries.**  Each function's *acquisition
   summary* (every lock it may take, transitively) is propagated to its
   callers through a fixpoint over resolvable calls, using the shared
   :mod:`repro.lint.callgraph` machinery (:class:`~repro.lint.callgraph.
   CallResolver` with :data:`ATTR_TYPES` as the facade-typing table):
   ``self.method()`` through base classes, attribute chains
   (``self.durable.wal.sync`` → ``WriteAheadLog.sync``), class-name
   receivers (``DurableTree.recover``), the ``failpoints`` module
   alias, and bare-name calls to module-level functions.  Unresolvable
   calls are skipped — the analysis under-approximates rather than
   cry wolf.

3. **Checks.**  Every nesting edge (lexical ``with`` nesting *and*
   call-under-lock edges) is checked: two ranked locks must nest in
   canonical order; acquiring a lock already held is flagged; edges
   touching unranked locks feed a cycle detector (Tarjan SCC) so fixture
   or future locks without a rank still can't deadlock silently.

4. **Guarded writes.**  Writes to fields the concurrency design says
   are lock-protected (:data:`GUARDED_FIELDS`) must occur inside *some*
   lock scope; :data:`STRICT_CLASSES` extends that to every ``self.*``
   write outside ``__init__``.  Two escape hatches exist for methods
   whose callers hold the lock: the ``*_locked`` name suffix (assumed
   to run under the owning class's primary lock, see
   :data:`PRIMARY_LOCK`) and an explicit ``# holds: <lock-id>`` pragma
   comment anywhere in the function body.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ...concurrency.sanitizer import LOCK_ORDER
from ..callgraph import (
    CallResolver,
    ClassMap,
    FuncKey,
    FunctionInfo,
    collect_functions,
    fixpoint,
    module_function_index,
)
from ..engine import Finding, Project, SourceFile, register

RULE = "lock-discipline"

RANK: Dict[str, int] = {name: i for i, name in enumerate(LOCK_ORDER)}

# (module stem, attribute) -> canonical lock id.  Single place that ties
# source attributes to the sanitizer's lock names.
CANONICAL: Dict[Tuple[str, str], str] = {
    ("concurrent_tree", "_structure"): "concurrent.structure",
    ("concurrent_tree", "_meta"): "concurrent.meta",
    ("concurrent_tree", "_leaf_locks"): "concurrent.leaf",
    ("durable", "_gate"): "durable.gate",
    ("wal", "_lock"): "wal.append",
    ("wal", "_group_lock"): "wal.group.queue",
    ("replica", "_lock"): "repl.replica",
    ("primary", "_meta_lock"): "repl.primary.meta",
    ("coordinator", "_lock"): "repl.epoch",
    ("failpoints", "_lock"): "failpoints",
    ("iofaults", "_lock"): "iofaults",
    ("health", "_lock"): "health",
    ("scrubber", "_lock"): "scrub.cycle",
    # The scrubber verifies under the owning tree's checkpoint gate.
    ("scrubber", "_gate"): "durable.gate",
}

# `with <name>():` calls that acquire a lock without naming it.
NAME_CALL_LOCKS: Dict[str, str] = {"exclusive": "concurrent.structure"}

# Facade attribute typing for call resolution: (class, attr) -> class.
ATTR_TYPES: Dict[Tuple[str, str], str] = {
    ("DurableTree", "tree"): "ConcurrentTree",
    ("DurableTree", "wal"): "WriteAheadLog",
    ("Primary", "durable"): "DurableTree",
    ("Primary", "wal"): "WriteAheadLog",
    ("Primary", "registry"): "EpochRegistry",
    ("Replica", "durable"): "DurableTree",
    ("Replica", "transport"): "Primary",
    ("FailoverCoordinator", "registry"): "EpochRegistry",
    ("FailoverCoordinator", "primary"): "Primary",
    ("DurableTree", "health"): "HealthMonitor",
    ("WriteAheadLog", "health"): "HealthMonitor",
}

# Module aliases whose attribute calls resolve to module-level functions.
MODULE_ALIASES: FrozenSet[str] = frozenset({"failpoints"})

# `*_locked` methods are assumed to run under their class's primary lock.
PRIMARY_LOCK: Dict[str, str] = {
    "WriteAheadLog": "wal.append",
    "Replica": "repl.replica",
    "ConcurrentTree": "concurrent.structure",
    "DurableTree": "durable.gate",
    "Primary": "repl.primary.meta",
    "EpochRegistry": "repl.epoch",
    "HealthMonitor": "health",
    "Scrubber": "scrub.cycle",
}

# Fields the concurrency design requires a lock around every write to.
GUARDED_FIELDS: Dict[str, FrozenSet[str]] = {
    "WriteAheadLog": frozenset(
        {
            "records_appended",
            "bytes_appended",
            "syncs",
            "rotations",
            "_since_sync",
            "_active_size",
            "_fh",
            "_seq",
            "unsynced_acks",
            "group_batches",
            "group_batch_records",
            "group_batch_max",
            "_group_pending",
            "_group_closing",
            "_group_dead",
        }
    ),
    "DurableTree": frozenset({"checkpoints", "last_checkpoint_position"}),
    "Replica": frozenset({"position", "durable"}),
    "Primary": frozenset({"_base", "_pending_tickets"}),
    "HealthMonitor": frozenset(
        {
            "_state",
            "_last_error",
            "retries",
            "degradations",
            "read_only_trips",
            "recoveries",
        }
    ),
    "Scrubber": frozenset(
        {
            "_cursor_seq",
            "cycles",
            "corruptions",
            "quarantines",
            "repairs",
            "peer_repairs",
        }
    ),
}

# Classes where *every* `self.*` write outside __init__ must be locked.
STRICT_CLASSES: FrozenSet[str] = frozenset({"ConcurrentTree"})

# Lock-primitive internals: their `with self._cond:` etc. is the
# implementation of locking, not a use of it.
EXCLUDED_STEMS: FrozenSet[str] = frozenset({"locks", "sanitizer"})

LOCK_SUFFIXES: Tuple[str, ...] = ("_lock", "_locks", "_mutex", "_gate")

HOLDS_PRAGMA = re.compile(r"#\s*holds:\s*([\w.\-]+)")


@dataclass
class _Edge:
    outer: str
    inner: str
    path: str
    line: int
    via: str  # "with" | "call"


@dataclass
class _FuncFacts:
    key: FuncKey
    src: SourceFile
    node: ast.AST
    class_name: Optional[str]
    assumed_held: List[str] = field(default_factory=list)
    direct: Set[str] = field(default_factory=set)
    calls: List[Tuple[FuncKey, Tuple[str, ...], int]] = field(default_factory=list)
    edges: List[_Edge] = field(default_factory=list)
    unguarded: List[Finding] = field(default_factory=list)


def _lock_attr_id(stem: str, attr: str) -> Optional[str]:
    canonical = CANONICAL.get((stem, attr))
    if canonical is not None:
        return canonical
    if attr.endswith(LOCK_SUFFIXES):
        return f"{stem}.{attr}"
    return None


class _FunctionAnalyzer:
    """Collect facts for one function: acquisitions, edges, calls, writes."""

    def __init__(self, facts: _FuncFacts, resolver: CallResolver) -> None:
        self.facts = facts
        self.stem = facts.src.stem
        self.resolver = resolver
        self.aliases: Dict[str, str] = {}
        self._collect_aliases(facts.node)

    # -- lock expression recognition -----------------------------------

    def _collect_aliases(self, fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            lock = self._lock_expr_id(node.value, allow_alias=False)
            if lock is None and isinstance(node.value, ast.Call):
                func = node.value.func
                if isinstance(func, ast.Attribute) and func.attr == "lock_for":
                    lock = self._lock_expr_id(func.value, allow_alias=False)
            if lock is not None:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        self.aliases[tgt.id] = lock

    def _lock_expr_id(self, expr: ast.expr, allow_alias: bool = True) -> Optional[str]:
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "read_locked",
                "write_locked",
                "locked",
            ):
                return self._lock_expr_id(func.value, allow_alias)
            if isinstance(func, ast.Name) and func.id in NAME_CALL_LOCKS:
                return NAME_CALL_LOCKS[func.id]
            return None
        if isinstance(expr, ast.Attribute):
            return _lock_attr_id(self.stem, expr.attr)
        if isinstance(expr, ast.Name):
            if allow_alias and expr.id in self.aliases:
                return self.aliases[expr.id]
            if expr.id.endswith(LOCK_SUFFIXES):
                return _lock_attr_id(self.stem, expr.id)
        return None

    # -- traversal ------------------------------------------------------

    def run(self) -> None:
        body = getattr(self.facts.node, "body", [])
        self._visit_block(body, list(self.facts.assumed_held))

    def _visit_block(self, stmts: Sequence[ast.stmt], held: List[str]) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt, held)

    def _visit_stmt(self, stmt: ast.stmt, held: List[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are analyzed as their own unit
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in stmt.items:
                lock = self._lock_expr_id(item.context_expr)
                if lock is None:
                    self._scan_expr(item.context_expr, held)
                    continue
                self._record_acquire(lock, held + acquired, stmt.lineno)
                acquired.append(lock)
            self._visit_block(stmt.body, held + acquired)
            return
        # Statements with nested blocks keep the same held set.
        for block in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, block, None)
            if inner:
                self._visit_block(inner, held)
        for handler in getattr(stmt, "handlers", []) or []:
            self._visit_block(handler.body, held)
        # Expressions in this statement (tests, calls, targets).
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, (ast.stmt, ast.ExceptHandler)):
                continue
            self._scan_expr(expr, held)
        self._check_writes(stmt, held)

    def _record_acquire(self, lock: str, held: Sequence[str], line: int) -> None:
        self.facts.direct.add(lock)
        for outer in held:
            self.facts.edges.append(
                _Edge(outer, lock, self.facts.src.display, line, "with")
            )

    def _scan_expr(self, expr: ast.AST, held: List[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                key = self.resolver.resolve(node)
                if key is not None:
                    self.facts.calls.append((key, tuple(held), node.lineno))

    # -- guarded writes -------------------------------------------------

    def _check_writes(self, stmt: ast.stmt, held: List[str]) -> None:
        if held or self.facts.assumed_held:
            return
        cls = self.facts.class_name
        if cls is None:
            return
        fn_name = self.facts.key[1]
        if fn_name in ("__init__", "__new__"):
            return
        guarded = GUARDED_FIELDS.get(cls, frozenset())
        strict = cls in STRICT_CLASSES
        if not guarded and not strict:
            return
        if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for tgt in targets:
            if not (
                isinstance(tgt, ast.Attribute)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
            ):
                continue
            if tgt.attr in guarded or strict:
                self.facts.unguarded.append(
                    Finding(
                        RULE,
                        self.facts.src.display,
                        stmt.lineno,
                        f"write to {cls}.{tgt.attr} outside any lock scope; "
                        "this field is lock-protected (add the lock, a "
                        "`# holds: <lock>` pragma, or a `_locked` suffix "
                        "if the caller holds it)",
                    )
                )


def _collect_facts(
    project: Project, infos: Sequence["FunctionInfo"]
) -> List[_FuncFacts]:
    """Wrap the shared collector's output, layering on the lock pragmas."""
    out: List[_FuncFacts] = []
    line_cache: Dict[str, List[str]] = {}
    for info in infos:
        lines = line_cache.setdefault(info.src.display, info.src.text.splitlines())
        facts = _FuncFacts(
            key=info.key, src=info.src, node=info.node, class_name=info.class_name
        )
        start = getattr(info.node, "lineno", 1) - 1
        end = getattr(info.node, "end_lineno", start + 1)
        for raw in lines[start:end]:
            m = HOLDS_PRAGMA.search(raw)
            if m:
                facts.assumed_held.append(m.group(1))
        name = info.key[1]
        if name.endswith("_locked") and info.class_name is not None:
            primary = PRIMARY_LOCK.get(info.class_name)
            if primary is not None and primary not in facts.assumed_held:
                facts.assumed_held.append(primary)
        out.append(facts)
    return out


def _summaries(functions: Dict[FuncKey, _FuncFacts]) -> Dict[FuncKey, Set[str]]:
    calls = {
        key: [callee for callee, _held, _line in facts.calls]
        for key, facts in functions.items()
    }
    seed = {key: set(facts.direct) for key, facts in functions.items()}
    return fixpoint(calls, seed)


def _tarjan_sccs(edges: Dict[Tuple[str, str], _Edge]) -> List[Set[str]]:
    graph: Dict[str, Set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: recursion depth is bounded by lock count,
        # but iterative keeps fixture graphs from ever mattering.
        work: List[Tuple[str, List[str]]] = [(v, list(graph[v]))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, todo = work[-1]
            if todo:
                w = todo.pop()
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, list(graph[w])))
                elif w in on_stack:
                    low[node] = min(low[node], index[w])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc: Set[str] = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.add(w)
                        if w == node:
                            break
                    sccs.append(scc)

    for v in graph:
        if v not in index:
            strongconnect(v)
    return sccs


@register(
    RULE,
    "lock nesting must follow the canonical order; guarded fields need a lock",
)
def check(project: Project) -> List[Finding]:
    class_map = ClassMap(project)
    class_names = frozenset(class_map.bases)
    infos = collect_functions(project, excluded_stems=EXCLUDED_STEMS)
    all_facts = _collect_facts(project, infos)
    module_funcs = module_function_index(infos)

    functions: Dict[FuncKey, _FuncFacts] = {}
    for facts in all_facts:
        functions[facts.key] = facts
        resolver = CallResolver(
            class_name=facts.class_name,
            stem=facts.src.stem,
            class_map=class_map,
            module_funcs=module_funcs,
            class_names=class_names,
            attr_types=ATTR_TYPES,
            module_aliases=MODULE_ALIASES,
            skip_names=frozenset(NAME_CALL_LOCKS),
        )
        _FunctionAnalyzer(facts, resolver).run()

    summary = _summaries(functions)

    findings: List[Finding] = []
    edges: Dict[Tuple[str, str], _Edge] = {}

    def add_edge(edge: _Edge) -> None:
        if edge.outer == edge.inner:
            findings.append(
                Finding(
                    RULE,
                    edge.path,
                    edge.line,
                    f"lock {edge.inner!r} acquired while already held "
                    f"(via {edge.via}); locks here are not reentrant",
                )
            )
            return
        edges.setdefault((edge.outer, edge.inner), edge)

    for facts in functions.values():
        for edge in facts.edges:
            add_edge(edge)
        for callee, held, line in facts.calls:
            for inner in summary.get(callee, ()):
                for outer in held:
                    add_edge(
                        _Edge(outer, inner, facts.src.display, line, "call")
                    )

    for (outer, inner), edge in sorted(edges.items()):
        if outer in RANK and inner in RANK and RANK[outer] >= RANK[inner]:
            findings.append(
                Finding(
                    RULE,
                    edge.path,
                    edge.line,
                    f"lock order inversion: {inner!r} (rank {RANK[inner]}) "
                    f"acquired under {outer!r} (rank {RANK[outer]}); "
                    f"canonical order is {' -> '.join(LOCK_ORDER)}",
                )
            )

    for scc in _tarjan_sccs(edges):
        if len(scc) < 2:
            continue
        members = sorted(scc)
        for (outer, inner), edge in sorted(edges.items()):
            if outer in scc and inner in scc:
                findings.append(
                    Finding(
                        RULE,
                        edge.path,
                        edge.line,
                        f"lock cycle among {{{', '.join(members)}}}: "
                        f"{outer!r} nests inside-out with {inner!r} "
                        "(potential deadlock)",
                    )
                )

    for facts in functions.values():
        findings.extend(facts.unguarded)
    return findings
