"""layout-parity: every tree variant / facade reports its leaf layout.

The gapped slot-array leaf layout is selected per tree via
``TreeConfig.layout`` and inherited by every variant behind the node
API.  Benchmarks, the regression harness and the equivalence suite key
their comparisons on the ``layout`` a tree reports, so any facade that
serves reads (``get`` + ``range_query``) must expose a ``layout``
property — a facade without one silently drops out of the layout axis
and its numbers become unlabelable.

Classes are detected structurally from the AST the same way as
``api-parity``: inherited members are resolved by base-*name* lookup
across the scanned files, so a variant inheriting ``layout`` from
``BPlusTree`` is fine.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..engine import Finding, Project, register

RULE = "layout-parity"

# Classes that intentionally sit outside the tree-facade contract even
# though they quack close to it (same carve-outs as api-parity).
EXEMPT: FrozenSet[str] = frozenset(
    {
        "SortednessBuffer",  # staging buffer, not an index facade
        "MessageBuffer",  # Bε-tree internal node buffer
    }
)


class _ClassInfo:
    __slots__ = ("name", "bases", "members", "display", "line")

    def __init__(
        self,
        name: str,
        bases: List[str],
        members: Set[str],
        display: str,
        line: int,
    ) -> None:
        self.name = name
        self.bases = bases
        self.members = members
        self.display = display
        self.line = line


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _class_members(node: ast.ClassDef) -> Set[str]:
    """Method *and* attribute names defined directly on the class body
    (a ``layout`` served by a plain class attribute still counts)."""
    members: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            members.add(stmt.name)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            members.add(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    members.add(tgt.id)
    return members


def _collect_classes(project: Project) -> Dict[str, _ClassInfo]:
    classes: Dict[str, _ClassInfo] = {}
    for src in project.files:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = [b for b in (_base_name(x) for x in node.bases) if b]
            classes[node.name] = _ClassInfo(
                node.name,
                bases,
                _class_members(node),
                src.display,
                node.lineno,
            )
    return classes


def _resolved_members(
    name: str, classes: Dict[str, _ClassInfo], seen: Set[str]
) -> Set[str]:
    info = classes.get(name)
    if info is None or name in seen:
        return set()
    seen.add(name)
    members = set(info.members)
    for base in info.bases:
        members |= _resolved_members(base, classes, seen)
    return members


@register(
    RULE,
    "tree variants/facades must expose a `layout` property",
)
def check(project: Project) -> List[Finding]:
    classes = _collect_classes(project)
    findings: List[Finding] = []
    for info in classes.values():
        if info.name.startswith("_") or info.name in EXEMPT:
            continue
        members = _resolved_members(info.name, classes, set())
        if "get" not in members or "range_query" not in members:
            continue
        if "layout" not in members:
            findings.append(
                Finding(
                    RULE,
                    info.display,
                    info.line,
                    f"facade {info.name!r} does not expose `layout`; "
                    "benchmark and equivalence tooling cannot label its "
                    "results with the leaf storage layout",
                )
            )
    return findings
