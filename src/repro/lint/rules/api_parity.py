"""api-parity: every tree variant / facade exposes the batched surface.

Benchmarks, the chaos harness, and the replication layer all treat the
tree implementations interchangeably: anything that can ``insert``,
``get`` and ``range_query`` is expected to also offer the batched and
maintenance surface — ``insert_many``, ``get_many``, ``range_iter``,
``scrub``, ``check``.  Read-only facades (they serve ``get`` /
``range_query`` but refuse writes, e.g. a replica) owe the read-side
subset.

Classes are detected structurally from the AST; inherited methods are
resolved by base-*name* lookup across the scanned files (good enough
for this repo's single-namespace class names, and it keeps the rule
import-free).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..engine import Finding, Project, register

RULE = "api-parity"

FULL_SURFACE: Tuple[str, ...] = (
    "insert_many",
    "get_many",
    "range_iter",
    "scrub",
    "check",
)
READONLY_SURFACE: Tuple[str, ...] = ("get_many", "range_iter", "scrub", "check")

# Classes that intentionally sit outside the tree-facade contract even
# though they quack close to it.
EXEMPT: FrozenSet[str] = frozenset(
    {
        "SortednessBuffer",  # staging buffer, not an index facade
        "MessageBuffer",  # Bε-tree internal node buffer
    }
)


class _ClassInfo:
    __slots__ = ("name", "bases", "methods", "display", "line")

    def __init__(
        self, name: str, bases: List[str], methods: Set[str], display: str, line: int
    ) -> None:
        self.name = name
        self.bases = bases
        self.methods = methods
        self.display = display
        self.line = line


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _collect_classes(project: Project) -> Dict[str, _ClassInfo]:
    classes: Dict[str, _ClassInfo] = {}
    for src in project.files:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            bases = [b for b in (_base_name(x) for x in node.bases) if b]
            # Last definition wins on name collision; the repo keeps
            # class names unique so this only matters for fixtures.
            classes[node.name] = _ClassInfo(
                node.name, bases, methods, src.display, node.lineno
            )
    return classes


def _resolved_methods(
    name: str, classes: Dict[str, _ClassInfo], seen: Set[str]
) -> Set[str]:
    info = classes.get(name)
    if info is None or name in seen:
        return set()
    seen.add(name)
    methods = set(info.methods)
    for base in info.bases:
        methods |= _resolved_methods(base, classes, seen)
    return methods


@register(
    RULE,
    "tree variants/facades must expose insert_many/get_many/range_iter/scrub/check",
)
def check(project: Project) -> List[Finding]:
    classes = _collect_classes(project)
    findings: List[Finding] = []
    for info in classes.values():
        if info.name.startswith("_") or info.name in EXEMPT:
            continue
        methods = _resolved_methods(info.name, classes, set())
        readable = "get" in methods and "range_query" in methods
        if not readable:
            continue
        if "insert" in methods:
            required, kind = FULL_SURFACE, "tree facade"
        else:
            required, kind = READONLY_SURFACE, "read-only facade"
        missing = [m for m in required if m not in methods]
        if missing:
            findings.append(
                Finding(
                    RULE,
                    info.display,
                    info.line,
                    f"{kind} {info.name!r} is missing: {', '.join(missing)}",
                )
            )
    return findings
