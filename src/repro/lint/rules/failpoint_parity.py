"""failpoint-parity: fire sites and the registry must agree exactly.

``repro.testing.failpoints`` keeps a ``KNOWN_FAILPOINTS`` registry so
the chaos harness can enumerate every crash site.  Two drift modes rot
that guarantee:

* a ``failpoints.fire("x")`` call whose name is *not* registered can
  never be armed — the crash site is untestable;
* a registered name that is never fired is dead weight — the harness
  "covers" a site that no longer exists.

Both directions are checked from the AST alone.  Non-literal fire names
are flagged too, since they defeat static coverage accounting.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from ..engine import Finding, Project, register

REGISTRY_NAME = "KNOWN_FAILPOINTS"
REGISTRY_STEM = "failpoints"

RULE = "failpoint-parity"


def _registry_literal(node: ast.AST) -> Optional[List[ast.Constant]]:
    """String constants inside a tuple/list/set/frozenset(...) literal."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in ("frozenset", "set", "tuple") and node.args:
            return _registry_literal(node.args[0])
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt)
        return out
    return None


def _find_registry(project: Project) -> Optional[Tuple[str, Dict[str, int]]]:
    """Locate ``KNOWN_FAILPOINTS`` → (file, {name: lineno})."""
    for src in project.files:
        if src.stem != REGISTRY_STEM:
            continue
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if REGISTRY_NAME not in targets:
                    continue
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if not (
                    isinstance(node.target, ast.Name)
                    and node.target.id == REGISTRY_NAME
                ):
                    continue
            else:
                continue
            value = node.value
            if value is None:
                continue
            consts = _registry_literal(value)
            if consts is not None:
                return src.display, {c.value: c.lineno for c in consts}
    return None


def _iter_fire_calls(project: Project):
    for src in project.files:
        if src.stem == REGISTRY_STEM:
            continue  # the registry module's own plumbing
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "fire":
                yield src, node
            elif isinstance(func, ast.Name) and func.id == "fire":
                yield src, node


@register(
    RULE,
    "every failpoints.fire(name) literal must be registered, and vice versa",
)
def check(project: Project) -> List[Finding]:
    registry = _find_registry(project)
    if registry is None:
        # Linting a subtree without the registry: nothing to compare.
        return []
    registry_file, registered = registry

    findings: List[Finding] = []
    fired: Dict[str, bool] = {}
    for src, call in _iter_fire_calls(project):
        if not call.args:
            continue
        arg = call.args[0]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            findings.append(
                Finding(
                    RULE,
                    src.display,
                    call.lineno,
                    "failpoint name is not a string literal; "
                    "static coverage accounting cannot see it",
                )
            )
            continue
        name = arg.value
        fired[name] = True
        if name not in registered:
            findings.append(
                Finding(
                    RULE,
                    src.display,
                    call.lineno,
                    f'failpoint "{name}" is fired here but not registered '
                    f"in {REGISTRY_NAME}",
                )
            )
    for name, lineno in registered.items():
        if name not in fired:
            findings.append(
                Finding(
                    RULE,
                    registry_file,
                    lineno,
                    f'failpoint "{name}" is registered but never fired '
                    "anywhere in the scanned tree",
                )
            )
    return findings
