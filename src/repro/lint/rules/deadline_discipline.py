"""deadline-discipline: executor bridges to waits must carry a budget.

``async-blocking`` forces blocking waits off the loop thread and into
``run_in_executor``/``asyncio.to_thread`` — but an *unbounded* wait in
the executor is still a bug: it pins a pool slot forever, outlives the
request's deadline, and stalls drain.  Every request in the server
carries a deadline (``budget`` on the wire, clamped to ``MAX_BUDGET``),
so every bridged wait has a bound available; this rule asserts it is
actually threaded through.

Concretely: any ``<loop>.run_in_executor(pool, fnref, *args)`` or
``asyncio.to_thread(fnref, *args)`` whose function reference is a
known *wait-shaped* bridge (:data:`DEADLINE_BRIDGES` — ``wait``,
``drain_acks``, ``acquire``, ``join``) must pass at least one extra
positional argument (the timeout/deadline).  Bridges to bounded work
(``checkpoint``, ``scrub`` — long, but disk-bound and finite) are not
wait-shaped and are exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..engine import Finding, Project, register

RULE = "deadline-discipline"

#: Function-reference names that block until *someone else* acts; an
#: executor bridge to one of these without a timeout argument can wait
#: forever.
DEADLINE_BRIDGES: Dict[str, str] = {
    "wait": "ticket/event/condition wait",
    "drain_acks": "replica quorum drain",
    "acquire": "lock acquisition",
    "join": "thread join",
}


def _terminal_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _bridge_args(call: ast.Call) -> Optional[tuple[ast.expr, List[ast.expr]]]:
    """``(fnref, extra_args)`` when *call* is an executor bridge."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "run_in_executor" and len(call.args) >= 2:
        return call.args[1], list(call.args[2:])
    if func.attr == "to_thread" and len(call.args) >= 1:
        base = func.value
        if isinstance(base, ast.Name) and base.id == "asyncio":
            return call.args[0], list(call.args[1:])
    return None


@register(
    RULE,
    "executor bridges to wait-shaped calls must pass a deadline/budget",
)
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for src in project.files:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            bridge = _bridge_args(node)
            if bridge is None:
                continue
            fnref, extra = bridge
            name = _terminal_name(fnref)
            if name is None or name not in DEADLINE_BRIDGES:
                continue
            if extra:
                continue  # a bound is threaded through
            findings.append(
                Finding(
                    RULE,
                    src.display,
                    node.lineno,
                    f"executor bridge to `{name}` "
                    f"({DEADLINE_BRIDGES[name]}) is awaited without a "
                    "deadline/budget argument; pass the remaining budget "
                    "(e.g. `deadline - time.monotonic()`) so the bridge "
                    "cannot outlive its request",
                )
            )
    findings.sort(key=lambda f: (f.path, f.line))
    return findings
