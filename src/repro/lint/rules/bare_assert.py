"""no-bare-assert: ``assert`` in shipped code dies under ``python -O``.

The repo runs a ``python -O`` CI leg precisely because invariant checks
must survive optimisation; an ``assert`` that guards a rebalance
precondition or a recovery postcondition silently disappears there.
Shipped code must raise explicitly (``TreeInvariantError``,
``RuntimeError``, ...).  Test code is exempt — the linter only sees
what it is pointed at, and the default target is ``src/``.
"""

from __future__ import annotations

import ast
from typing import List

from ..engine import Finding, Project, register


@register(
    "no-bare-assert",
    "assert statements in shipped code are stripped by `python -O`; raise explicitly",
)
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for src in project.files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assert):
                findings.append(
                    Finding(
                        "no-bare-assert",
                        src.display,
                        node.lineno,
                        "bare `assert` is removed under `python -O`; "
                        "raise an explicit exception instead",
                    )
                )
    return findings
