"""iofault-parity: I/O fault sites and the registry must agree exactly.

``repro.testing.iofaults`` keeps a ``KNOWN_IO_SITES`` registry so the
fault-injection property suite can enumerate every shimmed disk
operation and drive the full ``site × fault-kind`` matrix.  The same
two drift modes as failpoint-parity rot that guarantee:

* a shim call (``iofaults.write("io.x", ...)``) whose site is *not*
  registered can never be armed — the site escapes the matrix;
* a registered site that no shim call carries is dead weight — the
  suite "covers" an operation that no longer exists.

Only calls whose receiver is literally named ``iofaults`` are
considered (``fh.write`` / ``os.replace`` must not match), and the
site must be a string literal — dynamic names defeat static coverage
accounting and are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from ..engine import Finding, Project, register

REGISTRY_NAME = "KNOWN_IO_SITES"
REGISTRY_STEM = "iofaults"

#: The shim surface: every fault-injectable disk operation.
SHIM_ATTRS = frozenset({"write", "fsync", "replace", "read_bytes"})

RULE = "iofault-parity"


def _registry_literal(node: ast.AST) -> Optional[List[ast.Constant]]:
    """String constants inside a tuple/list/set/frozenset(...) literal."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in ("frozenset", "set", "tuple") and node.args:
            return _registry_literal(node.args[0])
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt)
        return out
    return None


def _find_registry(project: Project) -> Optional[Tuple[str, Dict[str, int]]]:
    """Locate ``KNOWN_IO_SITES`` → (file, {site: lineno})."""
    for src in project.files:
        if src.stem != REGISTRY_STEM:
            continue
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if REGISTRY_NAME not in targets:
                    continue
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if not (
                    isinstance(node.target, ast.Name)
                    and node.target.id == REGISTRY_NAME
                ):
                    continue
            else:
                continue
            value = node.value
            if value is None:
                continue
            consts = _registry_literal(value)
            if consts is not None:
                return src.display, {c.value: c.lineno for c in consts}
    return None


def _iter_shim_calls(project: Project):
    for src in project.files:
        if src.stem == REGISTRY_STEM:
            continue  # the shim module's own plumbing
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in SHIM_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == REGISTRY_STEM
            ):
                continue
            yield src, node


@register(
    RULE,
    "every iofaults shim call's site literal must be registered in "
    "KNOWN_IO_SITES, and vice versa",
)
def check(project: Project) -> List[Finding]:
    registry = _find_registry(project)
    if registry is None:
        # Linting a subtree without the registry: nothing to compare.
        return []
    registry_file, registered = registry

    findings: List[Finding] = []
    used: Dict[str, bool] = {}
    for src, call in _iter_shim_calls(project):
        if not call.args:
            continue
        arg = call.args[0]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            findings.append(
                Finding(
                    RULE,
                    src.display,
                    call.lineno,
                    "I/O fault site is not a string literal; "
                    "the site × kind matrix cannot see it",
                )
            )
            continue
        site = arg.value
        used[site] = True
        if site not in registered:
            findings.append(
                Finding(
                    RULE,
                    src.display,
                    call.lineno,
                    f'I/O fault site "{site}" is shimmed here but not '
                    f"registered in {REGISTRY_NAME}",
                )
            )
    for site, lineno in registered.items():
        if site not in used:
            findings.append(
                Finding(
                    RULE,
                    registry_file,
                    lineno,
                    f'I/O fault site "{site}" is registered but no shim '
                    "call in the scanned tree carries it",
                )
            )
    return findings
