"""exception-flow: wire handlers map exceptions to typed ``ST_*`` statuses.

The network tier's error contract has three clauses, all conventional
until now:

1. **No raw machinery exceptions on the wire.**  A *handler* — any
   function that produces wire statuses, detected structurally as one
   returning ``(ST_*, flags, payload)`` tuples or passing an ``ST_*``
   constant to a responder — must not let a raw ``OSError``,
   ``AssertionError`` or ``SimulatedCrash`` escape.  Escapes are
   computed by a raise/except propagation fixpoint over ``repro.net``
   and ``repro.core.health``: each function's *escape set* is its
   explicit ``raise`` sites plus its callees' escape sets, filtered
   through enclosing ``try``/``except`` clauses using the exception
   hierarchy (rebuilt from the project's own class definitions layered
   over the builtin hierarchy).  A finding points at the *origin raise
   site*, however deep.

2. **Machinery exceptions pass through.**  A handler clause catching
   ``BaseException`` (or bare ``except``, or ``SimulatedCrash``
   directly) must contain a bare ``raise`` — a simulated crash or
   cancellation must tear the task down, never become a frame.

3. **Typed refusals stay typed.**  An ``except`` clause catching a
   typed refusal (:data:`TYPED_REFUSALS` — ``ReadOnlyError``, the
   ``NetError`` family, fencing/quorum refusals) must not re-raise it
   as anything in the ``OSError`` family (``TransientNetworkError``
   included): wrapping a refusal in a retryable errno turns "stop" into
   "try again harder".

The analysis under-approximates: unresolvable calls contribute nothing,
and only explicit ``raise`` statements seed escapes — which is exactly
the contract's shape, since every *intentional* error in scope is
raised explicitly.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..callgraph import (
    CallResolver,
    ClassMap,
    FuncKey,
    FunctionInfo,
    collect_functions,
    collect_self_aliases,
    module_function_index,
    qualname,
)
from ..engine import Finding, Project, register
from .lock_discipline import ATTR_TYPES as _LOCK_ATTR_TYPES

RULE = "exception-flow"

ST_RE = re.compile(r"^ST_[A-Z_]+$")

# Builtin exception hierarchy (the slice this repo can meet), layered
# under the project's own classes discovered via ClassMap.
BUILTIN_BASES: Dict[str, str] = {
    "Exception": "BaseException",
    "OSError": "Exception",
    "IOError": "OSError",
    "ConnectionError": "OSError",
    "ConnectionResetError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "BrokenPipeError": "ConnectionError",
    "TimeoutError": "OSError",
    "timeout": "OSError",  # socket.timeout alias
    "InterruptedError": "OSError",
    "FileNotFoundError": "OSError",
    "PermissionError": "OSError",
    "ValueError": "Exception",
    "UnicodeDecodeError": "ValueError",
    "TypeError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "LookupError": "Exception",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "EOFError": "Exception",
    "MemoryError": "Exception",
    "SyntaxError": "Exception",
    "IncompleteReadError": "EOFError",
    "LimitOverrunError": "Exception",
    "SystemExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "GeneratorExit": "BaseException",
    "CancelledError": "BaseException",
}

#: Exception families that must never escape a handler raw.
FORBIDDEN: Tuple[str, ...] = ("OSError", "AssertionError", "SimulatedCrash")

#: Typed refusals: catching one and re-raising anything OSError-shaped
#: converts a deliberate "no" into a retryable transport error.
TYPED_REFUSALS: FrozenSet[str] = frozenset(
    {
        "ReadOnlyError",
        "NetError",
        "DeadlineError",
        "RetriesExhaustedError",
        "ServerReadOnlyError",
        "ServerFencedError",
        "RequestError",
        "ShedError",
        "QueueDeadlineError",
        "FencedError",
        "StaleEpochError",
        "AckQuorumError",
        "QuorumTimeoutError",
        "FailoverQuorumError",
    }
)

ATTR_TYPES: Dict[Tuple[str, str], str] = {
    **_LOCK_ATTR_TYPES,
    ("QuitServer", "backend"): "DurableTree",
    ("QuitServer", "admission"): "AdmissionController",
}

MODULE_ALIASES: FrozenSet[str] = frozenset({"protocol", "failpoints", "iofaults"})

#: One escaping exception: (type name, origin path, origin line).
_Escape = Tuple[str, str, int]


def _in_scope(src_display: str, stem: str) -> bool:
    """The analyzed slice: ``repro.net``, ``repro.core.health``, and
    ``exc_``-prefixed fixture modules."""
    normalized = src_display.replace("\\", "/")
    if "/net/" in normalized or normalized.endswith("core/health.py"):
        return True
    return stem.startswith("exc_")


def _terminal_name(expr: Optional[ast.expr]) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class _Hierarchy:
    """Subclass tests over project classes + the builtin table."""

    def __init__(self, class_map: ClassMap) -> None:
        self.project_bases = class_map.bases

    def ancestors(self, name: str) -> Set[str]:
        out: Set[str] = set()
        queue = [name]
        while queue:
            cur = queue.pop()
            for base in self.project_bases.get(cur, []) or (
                [BUILTIN_BASES[cur]] if cur in BUILTIN_BASES else []
            ):
                if base not in out:
                    out.add(base)
                    queue.append(base)
        return out

    def is_a(self, name: str, base: str) -> bool:
        return name == base or base in self.ancestors(name)

    def catches(self, clause: Optional[List[str]], name: str) -> bool:
        """Does an except clause (None = bare) catch exception *name*?

        Unknown exception names conservatively sit directly under
        ``Exception``, so ``except Exception`` always catches them.
        """
        if clause is None:
            return True
        ancestors = self.ancestors(name)
        if not ancestors and name not in BUILTIN_BASES:
            ancestors = {"Exception", "BaseException"}
        return any(t == name or t in ancestors for t in clause)


def _clause_names(handler: ast.ExceptHandler) -> Optional[List[str]]:
    """Caught type names for one except clause; None for bare except."""
    t = handler.type
    if t is None:
        return None
    if isinstance(t, ast.Tuple):
        names = [_terminal_name(e) for e in t.elts]
        return [n for n in names if n is not None]
    name = _terminal_name(t)
    return [name] if name is not None else []


class _EscapeScanner:
    """One pass of the escape computation over one function body."""

    def __init__(
        self,
        src_display: str,
        resolver: CallResolver,
        escapes: Dict[FuncKey, Set[_Escape]],
        hierarchy: _Hierarchy,
    ) -> None:
        self.display = src_display
        self.resolver = resolver
        self.escapes = escapes
        self.hierarchy = hierarchy

    def block(self, stmts: List[ast.stmt], caught: Set[_Escape]) -> Set[_Escape]:
        out: Set[_Escape] = set()
        for stmt in stmts:
            out |= self.stmt(stmt, caught)
        return out

    def stmt(self, stmt: ast.stmt, caught: Set[_Escape]) -> Set[_Escape]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return set()
        if isinstance(stmt, ast.Try):
            return self._try(stmt, caught)
        out = self._calls_in(stmt)
        if isinstance(stmt, ast.Raise):
            if stmt.exc is None:
                return out | caught
            name = _terminal_name(
                stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
            )
            if name is not None:
                out.add((name, self.display, stmt.lineno))
            return out
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner:
                out |= self.block(inner, caught)
        return out

    def _try(self, stmt: ast.Try, caught: Set[_Escape]) -> Set[_Escape]:
        body_esc = self.block(stmt.body, caught)
        remaining = set(body_esc)
        out: Set[_Escape] = set()
        for handler in stmt.handlers:
            clause = _clause_names(handler)
            matched = {
                e for e in remaining if self.hierarchy.catches(clause, e[0])
            }
            remaining -= matched
            out |= self.block(handler.body, matched)
        out |= remaining
        # else/finally run outside the handlers' protection.
        out |= self.block(stmt.orelse, caught)
        out |= self.block(stmt.finalbody, caught)
        return out

    def _calls_in(self, stmt: ast.stmt) -> Set[_Escape]:
        """Escapes contributed by calls in this statement's expressions."""
        out: Set[_Escape] = set()

        def walk(node: ast.AST) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return
            if isinstance(node, ast.Call):
                callee = self.resolver.resolve(node)
                if callee is not None:
                    out.update(self.escapes.get(callee, set()))
            for child in ast.iter_child_nodes(node):
                walk(child)

        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.ExceptHandler)):
                continue
            walk(child)
        return out


def _is_handler(node: ast.AST) -> bool:
    """Structurally: produces wire statuses (returns or sends ``ST_*``)."""
    for n in ast.walk(node):
        if isinstance(n, ast.Return) and isinstance(n.value, ast.Tuple):
            elts = n.value.elts
            if elts and ST_RE.match(_terminal_name(elts[0]) or ""):
                return True
        if isinstance(n, ast.Call):
            for arg in n.args:
                if ST_RE.match(_terminal_name(arg) or ""):
                    return True
    return False


def _bare_raise_in(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for n in ast.walk(stmt):
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(n, ast.Raise) and n.exc is None:
                return True
    return False


@register(
    RULE,
    "wire handlers must map exceptions to typed ST_* statuses",
)
def check(project: Project) -> List[Finding]:
    class_map = ClassMap(project)
    class_names = frozenset(class_map.bases)
    hierarchy = _Hierarchy(class_map)
    infos = collect_functions(project)
    module_funcs = module_function_index(infos)

    scoped: Dict[FuncKey, FunctionInfo] = {}
    resolvers: Dict[FuncKey, CallResolver] = {}
    for info in infos:
        if not _in_scope(info.src.display, info.src.stem):
            continue
        scoped[info.key] = info
        resolvers[info.key] = CallResolver(
            class_name=info.class_name,
            stem=info.src.stem,
            class_map=class_map,
            module_funcs=module_funcs,
            class_names=class_names,
            attr_types=ATTR_TYPES,
            module_aliases=MODULE_ALIASES,
            local_aliases=collect_self_aliases(
                info.node, info.class_name, ATTR_TYPES
            ),
        )

    # Escape-set fixpoint over the scoped slice.
    escapes: Dict[FuncKey, Set[_Escape]] = {key: set() for key in scoped}
    changed = True
    while changed:
        changed = False
        for key, info in scoped.items():
            scanner = _EscapeScanner(
                info.src.display, resolvers[key], escapes, hierarchy
            )
            new = scanner.block(list(getattr(info.node, "body", [])), set())
            if new != escapes[key]:
                escapes[key] = new
                changed = True

    findings: List[Finding] = []
    handlers = {key: info for key, info in scoped.items() if _is_handler(info.node)}

    # 1. Raw machinery exceptions escaping a handler.
    seen: Set[Tuple[str, int, str]] = set()
    for key, info in handlers.items():
        for name, path, line in escapes[key]:
            if not any(hierarchy.is_a(name, f) for f in FORBIDDEN):
                continue
            site = (path, line, name)
            if site in seen:
                continue
            seen.add(site)
            findings.append(
                Finding(
                    RULE,
                    path,
                    line,
                    f"raw {name} raised here can escape wire handler "
                    f"`{qualname(key)}` untyped; catch it on the handler "
                    "path and map it to a typed ST_* status",
                )
            )

    for key, info in scoped.items():
        is_handler = key in handlers
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                clause = _clause_names(handler)
                # 2. Machinery catch-alls in handlers must re-raise.
                if is_handler:
                    swallows = clause is None or any(
                        t in ("BaseException", "SimulatedCrash") for t in clause
                    )
                    if swallows and not _bare_raise_in(handler.body):
                        findings.append(
                            Finding(
                                RULE,
                                info.src.display,
                                handler.lineno,
                                "catch-all over BaseException/SimulatedCrash "
                                f"in wire handler `{qualname(key)}` without a "
                                "bare `raise`; machinery exceptions must tear "
                                "the task down, not become a frame",
                            )
                        )
                # 3. Typed refusals must not be wrapped retryable.
                caught_refusals = [
                    t
                    for t in (clause or [])
                    if t in TYPED_REFUSALS
                    or any(a in TYPED_REFUSALS for a in hierarchy.ancestors(t))
                ]
                if not caught_refusals:
                    continue
                for inner in ast.walk(handler):
                    if (
                        isinstance(inner, ast.Raise)
                        and inner.exc is not None
                    ):
                        raised = _terminal_name(
                            inner.exc.func
                            if isinstance(inner.exc, ast.Call)
                            else inner.exc
                        )
                        if raised is not None and hierarchy.is_a(
                            raised, "OSError"
                        ):
                            findings.append(
                                Finding(
                                    RULE,
                                    info.src.display,
                                    inner.lineno,
                                    f"typed refusal {caught_refusals[0]} "
                                    f"re-raised as retryable {raised}; "
                                    "refusals must stay typed so clients "
                                    "stop instead of retrying harder",
                                )
                            )
    findings.sort(key=lambda f: (f.path, f.line, f.message))
    return findings
