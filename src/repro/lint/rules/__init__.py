"""Rule modules — importing this package registers every rule."""

from . import (  # noqa: F401
    api_parity,
    async_blocking,
    bare_assert,
    deadline_discipline,
    exception_flow,
    failpoint_parity,
    iofault_parity,
    layout_parity,
    lock_discipline,
    stats_parity,
)
