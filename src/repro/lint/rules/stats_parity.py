"""stats-parity: writes to stats objects must hit declared fields.

The stats dataclasses (``TreeStats``, ``BufferStats``, ``FlushStats``,
``BeTreeStats``, ...) are the contract between the hot paths and the
benchmark/report layer.  Python happily accepts
``tree.stats.fast_insert += 1`` even when the field is spelled
``fast_inserts`` — the typo mints a brand-new attribute and the real
counter silently stays at zero.  (``slots``-less dataclasses don't
protect against this.)

The rule collects every class whose name ends in ``Stats`` and unions
their declared surface: class-body annotations/assignments, ``self.X``
assignments in their methods, and method/property names.  Then every
attribute *write* whose receiver looks like a stats object — an
attribute access ending in ``stats`` (``self.stats``,
``tree.flush_stats``) or a local alias of one — must name a declared
field.  Receivers are matched by shape, not type inference, so the
check is a heuristic; in exchange it needs no imports and runs on
fixture trees.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..engine import Finding, Project, register

RULE = "stats-parity"
SUFFIX = "Stats"


def _declared_surface(project: Project) -> Set[str]:
    fields: Set[str] = set()
    for src in project.files:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith(SUFFIX):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            fields.add(tgt.id)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fields.add(stmt.name)
                    for inner in ast.walk(stmt):
                        if isinstance(inner, (ast.Assign, ast.AugAssign)):
                            targets = (
                                inner.targets
                                if isinstance(inner, ast.Assign)
                                else [inner.target]
                            )
                            for tgt in targets:
                                if (
                                    isinstance(tgt, ast.Attribute)
                                    and isinstance(tgt.value, ast.Name)
                                    and tgt.value.id == "self"
                                ):
                                    fields.add(tgt.attr)
    return fields


def _is_stats_receiver(node: ast.expr, aliases: Set[str]) -> bool:
    """Does ``node`` syntactically look like a stats object?"""
    if isinstance(node, ast.Attribute):
        return node.attr.lower().endswith("stats")
    if isinstance(node, ast.Name):
        return node.id in aliases
    return False


def _collect_aliases(fn: ast.AST) -> Set[str]:
    """Local names bound to a stats-shaped expression within ``fn``."""
    aliases: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        shaped = False
        if isinstance(value, ast.Attribute) and value.attr.lower().endswith("stats"):
            shaped = True
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id.endswith(SUFFIX)
        ):
            shaped = True
        if shaped:
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    aliases.add(tgt.id)
    return aliases


@register(
    RULE,
    "attribute writes on stats objects must name fields the stats classes declare",
)
def check(project: Project) -> List[Finding]:
    declared = _declared_surface(project)
    if not declared:
        return []  # no stats classes in scope; nothing to compare against

    findings: List[Finding] = []
    for src in project.files:
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            aliases = _collect_aliases(fn)
            for node in ast.walk(fn):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if not isinstance(tgt, ast.Attribute):
                        continue
                    if tgt.attr.startswith("_"):
                        continue
                    if not _is_stats_receiver(tgt.value, aliases):
                        continue
                    # `self.stats = TreeStats()` assigns the *stats slot*
                    # on the owner, not a counter on the stats object.
                    if (
                        isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        continue
                    if tgt.attr not in declared:
                        findings.append(
                            Finding(
                                RULE,
                                src.display,
                                node.lineno,
                                f"write to undeclared stats field "
                                f"{tgt.attr!r}; no *{SUFFIX} class declares "
                                "it (likely a typo that mints a dead counter)",
                            )
                        )
    return findings
