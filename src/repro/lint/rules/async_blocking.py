"""async-blocking: no blocking call may run on the event-loop thread.

The asyncio tier (``repro.net``) keeps every piece of server state on
the loop thread and bridges to the blocking storage engine through
``loop.run_in_executor``.  That discipline is purely conventional —
nothing stops a refactor from calling ``ticket.wait()`` or reaching
``os.fsync`` three frames below an ``async def``.  This rule rebuilds
the convention statically:

1. **Blocking facts.**  Every function's *direct* blocking calls are
   collected from the canonical tables in
   :mod:`repro.concurrency.sanitizer` — :data:`~repro.concurrency.
   sanitizer.BLOCKING_CALLS` for dotted names (``os.fsync``,
   ``time.sleep``, bare ``open``) and :data:`~repro.concurrency.
   sanitizer.BLOCKING_METHODS` for method names (``.wait()``,
   ``.acquire()``, ``.drain_acks()``, ``.scrub()`` …).  The runtime
   loop-stall watchdog labels stalls from the same tables, so the
   static and dynamic halves of the contract cannot drift.  A method
   call directly under ``await`` is exempt — ``await lock.acquire()``
   is the asyncio flavor, not the blocking one — and ``asyncio.*``
   never blocks.  A sync-lock ``with`` (recognized exactly as
   ``lock-discipline`` does) is flagged when it appears *directly* in
   an ``async def`` body; lock scopes inside sync helpers are the
   intended loop-thread read path and stay exempt.

2. **Reachability.**  Calls are resolved with the shared
   :mod:`repro.lint.callgraph` resolver and every function reachable
   from an ``async def`` body is visited breadth-first; a blocking
   fact anywhere on the walk is reported *at the blocking call site*
   with the full path from the async entry point.

3. **Clearing.**  Function *references* passed to
   ``run_in_executor``/``asyncio.to_thread`` are not calls, so the
   walk never enters them — wrapping a bridge in an executor clears it
   naturally.  An explicit ``# loop-safe: <reason>`` pragma on a call
   line suppresses that line's facts and the traversal of its calls;
   on a ``def`` line it marks the whole function loop-safe.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ...concurrency.sanitizer import BLOCKING_CALLS, BLOCKING_METHODS
from ..callgraph import (
    CallResolver,
    ClassMap,
    FuncKey,
    FunctionInfo,
    collect_functions,
    collect_self_aliases,
    module_function_index,
    qualname,
)
from ..engine import Finding, Project, register
from .lock_discipline import (
    ATTR_TYPES as _LOCK_ATTR_TYPES,
    CANONICAL,
    EXCLUDED_STEMS,
    LOCK_SUFFIXES,
    NAME_CALL_LOCKS,
)

RULE = "async-blocking"

# Facade typing for call resolution: the lock rule's table plus the
# server's storage handle (the async tier's one blocking dependency).
ATTR_TYPES: Dict[Tuple[str, str], str] = {
    **_LOCK_ATTR_TYPES,
    ("QuitServer", "backend"): "DurableTree",
    ("QuitServer", "admission"): "AdmissionController",
    ("BackgroundServer", "server"): "QuitServer",
}

MODULE_ALIASES: FrozenSet[str] = frozenset({"protocol", "failpoints", "iofaults"})

#: ``# loop-safe: <reason>`` — the reason is mandatory; a bare pragma
#: with nothing to say does not suppress.
LOOP_SAFE_PRAGMA = re.compile(r"#\s*loop-safe:\s*\S")


@dataclass
class _Facts:
    info: FunctionInfo
    loop_safe: bool = False
    direct: List[Tuple[int, str]] = field(default_factory=list)
    calls: List[Tuple[FuncKey, int]] = field(default_factory=list)


def _dotted(expr: ast.expr) -> Optional[str]:
    """``os.fsync`` for a pure ``Name.attr…`` chain, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _blocking_label(call: ast.Call, awaited: bool) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        dotted = _dotted(func)
        if dotted is not None and dotted.startswith("asyncio."):
            return None  # the async flavor never blocks
        if dotted is not None and dotted in BLOCKING_CALLS:
            return f"`{dotted}` ({BLOCKING_CALLS[dotted]})"
        if (
            not awaited
            and func.attr in BLOCKING_METHODS
            # `", ".join(parts)` is a string join, not a thread join.
            and not isinstance(func.value, ast.Constant)
        ):
            return f"`.{func.attr}()` ({BLOCKING_METHODS[func.attr]})"
        return None
    if isinstance(func, ast.Name) and not awaited:
        if func.id in BLOCKING_CALLS:
            return f"`{func.id}()` ({BLOCKING_CALLS[func.id]})"
    return None


def _sync_lock_id(expr: ast.expr, stem: str) -> Optional[str]:
    """Lock id for a ``with`` item, using the lock rule's recognizers."""
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "read_locked",
            "write_locked",
            "locked",
        ):
            return _sync_lock_id(func.value, stem)
        if isinstance(func, ast.Name) and func.id in NAME_CALL_LOCKS:
            return NAME_CALL_LOCKS[func.id]
        return None
    attr = None
    if isinstance(expr, ast.Attribute):
        attr = expr.attr
    elif isinstance(expr, ast.Name):
        attr = expr.id
    if attr is None:
        return None
    canonical = CANONICAL.get((stem, attr))
    if canonical is not None:
        return canonical
    if attr.endswith(LOCK_SUFFIXES):
        return f"{stem}.{attr}"
    return None


def _pragma_lines(text: str) -> Set[int]:
    return {
        i
        for i, line in enumerate(text.splitlines(), start=1)
        if LOOP_SAFE_PRAGMA.search(line)
    }


def _scan(facts: _Facts, resolver: CallResolver, pragmas: Set[int]) -> None:
    stem = facts.info.src.stem

    def walk(node: ast.AST, awaited: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # runs in another dynamic context (or the executor)
        if isinstance(node, ast.Await):
            walk(node.value, True)
            return
        if isinstance(node, ast.Call):
            if node.lineno not in pragmas:
                label = _blocking_label(node, awaited)
                if label is not None:
                    facts.direct.append((node.lineno, label))
                callee = resolver.resolve(node)
                if callee is not None:
                    facts.calls.append((callee, node.lineno))
            # Arguments to asyncio combinators (wait_for, shield,
            # gather …) are coroutines: `.acquire()` there is the
            # asyncio flavor, same as directly under `await`.
            dotted = _dotted(node.func)
            in_combinator = dotted is not None and dotted.startswith("asyncio.")
            for child in ast.iter_child_nodes(node):
                walk(child, in_combinator)
            return
        if isinstance(node, ast.With) and facts.info.is_async:
            for item in node.items:
                if node.lineno in pragmas:
                    continue
                lock = _sync_lock_id(item.context_expr, stem)
                if lock is not None:
                    facts.direct.append(
                        (
                            node.lineno,
                            f"sync lock {lock!r} held on the loop thread "
                            "(use asyncio.Lock or bridge the section)",
                        )
                    )
        for child in ast.iter_child_nodes(node):
            walk(child, False)

    for stmt in getattr(facts.info.node, "body", []):
        walk(stmt, False)


@register(
    RULE,
    "no blocking call may be reachable from an async def on the loop thread",
)
def check(project: Project) -> List[Finding]:
    infos = collect_functions(
        project, excluded_stems=EXCLUDED_STEMS, include_nested=True
    )
    class_map = ClassMap(project)
    class_names = frozenset(class_map.bases)
    module_funcs = module_function_index(infos)
    pragma_cache: Dict[str, Set[int]] = {}

    funcs: Dict[FuncKey, _Facts] = {}
    for info in infos:
        pragmas = pragma_cache.setdefault(
            info.src.display, _pragma_lines(info.src.text)
        )
        facts = _Facts(info, loop_safe=info.node.lineno in pragmas)
        funcs[info.key] = facts
        if facts.loop_safe:
            continue
        resolver = CallResolver(
            class_name=info.class_name,
            stem=info.src.stem,
            class_map=class_map,
            module_funcs=module_funcs,
            class_names=class_names,
            attr_types=ATTR_TYPES,
            module_aliases=MODULE_ALIASES,
            local_aliases=collect_self_aliases(
                info.node, info.class_name, ATTR_TYPES
            ),
        )
        _scan(facts, resolver, pragmas)

    roots = sorted(
        (k for k, f in funcs.items() if f.info.is_async and not f.loop_safe),
        key=lambda k: (funcs[k].info.src.display, funcs[k].info.node.lineno),
    )

    findings: List[Finding] = []
    reported: Set[Tuple[str, int, str]] = set()
    for root in roots:
        parent: Dict[FuncKey, Optional[FuncKey]] = {root: None}
        queue: List[FuncKey] = [root]
        while queue:
            key = queue.pop(0)
            facts = funcs[key]
            for line, label in facts.direct:
                site = (facts.info.src.display, line, label)
                if site in reported:
                    continue
                reported.add(site)
                chain: List[str] = []
                cursor: Optional[FuncKey] = key
                while cursor is not None:
                    chain.append(qualname(cursor))
                    cursor = parent[cursor]
                chain.reverse()
                findings.append(
                    Finding(
                        RULE,
                        facts.info.src.display,
                        line,
                        f"blocking call {label} reachable on the event-loop "
                        f"thread from `async def {qualname(root)}` "
                        f"(path: {' -> '.join(chain)}); bridge it through "
                        "run_in_executor/asyncio.to_thread or annotate the "
                        "line with `# loop-safe: <reason>`",
                    )
                )
            for callee, _line in facts.calls:
                nxt = funcs.get(callee)
                if nxt is None or nxt.loop_safe or callee in parent:
                    continue
                parent[callee] = key
                queue.append(callee)
    findings.sort(key=lambda f: (f.path, f.line))
    return findings
