"""Core of the ``quit-check`` linter: file model, rule protocol, runner.

A :class:`Project` is a bag of parsed Python files.  Rules are pure
functions of the project — they never import or execute the code under
analysis, so the linter works on broken checkouts and fixture trees
with seeded violations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class SourceFile:
    """A parsed Python source file."""

    path: Path
    text: str
    tree: ast.Module

    @property
    def stem(self) -> str:
        return self.path.stem

    @property
    def display(self) -> str:
        return str(self.path)


@dataclass
class Project:
    """The set of files a lint run sees, plus parse errors."""

    files: List[SourceFile] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)

    @classmethod
    def from_paths(cls, paths: Sequence[Path]) -> "Project":
        project = cls()
        for py in _collect(paths):
            try:
                text = py.read_text(encoding="utf-8")
            except OSError as exc:
                project.parse_errors.append(
                    Finding("parse", str(py), 0, f"unreadable: {exc}")
                )
                continue
            try:
                tree = ast.parse(text, filename=str(py))
            except SyntaxError as exc:
                project.parse_errors.append(
                    Finding("parse", str(py), exc.lineno or 0, f"syntax error: {exc.msg}")
                )
                continue
            project.files.append(SourceFile(path=py, text=text, tree=tree))
        return project

    def by_stem(self, stem: str) -> List[SourceFile]:
        return [f for f in self.files if f.stem == stem]


def _collect(paths: Sequence[Path]) -> Iterable[Path]:
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for py in candidates:
            if "__pycache__" in py.parts:
                continue
            key = py.resolve()
            if key not in seen:
                seen.add(key)
                yield py


@dataclass(frozen=True)
class Rule:
    """A named check over a :class:`Project`."""

    name: str
    description: str
    check: Callable[[Project], List[Finding]]


_REGISTRY: Dict[str, Rule] = {}


def register(name: str, description: str) -> Callable[
    [Callable[[Project], List[Finding]]], Callable[[Project], List[Finding]]
]:
    """Decorator: add a check function to the global rule registry."""

    def deco(fn: Callable[[Project], List[Finding]]) -> Callable[[Project], List[Finding]]:
        if name in _REGISTRY:
            raise ValueError(f"duplicate rule name: {name!r}")
        _REGISTRY[name] = Rule(name=name, description=description, check=fn)
        return fn

    return deco


def all_rules() -> Tuple[Rule, ...]:
    """All registered rules, importing the rule modules on first use."""
    from . import rules as _rules  # noqa: F401  (import registers rules)

    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def run_rules(
    project: Project,
    rule_names: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the selected rules (default: all) and return sorted findings.

    Parse errors always surface, regardless of rule selection — a file
    the linter cannot read is a finding in itself.
    """
    rules = all_rules()
    if rule_names:
        wanted = set(rule_names)
        known = {r.name for r in rules}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        rules = tuple(r for r in rules if r.name in wanted)
    findings: List[Finding] = list(project.parse_errors)
    for rule in rules:
        findings.extend(rule.check(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
