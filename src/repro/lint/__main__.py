"""``python -m repro.lint`` → the ``quit-check`` CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
