"""Shared inter-procedural machinery for ``quit-check`` rules.

Three rules do whole-program reasoning over the repo — ``lock-discipline``
(which locks can a call transitively acquire), ``async-blocking`` (which
blocking calls can the event-loop thread transitively reach) and
``exception-flow`` (which exception types can escape a handler).  They
all need the same three ingredients, extracted here so the analyses
cannot drift apart:

* :class:`ClassMap` — class hierarchy + method tables across the whole
  :class:`~repro.lint.engine.Project`, with base-class method
  resolution;
* :class:`CallResolver` — best-effort static resolution of a call
  expression to a :data:`FuncKey`: ``self.method()`` through base
  classes, attribute chains typed by a per-rule ``attr_types`` table
  (``self.durable.wal.sync`` → ``WriteAheadLog.sync``), class-name
  receivers (``DurableTree.recover``), module-alias calls
  (``failpoints.fire``), and bare-name calls to module-level functions.
  Unresolvable calls return ``None`` — every analysis built on this
  *under-approximates* rather than cry wolf;
* :func:`fixpoint` — propagate per-function fact sets to callers until
  stable (the classic bottom-up summary computation).

The per-rule semantic tables (which attributes are locks, which calls
block, which exceptions are typed refusals) stay in the rule modules —
this module only knows the call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from .engine import Project, SourceFile

#: Identity of one analyzed function: ``(owner, name)`` where the owner
#: is a class name, ``"mod:<stem>"`` for module-level functions, or
#: ``"nested:<stem>:<line>"`` for nested defs (collected so their
#: bodies are analyzed, but never resolvable as call targets).
FuncKey = Tuple[str, str]

T = TypeVar("T")


@dataclass
class FunctionInfo:
    """One collected function: where it lives and what it is."""

    key: FuncKey
    src: SourceFile
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]
    is_async: bool
    nested: bool


class ClassMap:
    """Class name -> (bases, method map) across the whole project."""

    def __init__(self, project: Project) -> None:
        self.bases: Dict[str, List[str]] = {}
        self.methods: Dict[FuncKey, bool] = {}
        for src in project.files:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    names = []
                    for b in node.bases:
                        if isinstance(b, ast.Name):
                            names.append(b.id)
                        elif isinstance(b, ast.Attribute):
                            names.append(b.attr)
                    self.bases[node.name] = names
                    for stmt in node.body:
                        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            self.methods[(node.name, stmt.name)] = True

    def resolve_method(self, cls: str, name: str) -> Optional[FuncKey]:
        """The defining ``(class, method)`` pair, walking base classes."""
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            if (cur, name) in self.methods:
                return (cur, name)
            queue.extend(self.bases.get(cur, []))
        return None


def collect_functions(
    project: Project,
    *,
    excluded_stems: FrozenSet[str] = frozenset(),
    include_nested: bool = False,
) -> List[FunctionInfo]:
    """Every function in the project as :class:`FunctionInfo`.

    Top-level functions get ``mod:<stem>`` owners and class methods get
    their class name, exactly as :class:`CallResolver` resolves them.
    With ``include_nested``, defs nested inside other functions are
    collected too (their bodies run in the enclosing dynamic context —
    the async rule must see inside ``async def`` helpers built in a
    CLI ``serve`` function) under unresolvable ``nested:`` owners.
    """
    out: List[FunctionInfo] = []

    def add(node: ast.AST, owner: str, cls: Optional[str], nested: bool) -> None:
        out.append(
            FunctionInfo(
                key=(owner, getattr(node, "name", "<lambda>")),
                src=src,
                node=node,
                class_name=cls,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                nested=nested,
            )
        )

    def walk_nested(body: Iterable[ast.stmt], cls: Optional[str]) -> None:
        for inner in body:
            for node in ast.walk(inner):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(node, f"nested:{src.stem}:{node.lineno}", cls, True)

    for src in project.files:
        if src.stem in excluded_stems:
            continue
        for node in src.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(node, f"mod:{src.stem}", None, False)
                if include_nested:
                    walk_nested(node.body, None)
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        add(stmt, node.name, node.name, False)
                        if include_nested:
                            walk_nested(stmt.body, node.name)
    return out


def module_function_index(
    functions: Iterable[FunctionInfo],
) -> Dict[Tuple[str, str], FuncKey]:
    """``(stem, name)`` -> key for module-level functions, plus a
    ``("*", name)`` fallback for cross-module bare-name calls."""
    index: Dict[Tuple[str, str], FuncKey] = {}
    for info in functions:
        owner, name = info.key
        if owner.startswith("mod:"):
            stem = owner[4:]
            index[(stem, name)] = info.key
            index.setdefault(("*", name), info.key)
    return index


class CallResolver:
    """Resolve call expressions in one function to :data:`FuncKey`\\ s.

    Args:
        class_name: the class owning the function being analyzed (for
            ``self``-receiver typing), or ``None``.
        stem: module stem of the file under analysis.
        class_map: project-wide class hierarchy.
        module_funcs: the :func:`module_function_index`.
        class_names: all known class names (classmethod-style receivers).
        attr_types: per-rule facade typing, ``(class, attr) -> class``.
        module_aliases: names treated as module receivers whose
            attribute calls resolve to that module's functions.
        skip_names: bare-name calls a rule handles specially (the lock
            rule's ``exclusive()``) — resolution returns ``None``.
        local_aliases: local-variable typing for one function, usually
            from :func:`collect_self_aliases` (``backend = self.backend``
            keeps resolving through the facade table).
    """

    def __init__(
        self,
        *,
        class_name: Optional[str],
        stem: str,
        class_map: ClassMap,
        module_funcs: Mapping[Tuple[str, str], FuncKey],
        class_names: FrozenSet[str],
        attr_types: Mapping[Tuple[str, str], str],
        module_aliases: FrozenSet[str] = frozenset(),
        skip_names: FrozenSet[str] = frozenset(),
        local_aliases: Mapping[str, str] = {},
    ) -> None:
        self.class_name = class_name
        self.stem = stem
        self.class_map = class_map
        self.module_funcs = module_funcs
        self.class_names = class_names
        self.attr_types = attr_types
        self.module_aliases = module_aliases
        self.skip_names = skip_names
        self.local_aliases = local_aliases

    def receiver_type(self, expr: ast.expr) -> Optional[str]:
        """Static type of an attribute-chain receiver, or None."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.class_name
            if expr.id in self.local_aliases:
                return self.local_aliases[expr.id]
            if expr.id in self.class_names:
                return expr.id  # classmethod-style receiver
            return None
        if isinstance(expr, ast.Attribute):
            base = self.receiver_type(expr.value)
            if base is None:
                return None
            # Typed facade hop, e.g. Replica.durable -> DurableTree.
            return self.attr_types.get((base, expr.attr))
        return None

    def resolve(self, call: ast.Call) -> Optional[FuncKey]:
        func = call.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in self.module_aliases:
                return self.module_funcs.get((base.id, func.attr))
            recv = self.receiver_type(base)
            if recv is not None:
                return self.class_map.resolve_method(recv, func.attr)
            return None
        if isinstance(func, ast.Name):
            if func.id in self.skip_names:
                return None
            key = self.module_funcs.get((self.stem, func.id))
            if key is not None:
                return key
            return self.module_funcs.get(("*", func.id))
        return None


def collect_self_aliases(
    fn_node: ast.AST,
    class_name: Optional[str],
    attr_types: Mapping[Tuple[str, str], str],
) -> Dict[str, str]:
    """Local ``name = self.<attr>`` aliases typed via ``attr_types``."""
    aliases: Dict[str, str] = {}
    if class_name is None:
        return aliases
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            continue
        typed = attr_types.get((class_name, value.attr))
        if typed is None:
            continue
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                aliases[tgt.id] = typed
    return aliases


def qualname(key: FuncKey) -> str:
    """Human-readable name for a :data:`FuncKey` in finding messages."""
    owner, name = key
    if owner.startswith("mod:"):
        return f"{owner[4:]}.{name}"
    if owner.startswith("nested:"):
        return name
    return f"{owner}.{name}"


def fixpoint(
    calls: Mapping[FuncKey, Iterable[FuncKey]],
    seed: Dict[FuncKey, Set[T]],
) -> Dict[FuncKey, Set[T]]:
    """Propagate callee fact sets into callers until nothing changes.

    ``seed`` maps each function to its *direct* facts; the result adds
    every fact transitively reachable through ``calls``.  The seed dict
    is mutated in place and returned (callers usually want both views —
    pass a copy to keep the direct sets).
    """
    changed = True
    while changed:
        changed = False
        for key, callees in calls.items():
            mine = seed.setdefault(key, set())
            before = len(mine)
            for callee in callees:
                callee_facts = seed.get(callee)
                if callee_facts:
                    mine |= callee_facts
            if len(mine) != before:
                changed = True
    return seed
