"""``quit-check``: repo-aware static analysis for the QuIT tree codebase.

The linter parses the source tree with :mod:`ast` (no imports of the
code under analysis are required for the syntactic rules) and runs a
small set of rules that encode *this repository's* invariants rather
than generic style:

``lock-discipline``
    Builds the static lock-acquisition graph from ``with`` blocks and
    inter-procedural call summaries, checks every nesting edge against
    the canonical order in
    :data:`repro.concurrency.sanitizer.LOCK_ORDER`, and flags writes to
    guarded shared fields that happen outside any lock scope.
``no-bare-assert``
    ``assert`` statements in shipped code vanish under ``python -O``;
    invariant checks must raise explicitly.
``failpoint-parity``
    Every ``failpoints.fire("name")`` literal must be registered in
    ``KNOWN_FAILPOINTS`` and every registered name must be fired
    somewhere — otherwise fault-injection coverage silently rots.
``stats-parity``
    Attribute writes on stats objects must hit declared fields; a typo
    like ``stats.fast_insert += 1`` would otherwise create a fresh
    attribute and under-count forever.
``api-parity``
    Every tree variant / facade must expose the full batched surface
    (``insert_many``, ``get_many``, ``range_iter``, ``scrub``,
    ``check``) so benchmarks and the chaos harness can treat them
    interchangeably.

Entry points: the ``quit-check`` console script, or
``python -m repro.lint [paths...]``.
"""

from .engine import Finding, Project, Rule, SourceFile, all_rules, run_rules

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "run_rules",
]
