"""Fig. 3 — the tail-leaf fast path collapses with tiny out-of-order
fractions (bench target for exp_fig3)."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.sortedness import generate_keys


@pytest.mark.parametrize("k_pct", [0.0, 0.1, 2.0, 10.0])
def test_tail_ingest_by_sortedness(benchmark, scale, k_pct):
    keys = [
        int(x)
        for x in generate_keys(scale.n, k_pct / 100, 1.0, seed=scale.seed)
    ]

    def build():
        tree = make_tree("tail-B+-tree", scale)
        ingest(tree, keys)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["k_pct"] = k_pct
    benchmark.extra_info["fast_fraction"] = round(
        tree.stats.fast_insert_fraction, 4
    )
    if k_pct == 0.0:
        assert tree.stats.fast_insert_fraction == 1.0
    if k_pct >= 2.0:
        # The collapse point scales with n/leaf_capacity (DESIGN.md
        # substitution 1); at smoke scale it sits near K=1-2%.
        assert tree.stats.fast_insert_fraction < 0.35
