"""Fig. 1b — the qualitative comparison, quantified (bench target for
exp_fig1b).  Benchmarks the read path the figure's "read cost" axis is
about."""

import pytest

from repro.bench.fig1b import exp_fig1b
from repro.bench.harness import ingest, make_tree
from repro.workloads.queries import point_lookups


@pytest.mark.parametrize("name", ["B+-tree", "tail-B+-tree", "SWARE", "QuIT"])
def test_read_cost_axis(benchmark, scale, near_sorted_keys, name):
    tree = make_tree(name, scale)
    ingest(tree, near_sorted_keys)
    targets = point_lookups(
        near_sorted_keys, scale.point_lookups, seed=scale.seed
    ).tolist()

    def run():
        get = tree.get
        for k in targets:
            get(k)

    benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["index"] = name


def test_fig1b_shape(scale):
    result = exp_fig1b(scale)
    rows = {r["index"]: r for r in result.rows}
    assert rows["QuIT"]["tuning_knobs"] == 0
    assert rows["QuIT"]["bytes_per_entry_norm"] < 1.0
