"""Fig. 1a — headline: ingestion and lookup latency per index on a
near-sorted stream (bench target for exp_fig1a)."""

import pytest

from repro.bench.harness import make_tree, ingest
from repro.workloads.queries import point_lookups

INDEXES = ("B+-tree", "tail-B+-tree", "SWARE", "QuIT")


@pytest.mark.parametrize("name", INDEXES)
def test_ingest_near_sorted(benchmark, scale, near_sorted_keys, name):
    def build():
        tree = make_tree(name, scale)
        ingest(tree, near_sorted_keys)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    stats = tree.stats
    benchmark.extra_info["index"] = name
    if stats.inserts:
        benchmark.extra_info["fast_fraction"] = round(
            stats.fast_insert_fraction, 4
        )


@pytest.mark.parametrize("name", INDEXES)
def test_point_lookups_near_sorted(benchmark, scale, near_sorted_keys, name):
    tree = make_tree(name, scale)
    ingest(tree, near_sorted_keys)
    targets = point_lookups(
        near_sorted_keys, scale.point_lookups, seed=scale.seed
    ).tolist()

    def run():
        get = tree.get
        for k in targets:
            get(k)

    benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["index"] = name
