"""Fig. 10a — leaf occupancy of QuIT vs the classical B+-tree (bench
target for exp_fig10a)."""

import pytest

from repro.bench.harness import ingest, make_tree


@pytest.mark.parametrize("name", ["B+-tree", "QuIT"])
def test_ingest_and_measure_occupancy(benchmark, scale, sorted_keys, name):
    tree = make_tree(name, scale)
    ingest(tree, sorted_keys)

    occ = benchmark(tree.occupancy)
    benchmark.extra_info["avg_occupancy"] = round(occ.avg_occupancy, 4)
    if name == "QuIT":
        assert occ.avg_occupancy > 0.9
    else:
        assert occ.avg_occupancy < 0.6
