"""Fig. 5b — the analytical fast-insert model and its Monte-Carlo
simulation (bench target for exp_fig5b)."""

from repro.analysis import (
    ideal_fast_fraction,
    lil_expected_fast_fraction,
    simulate_lil_fast_fraction,
)


def test_simulation(benchmark):
    result = benchmark(
        simulate_lil_fast_fraction, 0.25, n=100_000, seed=1
    )
    assert abs(result - lil_expected_fast_fraction(0.25)) < 0.01


def test_closed_form_curve(benchmark):
    def curve():
        grid = [k / 100 for k in range(0, 101)]
        return [
            (lil_expected_fast_fraction(k), ideal_fast_fraction(k))
            for k in grid
        ]

    points = benchmark(curve)
    assert len(points) == 101
    assert all(ideal >= lil for lil, ideal in points)
