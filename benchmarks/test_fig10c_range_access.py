"""Fig. 10c — range queries touch fewer leaves in QuIT (bench target for
exp_fig10c)."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.workloads.queries import range_queries


@pytest.mark.parametrize("selectivity", [0.01, 0.10])
@pytest.mark.parametrize("name", ["B+-tree", "QuIT"])
def test_range_queries(benchmark, scale, sorted_keys, name, selectivity):
    tree = make_tree(name, scale)
    ingest(tree, sorted_keys)
    ranges = range_queries(
        0, scale.n, selectivity, scale.range_lookups, seed=scale.seed
    )

    def run():
        rq = tree.range_query
        for lo, hi in ranges:
            rq(lo, hi)

    benchmark.pedantic(run, rounds=3, iterations=1)
    tree.stats.leaf_accesses = 0
    run()
    benchmark.extra_info["leaf_accesses"] = tree.stats.leaf_accesses
    benchmark.extra_info["selectivity"] = selectivity
