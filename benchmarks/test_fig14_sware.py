"""Fig. 14 — SWARE vs QuIT insert and lookup latency (bench target for
exp_fig14)."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.workloads.queries import point_lookups


@pytest.mark.parametrize("name", ["SWARE", "QuIT"])
def test_insert_latency(benchmark, scale, near_sorted_keys, name):
    def build():
        tree = make_tree(name, scale)
        ingest(tree, near_sorted_keys)
        return tree

    benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index"] = name


@pytest.mark.parametrize("name", ["SWARE", "QuIT"])
def test_lookup_latency_with_live_buffer(
    benchmark, scale, near_sorted_keys, name
):
    tree = make_tree(name, scale)
    ingest(tree, near_sorted_keys)  # SWARE's buffer stays partially full
    targets = point_lookups(
        near_sorted_keys, scale.point_lookups, seed=scale.seed
    ).tolist()

    def run():
        get = tree.get
        for k in targets:
            get(k)

    benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["index"] = name
