"""Fig. 12 — alternating near-sorted / scrambled stress test (bench
target for exp_fig12)."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.workloads import alternating_stress_stream

INDEXES = ("tail-B+-tree", "lil-B+-tree", "pole-B+-tree", "QuIT")


@pytest.mark.parametrize("name", INDEXES)
def test_stress_ingest(benchmark, scale, name):
    keys = [
        int(x)
        for x in alternating_stress_stream(scale.n, 5, seed=scale.seed)
    ]

    def build():
        tree = make_tree(name, scale)
        ingest(tree, keys)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["fast_fraction"] = round(
        tree.stats.fast_insert_fraction, 4
    )
    if name == "QuIT":
        benchmark.extra_info["pole_resets"] = tree.stats.pole_resets
        assert tree.stats.fast_insert_fraction > 0.40
    if name == "pole-B+-tree":
        # Without the reset strategy the pole traps (Fig. 12b).
        assert tree.stats.fast_insert_fraction < 0.45
