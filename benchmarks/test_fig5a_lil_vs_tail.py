"""Fig. 5a — lil vs tail at high sortedness (bench target for
exp_fig5a)."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.sortedness import generate_keys


@pytest.mark.parametrize("name", ["tail-B+-tree", "lil-B+-tree"])
def test_ingest_k1pct(benchmark, scale, name):
    keys = [
        int(x) for x in generate_keys(scale.n, 0.01, 1.0, seed=scale.seed)
    ]

    def build():
        tree = make_tree(name, scale)
        ingest(tree, keys)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["fast_fraction"] = round(
        tree.stats.fast_insert_fraction, 4
    )
    if name == "lil-B+-tree":
        # Eq. 1 at k=1%: ~98% fast inserts.
        assert tree.stats.fast_insert_fraction > 0.9
