"""Fig. 8 — ingestion speedup over the classical B+-tree (bench target
for exp_fig8)."""

import pytest

from repro.bench.harness import ingest, make_tree

INDEXES = ("B+-tree", "tail-B+-tree", "lil-B+-tree", "QuIT")


@pytest.mark.parametrize("name", INDEXES)
@pytest.mark.parametrize("workload", ["sorted", "near_sorted"])
def test_ingest(benchmark, request, scale, name, workload):
    keys = request.getfixturevalue(f"{workload}_keys")

    def build():
        tree = make_tree(name, scale)
        ingest(tree, keys)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index"] = name
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["fast_fraction"] = round(
        tree.stats.fast_insert_fraction, 4
    )
