"""Fig. 11 — K x L sensitivity cells for lil and QuIT (bench target for
exp_fig11; the full grid runs via quit-bench fig11)."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.sortedness import generate_keys

CELLS = [(0.05, 0.05), (0.05, 1.0), (0.25, 1.0)]


@pytest.mark.parametrize("name", ["lil-B+-tree", "QuIT"])
@pytest.mark.parametrize("k,l", CELLS)
def test_kl_cell(benchmark, scale, name, k, l):
    keys = [
        int(x) for x in generate_keys(scale.n, k, l, seed=scale.seed)
    ]

    def build():
        tree = make_tree(name, scale)
        ingest(tree, keys)
        return tree

    tree = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["l"] = l
    benchmark.extra_info["fast_fraction"] = round(
        tree.stats.fast_insert_fraction, 4
    )
    benchmark.extra_info["occupancy"] = round(
        tree.occupancy().avg_occupancy, 4
    )
