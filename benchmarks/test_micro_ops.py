"""Micro-benchmarks of the primitive operations every figure builds on:
single insert (fast vs top path), point lookup, range scan, delete."""

import pytest

from repro.bench.harness import ingest, make_tree

INDEXES = ("B+-tree", "tail-B+-tree", "lil-B+-tree", "pole-B+-tree", "QuIT")


@pytest.mark.parametrize("name", INDEXES)
def test_single_fast_insert(benchmark, scale, name):
    """Appending at the frontier — the operation the fast path optimizes."""
    tree = make_tree(name, scale)
    ingest(tree, range(scale.n))
    counter = [scale.n]

    def op():
        counter[0] += 1
        tree.insert(counter[0], None)

    benchmark(op)
    if name != "B+-tree":
        assert tree.stats.top_inserts <= 1  # only the warmup boundary


@pytest.mark.parametrize("name", INDEXES)
def test_single_top_insert(benchmark, scale, name):
    """A backward out-of-order insert — always a full traversal."""
    tree = make_tree(name, scale)
    ingest(tree, range(0, scale.n * 10, 10))
    probe = [1]

    def op():
        probe[0] += 10
        tree.insert(probe[0], None)

    benchmark(op)


@pytest.mark.parametrize("name", INDEXES)
def test_single_point_lookup(benchmark, scale, name):
    tree = make_tree(name, scale)
    ingest(tree, range(scale.n))
    benchmark(tree.get, scale.n // 2)


def test_range_scan_1pct(benchmark, scale):
    tree = make_tree("QuIT", scale)
    ingest(tree, range(scale.n))
    width = scale.n // 100
    result = benchmark(tree.range_query, scale.n // 2, scale.n // 2 + width)
    assert len(result) == width


def test_single_delete_insert_cycle(benchmark, scale):
    tree = make_tree("B+-tree", scale)
    ingest(tree, range(scale.n))
    key = scale.n // 3

    def op():
        tree.delete(key)
        tree.insert(key, None)

    benchmark(op)
    tree.validate(check_min_fill=False)
