"""Shared fixtures for the pytest-benchmark suite.

Each benchmark file corresponds to one table or figure of the paper (see
DESIGN.md's per-experiment index).  Benchmarks run at the smoke scale so
the whole suite finishes in minutes; run ``quit-bench`` for the
default-scale numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import BenchScale
from repro.sortedness import generate_keys

#: Smoke sizing shared by all benchmark files.  ``REPRO_BENCH_LAYOUT``
#: selects the leaf storage layout (CI's layout job runs the gates under
#: both); default is the tree default, the gapped slot-array layout.
SCALE = BenchScale(
    n=20_000, leaf_capacity=64, point_lookups=500, range_lookups=20,
    repeats=1, seed=42,
    layout=os.environ.get("REPRO_BENCH_LAYOUT", "gapped"),
)


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return SCALE


@pytest.fixture(scope="session")
def sorted_keys():
    return [int(k) for k in generate_keys(SCALE.n, 0.0, 1.0, seed=SCALE.seed)]


@pytest.fixture(scope="session")
def near_sorted_keys():
    return [
        int(k) for k in generate_keys(SCALE.n, 0.05, 1.0, seed=SCALE.seed)
    ]


@pytest.fixture(scope="session")
def less_sorted_keys():
    return [
        int(k) for k in generate_keys(SCALE.n, 0.25, 1.0, seed=SCALE.seed)
    ]


@pytest.fixture(scope="session")
def scrambled_keys():
    return [
        int(k) for k in generate_keys(SCALE.n, 1.0, 1.0, seed=SCALE.seed)
    ]
