"""Bε-tree related-work baseline (bench target for exp_betree; §6)."""

import pytest

from repro.betree import BeTree, BeTreeConfig


@pytest.mark.parametrize("workload", ["sorted", "scrambled"])
def test_betree_ingest(benchmark, scale, request, workload):
    keys = request.getfixturevalue(f"{workload}_keys")
    config = BeTreeConfig(
        leaf_capacity=scale.leaf_capacity,
        fanout=max(4, scale.leaf_capacity // 8),
        buffer_capacity=scale.leaf_capacity * 4,
    )

    def build():
        tree = BeTree(config)
        for k in keys:
            tree.insert(k, k)
        return tree

    tree = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["moves_per_insert"] = round(
        tree.stats.messages_moved / len(keys), 3
    )
