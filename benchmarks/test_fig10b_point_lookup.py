"""Fig. 10b — point-lookup latency of QuIT vs B+-tree (bench target for
exp_fig10b).  QuIT must show no read penalty."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.workloads.queries import point_lookups


@pytest.mark.parametrize("name", ["B+-tree", "QuIT"])
def test_point_lookups(benchmark, scale, near_sorted_keys, name):
    tree = make_tree(name, scale)
    ingest(tree, near_sorted_keys)
    targets = point_lookups(
        near_sorted_keys, scale.point_lookups, seed=scale.seed
    ).tolist()

    def run():
        get = tree.get
        for k in targets:
            get(k)

    benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["index"] = name
    benchmark.extra_info["height"] = tree.height
