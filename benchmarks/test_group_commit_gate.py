"""Group-commit gate: pipelined durable ingest must beat per-op fsync.

CI smoke for the PR 7 tentpole (full-scale numbers live in
BENCH_PR7.json, produced by ``quit-regress --mode durability``): with 8
writers submitting per-key durable inserts, ``fsync="group"`` must
out-ingest ``fsync="always"`` — the batched fsync amortization is the
whole point, so losing this race means the pipeline regressed.
"""

from __future__ import annotations

import pytest

from repro.bench.regress import _durable_ingest_once
from repro.sortedness import generate_keys

WRITERS = 8
N = 4_000


@pytest.fixture(scope="module")
def bench_keys(scale):
    return [int(k) for k in generate_keys(N, 0.05, 1.0, seed=scale.seed)]


def _run(policy, keys, scale):
    seconds, wal_stats = _durable_ingest_once(
        policy, keys, WRITERS, 1, scale
    )
    return seconds, wal_stats


@pytest.mark.parametrize("policy", ["always", "group"])
def test_durable_ingest_policy(benchmark, scale, bench_keys, policy):
    def run():
        return _run(policy, bench_keys, scale)

    seconds, wal_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ingest_seconds"] = round(seconds, 4)
    benchmark.extra_info["ops_per_second"] = round(N / seconds, 1)
    benchmark.extra_info.update(wal_stats)


def test_group_beats_always_with_8_writers(scale, bench_keys):
    """The gate itself: interleaved in-process A/B, best of 2, group
    must be at least as fast as always (it is ~5x at full scale)."""
    best = {"always": float("inf"), "group": float("inf")}
    stats = {}
    for rep in range(2):
        order = ("always", "group") if rep % 2 == 0 else ("group", "always")
        for policy in order:
            seconds, wal_stats = _run(policy, bench_keys, scale)
            if seconds < best[policy]:
                best[policy] = seconds
                stats[policy] = wal_stats
    assert stats["group"]["group_batches"] >= 1
    assert stats["group"]["unsynced_acks"] == 0
    assert best["group"] <= best["always"], (
        f"group commit ingested {N} keys in {best['group']:.3f}s but "
        f"always-fsync took {best['always']:.3f}s — batching should "
        "never lose to per-op fsync with 8 writers"
    )
