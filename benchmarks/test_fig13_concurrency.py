"""Fig. 13 — concurrent throughput (bench target for exp_fig13).

Benchmarks the thread-safe wrapper's two insert paths and records the
modeled 1-16 thread curves in extra_info (DESIGN.md substitution 4)."""

import pytest

from repro.bench.harness import make_tree
from repro.concurrency import (
    ConcurrentTree,
    insert_profile,
    throughput_curve,
)


@pytest.mark.parametrize("name", ["B+-tree", "QuIT"])
def test_concurrent_wrapper_ingest(benchmark, scale, near_sorted_keys, name):
    def build():
        ct = ConcurrentTree(make_tree(name, scale))
        for k in near_sorted_keys:
            ct.insert(k, k)
        return ct

    ct = benchmark.pedantic(build, rounds=2, iterations=1)
    assert len(ct) == len(set(near_sorted_keys))
    fast_frac = ct.fast_path_inserts / len(near_sorted_keys)
    benchmark.extra_info["fast_path_fraction"] = round(fast_frac, 4)
    per_op = benchmark.stats.stats.min / len(near_sorted_keys)
    curve = throughput_curve(insert_profile(per_op, fast_frac))
    benchmark.extra_info["modeled_tput"] = {
        t: round(v) for t, v in curve.items()
    }


def test_quit_models_higher_ceiling(scale, near_sorted_keys):
    results = {}
    for name in ("B+-tree", "QuIT"):
        ct = ConcurrentTree(make_tree(name, scale))
        for k in near_sorted_keys:
            ct.insert(k, k)
        fast_frac = ct.fast_path_inserts / len(near_sorted_keys)
        curve = throughput_curve(insert_profile(2e-6, fast_frac))
        results[name] = curve[16]
    assert results["QuIT"] > 1.3 * results["B+-tree"]
