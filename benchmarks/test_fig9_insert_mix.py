"""Fig. 9 — fast- vs top-insert mix per index (bench target for
exp_fig9).  The benchmark times the full ingest; the insert mix lands in
extra_info and is shape-checked here."""

import pytest

from repro.bench.harness import ingest, make_tree

EXPECTED_MIN_FAST = {
    "tail-B+-tree": 0.0,
    "lil-B+-tree": 0.55,
    "pole-B+-tree": 0.65,
    "QuIT": 0.65,
}


@pytest.mark.parametrize("name", list(EXPECTED_MIN_FAST))
def test_insert_mix_less_sorted(benchmark, scale, less_sorted_keys, name):
    def build():
        tree = make_tree(name, scale)
        ingest(tree, less_sorted_keys)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    fast = tree.stats.fast_insert_fraction
    benchmark.extra_info["fast_fraction"] = round(fast, 4)
    benchmark.extra_info["top_fraction"] = round(
        tree.stats.top_insert_fraction, 4
    )
    assert fast >= EXPECTED_MIN_FAST[name]
