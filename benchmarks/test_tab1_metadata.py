"""Table 1 — metadata digest per index (bench target for exp_tab1).

The 'benchmark' here times the fast-path admission check, which is the
hot use of the Table 1 metadata; the digest itself is asserted."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.core.metadata import extra_metadata_bytes, metadata_bytes


@pytest.mark.parametrize("name", ["tail-B+-tree", "lil-B+-tree", "QuIT"])
def test_fastpath_admission_check(benchmark, scale, near_sorted_keys, name):
    tree = make_tree(name, scale)
    ingest(tree, near_sorted_keys)
    probe = near_sorted_keys[-1] + 1

    result = benchmark(tree._fast_path_accepts, probe)
    assert isinstance(result, bool)


def test_metadata_digest_matches_table1():
    assert metadata_bytes("B+-tree") < metadata_bytes("tail-B+-tree")
    assert 0 < extra_metadata_bytes("QuIT") < 20
