"""Read/write mix sensitivity (bench target for exp_mixed_rw; §2's
argument that SWARE's read penalty grows with the read share)."""

import itertools

import pytest

from repro.bench.harness import make_tree
from repro.workloads.queries import point_lookups


@pytest.mark.parametrize("read_pct", [0, 50, 90])
@pytest.mark.parametrize("name", ["B+-tree", "SWARE", "QuIT"])
def test_mixed_workload(benchmark, scale, near_sorted_keys, name, read_pct):
    warm = near_sorted_keys[: scale.n // 2]
    live = near_sorted_keys[scale.n // 2:]
    targets = point_lookups(
        near_sorted_keys, 1000, seed=scale.seed
    ).tolist()
    reads_per_insert = read_pct / (100 - read_pct) if read_pct < 100 else 0

    def build_and_run():
        tree = make_tree(name, scale)
        for k in warm:
            tree.insert(k, k)
        cyc = itertools.cycle(targets)
        acc = 0.0
        for k in live:
            tree.insert(k, k)
            acc += reads_per_insert
            while acc >= 1.0:
                tree.get(next(cyc))
                acc -= 1.0
        return tree

    benchmark.pedantic(build_and_run, rounds=2, iterations=1)
    benchmark.extra_info["read_pct"] = read_pct
    benchmark.extra_info["index"] = name
