"""Batched sorted-run ingest (``insert_many``) vs per-key ``insert``.

Two parts:

* pytest-benchmark cases at the shared smoke scale, one per index, for
  both ingest styles — these feed regression tracking alongside the
  figure benchmarks;
* a hard throughput assertion at the default scale (n=100000, K=5%,
  L=5%): batched ingest into the classical B+-tree must be at least 3x
  faster than per-key ingest.  The classical tree is the honest subject
  for the ratio — its per-key path has no fast-path shortcut, so the
  comparison isolates what batching buys.  ``BENCH_PR1.json`` (repo
  root) records the same measurement for the full matrix via
  ``python -m repro.bench.regress --out BENCH_PR1.json``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchScale, ingest, ingest_batched, make_tree
from repro.sortedness.bods import generate_keys

INDEXES = ("B+-tree", "tail-B+-tree", "lil-B+-tree", "QuIT", "SWARE")

#: Chunk size used throughout; matches the regress default.
BATCH_SIZE = 4096


@pytest.fixture(scope="module")
def bods_keys(scale):
    """K=5%, L=5% near-sorted stream at smoke scale."""
    return [
        int(k) for k in generate_keys(scale.n, 0.05, 0.05, seed=scale.seed)
    ]


@pytest.mark.parametrize("name", INDEXES)
def test_per_key_ingest(benchmark, scale, bods_keys, name):
    def build():
        tree = make_tree(name, scale)
        ingest(tree, bods_keys)
        return tree

    benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index"] = name
    benchmark.extra_info["style"] = "per-key"


@pytest.mark.parametrize("name", INDEXES)
def test_batched_ingest(benchmark, scale, bods_keys, name):
    def build():
        tree = make_tree(name, scale)
        ingest_batched(tree, bods_keys, BATCH_SIZE)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index"] = name
    benchmark.extra_info["style"] = f"batched-{BATCH_SIZE}"
    stats = tree.stats if name != "SWARE" else tree.tree.stats
    benchmark.extra_info["batch_runs"] = stats.batch_runs
    benchmark.extra_info["batch_segments"] = stats.batch_segments


def test_batched_beats_per_key_3x():
    """Acceptance gate: >=3x batched throughput on the classical B+-tree
    for the K=5%, L=5% BoDS stream at default scale.

    Measured best-of-5 on both sides to suppress scheduler jitter; the
    committed BENCH_PR1.json records ~5x for this cell, so 3x leaves
    generous headroom without making the gate vacuous.
    """
    scale = BenchScale.default()
    keys = [
        int(k) for k in generate_keys(scale.n, 0.05, 0.05, seed=scale.seed)
    ]
    repeats = 5
    per_key = min(
        ingest(make_tree("B+-tree", scale), keys) for _ in range(repeats)
    )
    batched = min(
        ingest_batched(make_tree("B+-tree", scale), keys, BATCH_SIZE)
        for _ in range(repeats)
    )
    speedup = per_key / batched
    assert speedup >= 3.0, (
        f"batched ingest speedup degraded: {speedup:.2f}x "
        f"(per-key {per_key:.3f}s, batched {batched:.3f}s)"
    )


@pytest.mark.parametrize("name", INDEXES)
def test_batched_no_regression_vs_per_key(scale, bods_keys, name):
    """Every entry point must not be slower batched than per-key (with a
    tolerance for timer noise at smoke scale): fast-path variants already
    serve most inserts in O(1), so their ratio is smaller, but batching
    must never cost throughput."""
    per_key = min(
        ingest(make_tree(name, scale), bods_keys) for _ in range(3)
    )
    batched = min(
        ingest_batched(make_tree(name, scale), bods_keys, BATCH_SIZE)
        for _ in range(3)
    )
    assert batched <= per_key * 1.10, (
        f"{name}: batched {batched:.3f}s slower than per-key {per_key:.3f}s"
    )
