"""Batched point lookups (``get_many``) vs per-key ``get``.

Two parts, mirroring ``test_batch_ingest.py``:

* pytest-benchmark cases at the shared smoke scale, one per index, for
  both read styles — these feed regression tracking alongside the figure
  benchmarks;
* a hard throughput assertion at the default scale (n=100000, K=5%,
  L=5%): replaying the BoDS arrival order as the probe stream (the read
  phase of the paper's mixed workloads), ``get_many`` on the classical
  B+-tree must be at least 2x faster than the per-key ``get`` loop.
  The classical tree is the honest subject for the ratio — its per-key
  path has no fast-path read shortcut, so the comparison isolates what
  probe sorting and leaf-chain draining buy.
  ``BENCH_PR2.json`` (repo root) records the same measurement for the
  full matrix via ``python -m repro.bench.regress --mode reads --out
  BENCH_PR2.json``.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import (
    BenchScale,
    ingest_batched,
    make_tree,
    time_point_lookups,
    time_point_lookups_batched,
)
from repro.sortedness.bods import generate_keys

INDEXES = ("B+-tree", "tail-B+-tree", "lil-B+-tree", "QuIT", "SWARE")

#: Probe chunk size; matches the regress ``--read-batch-size`` default.
READ_BATCH_SIZE = 4096


@pytest.fixture(scope="module")
def bods_keys(scale):
    """K=5%, L=5% near-sorted stream at smoke scale."""
    return [
        int(k) for k in generate_keys(scale.n, 0.05, 0.05, seed=scale.seed)
    ]


@pytest.fixture(scope="module")
def probe_targets(bods_keys):
    """Full-coverage probe set replaying the BoDS arrival order — the
    same near-sorted stream the regress reads mode times."""
    return list(bods_keys)


def _build(name, scale, keys):
    tree = make_tree(name, scale)
    ingest_batched(tree, keys, READ_BATCH_SIZE)
    if name == "SWARE":
        tree.flush()
    return tree


@pytest.mark.parametrize("name", INDEXES)
def test_per_key_reads(benchmark, scale, bods_keys, probe_targets, name):
    tree = _build(name, scale, bods_keys)
    benchmark.pedantic(
        lambda: time_point_lookups(tree, probe_targets, repeats=1),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["index"] = name
    benchmark.extra_info["style"] = "per-key"


@pytest.mark.parametrize("name", INDEXES)
def test_batched_reads(benchmark, scale, bods_keys, probe_targets, name):
    tree = _build(name, scale, bods_keys)
    benchmark.pedantic(
        lambda: time_point_lookups_batched(
            tree, probe_targets, READ_BATCH_SIZE, repeats=1
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["index"] = name
    benchmark.extra_info["style"] = f"batched-{READ_BATCH_SIZE}"
    stats = tree.stats
    benchmark.extra_info["read_batches"] = stats.read_batches
    benchmark.extra_info["read_chain_hits"] = stats.read_chain_hits
    benchmark.extra_info["read_redescents"] = stats.read_redescents


def test_batched_beats_per_key_2x():
    """Acceptance gate: >=2x batched read throughput on the classical
    B+-tree for a shuffled full-coverage probe set at default scale.

    Measured best-of-5 on both sides to suppress scheduler jitter; the
    committed BENCH_PR2.json records ~3.4x for this cell, so 2x leaves
    headroom without making the gate vacuous.
    """
    scale = BenchScale.default()
    keys = [
        int(k) for k in generate_keys(scale.n, 0.05, 0.05, seed=scale.seed)
    ]
    tree = _build("B+-tree", scale, keys)
    targets = list(keys)
    per_key = time_point_lookups(tree, targets, repeats=5)
    batched = time_point_lookups_batched(
        tree, targets, READ_BATCH_SIZE, repeats=5
    )
    speedup = per_key / batched
    assert speedup >= 2.0, (
        f"batched read speedup degraded: {speedup:.2f}x "
        f"(per-key {per_key:.3f}s, batched {batched:.3f}s)"
    )


@pytest.mark.parametrize("name", INDEXES)
def test_get_many_agrees_with_get(scale, bods_keys, probe_targets, name):
    """The timed paths must agree bit-for-bit: every probe answered by
    ``get_many`` matches per-key ``get``, misses and shuffled (adversarial
    for chain locality) probe order included."""
    tree = _build(name, scale, bods_keys)
    probes = probe_targets[:2_000] + [-1, max(bods_keys) + 7]
    random.Random(scale.seed + 1).shuffle(probes)
    expected = [tree.get(k) for k in probes]
    assert tree.get_many(probes) == expected
