"""Ablation — QuIT's variable-split / redistribute / reset strategies
toggled independently (bench target for exp_ablation_quit_features)."""

import pytest

from repro.core import (
    PoleBPlusTree,
    QuITNoResetTree,
    QuITNoVariableSplitTree,
    QuITTree,
)
from repro.bench.harness import ingest
from repro.workloads import alternating_stress_stream

CONTENDERS = {
    "QuIT": QuITTree,
    "QuIT-no-reset": QuITNoResetTree,
    "QuIT-50%-split": QuITNoVariableSplitTree,
    "pole-B+-tree": PoleBPlusTree,
}


@pytest.mark.parametrize("name", list(CONTENDERS))
def test_stress_ingest_ablation(benchmark, scale, name):
    keys = [
        int(x)
        for x in alternating_stress_stream(scale.n, 5, seed=scale.seed)
    ]
    cls = CONTENDERS[name]

    def build():
        tree = cls(scale.tree_config)
        ingest(tree, keys)
        return tree

    tree = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["fast_fraction"] = round(
        tree.stats.fast_insert_fraction, 4
    )
    benchmark.extra_info["occupancy"] = round(
        tree.occupancy().avg_occupancy, 4
    )
