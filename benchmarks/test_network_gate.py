"""Network-ingest gate: the loopback-served pipelined path must stay
within a fixed factor of the in-process ``submit_many`` baseline.

CI smoke for the PR 9 satellite (full-scale numbers live in
BENCH_PR9.json, produced by ``quit-regress --mode network``): the wire
adds framing, the asyncio hop, and admission — a bounded tax, measured
at ~2.5x at full scale.  The gate bounds it at :data:`MAX_FACTOR` so a
regression in the server's request path (a lost pipelining window, an
accidental per-frame fsync, a serialization blow-up) fails loudly
rather than shipping as "the network is just slow".
"""

from __future__ import annotations

import pytest

from repro.bench.regress import _durable_ingest_once, _network_ingest_once
from repro.sortedness import generate_keys

N = 4_000
BATCH = 256
WINDOW = 32

#: Allowed wall-clock factor of network over in-process.  Observed
#: ~2.5x at full scale and ~2.5x at smoke; 8x leaves room for CI-host
#: noise while still catching an order-of-magnitude request-path
#: regression.
MAX_FACTOR = 8.0


@pytest.fixture(scope="module")
def bench_keys(scale):
    return [int(k) for k in generate_keys(N, 0.05, 1.0, seed=scale.seed)]


def test_pipelined_network_ingest_benchmark(benchmark, scale, bench_keys):
    def run():
        return _network_ingest_once(bench_keys, 1, BATCH, WINDOW, scale)

    seconds, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ingest_seconds"] = round(seconds, 4)
    benchmark.extra_info["ops_per_second"] = round(N / seconds, 1)
    benchmark.extra_info["net_requests"] = stats.get("net_requests", 0)
    benchmark.extra_info["net_inflight_max"] = stats.get(
        "net_inflight_max", 0
    )


def test_network_within_factor_of_inprocess(scale, bench_keys):
    """The gate itself: best of 2 per side, interleaved."""
    best = {"inprocess": float("inf"), "network": float("inf")}
    for rep in range(2):
        order = (
            ("inprocess", "network") if rep % 2 == 0
            else ("network", "inprocess")
        )
        for side in order:
            if side == "inprocess":
                seconds, _ = _durable_ingest_once(
                    "group", bench_keys, 1, BATCH, scale
                )
            else:
                seconds, _ = _network_ingest_once(
                    bench_keys, 1, BATCH, WINDOW, scale
                )
            best[side] = min(best[side], seconds)
    factor = best["network"] / best["inprocess"]
    assert factor <= MAX_FACTOR, (
        f"network ingest took {best['network']:.3f}s vs "
        f"{best['inprocess']:.3f}s in-process ({factor:.2f}x > "
        f"{MAX_FACTOR}x): the request path regressed"
    )
