"""Cache-residency simulation (bench target for exp_cache; the Fig. 10b
mechanism)."""

import pytest

from repro.analysis import simulate_lookup_cache
from repro.bench.harness import ingest, make_tree
from repro.workloads.queries import point_lookups


@pytest.mark.parametrize("name", ["B+-tree", "QuIT"])
def test_cache_replay(benchmark, scale, sorted_keys, name):
    tree = make_tree(name, scale)
    ingest(tree, sorted_keys)
    targets = point_lookups(
        sorted_keys, scale.point_lookups, seed=scale.seed
    ).tolist()
    pages = max(1, tree.occupancy().node_count // 3)

    report = benchmark(
        simulate_lookup_cache, tree, targets, cache_pages=pages
    )
    benchmark.extra_info["hit_rate"] = round(report.hit_rate, 4)
    benchmark.extra_info["nodes"] = tree.occupancy().node_count
