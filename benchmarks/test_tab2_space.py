"""Table 2 — space reduction of QuIT over the B+-tree (bench target for
exp_tab2)."""

import pytest

from repro.analysis import space_reduction
from repro.bench.harness import ingest, make_tree


@pytest.mark.parametrize("name", ["B+-tree", "QuIT"])
def test_memory_accounting(benchmark, scale, sorted_keys, name):
    tree = make_tree(name, scale)
    ingest(tree, sorted_keys)

    total = benchmark(tree.memory_bytes)
    benchmark.extra_info["memory_kb"] = total // 1024


def test_sorted_reduction_near_2x(scale, sorted_keys):
    bt = make_tree("B+-tree", scale)
    qt = make_tree("QuIT", scale)
    ingest(bt, sorted_keys)
    ingest(qt, sorted_keys)
    # Paper Table 2: 1.96x at K=0.
    assert space_reduction(bt, qt) > 1.7
