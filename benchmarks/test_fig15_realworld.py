"""Fig. 15 — ingestion of (synthetic) stock-price data (bench target for
exp_fig15)."""

from dataclasses import replace

import pytest

from repro.bench.harness import ingest, make_tree
from repro.workloads import NIFTY_SPEC, SPXUSD_SPEC, instrument_keys

INDEXES = ("B+-tree", "tail-B+-tree", "SWARE", "lil-B+-tree", "QuIT")


@pytest.fixture(scope="module", params=["NIFTY", "SPXUSD"])
def instrument_stream(request):
    spec = NIFTY_SPEC if request.param == "NIFTY" else SPXUSD_SPEC
    keys = instrument_keys(replace(spec, n=20_000))
    return request.param, [int(k) for k in keys]


@pytest.mark.parametrize("name", INDEXES)
def test_ingest_instrument(benchmark, scale, instrument_stream, name):
    label, keys = instrument_stream

    def build():
        tree = make_tree(name, scale)
        ingest(tree, keys)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["instrument"] = label
    if name != "SWARE":
        benchmark.extra_info["fast_fraction"] = round(
            tree.stats.fast_insert_fraction, 4
        )
    if name == "QuIT":
        assert tree.stats.fast_insert_fraction > 0.6
