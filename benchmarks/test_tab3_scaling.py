"""Table 3 — QuIT's scaling with data size (bench target for exp_tab3)."""

import pytest

from repro.bench.harness import ingest, make_tree
from repro.sortedness import generate_keys


@pytest.mark.parametrize("factor", [1, 2, 4])
def test_quit_ingest_scaling(benchmark, scale, factor):
    n = scale.n * factor
    keys = [int(x) for x in generate_keys(n, 0.05, 0.05, seed=scale.seed)]

    def build():
        tree = make_tree("QuIT", scale)
        ingest(tree, keys)
        return tree

    tree = benchmark.pedantic(build, rounds=2, iterations=1)
    fast = tree.stats.fast_insert_fraction
    benchmark.extra_info["n"] = n
    benchmark.extra_info["fast_fraction"] = round(fast, 4)
    # Table 3: the fast-insert fraction is size-invariant (~95% at the
    # nearly-sorted setting).
    assert fast > 0.85
