"""Tests for the Bloom filter."""

import pytest

from repro.sware.bloom import BloomFilter, _hash_pair


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BloomFilter(0)

    @pytest.mark.parametrize("fp", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_fp_rate(self, fp):
        with pytest.raises(ValueError):
            BloomFilter(10, fp_rate=fp)

    def test_rejects_bad_n_hashes(self):
        with pytest.raises(ValueError):
            BloomFilter(10, n_hashes=0)

    def test_sizing_scales_with_capacity(self):
        small = BloomFilter(100)
        big = BloomFilter(10_000)
        assert big.bit_size > small.bit_size
        assert big.memory_bytes > small.memory_bytes


class TestMembership:
    def test_no_false_negatives(self):
        bf = BloomFilter(1000, fp_rate=0.01)
        for k in range(1000):
            bf.add(k)
        assert all(bf.might_contain(k) for k in range(1000))

    def test_no_false_negatives_hashed_api(self):
        bf = BloomFilter(500)
        for k in range(500):
            bf.add_hashed(*_hash_pair(k))
        for k in range(500):
            assert bf.might_contain_hashed(*_hash_pair(k))
            assert bf.might_contain(k)

    def test_empty_filter_rejects_everything(self):
        bf = BloomFilter(100)
        assert not any(bf.might_contain(k) for k in range(1000))

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(2000, fp_rate=0.01)
        for k in range(2000):
            bf.add(k)
        false_positives = sum(
            1 for k in range(100_000, 110_000) if bf.might_contain(k)
        )
        # Information-optimal would be ~1%; allow generous slack.
        assert false_positives / 10_000 < 0.08

    def test_contains_dunder(self):
        bf = BloomFilter(10)
        bf.add("hello")
        assert "hello" in bf

    def test_strings_and_tuples(self):
        bf = BloomFilter(100)
        items = ["a", "bb", ("x", 1), 3.5]
        bf.update(items)
        assert all(bf.might_contain(i) for i in items)

    def test_clear(self):
        bf = BloomFilter(100)
        bf.update(range(50))
        bf.clear()
        assert bf.count == 0
        assert not any(bf.might_contain(k) for k in range(50))

    def test_count_tracks_adds(self):
        bf = BloomFilter(100)
        bf.update(range(30))
        assert bf.count == 30

    def test_estimated_fp_rate_grows_with_load(self):
        bf = BloomFilter(100, fp_rate=0.01)
        assert bf.estimated_fp_rate() == 0.0
        bf.update(range(50))
        mid = bf.estimated_fp_rate()
        bf.update(range(50, 200))
        assert bf.estimated_fp_rate() > mid > 0.0


class TestHashPair:
    def test_second_hash_is_odd(self):
        for item in (0, 1, 12345, "abc", (1, 2)):
            _, h2 = _hash_pair(item)
            assert h2 % 2 == 1

    def test_deterministic(self):
        assert _hash_pair(42) == _hash_pair(42)

    def test_dense_integers_spread(self):
        # Consecutive integers must not collide into the same position.
        positions = {_hash_pair(k)[0] % 1024 for k in range(512)}
        assert len(positions) > 300
