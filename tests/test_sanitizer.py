"""Runtime lock-sanitizer tests: every violation kind is detectable,
lock wrappers report correctly, and a real concurrent workload under
the canonical discipline stays violation-free."""

import threading

import pytest

from repro.concurrency import sanitizer
from repro.concurrency.concurrent_tree import ConcurrentTree
from repro.concurrency.locks import RWLock, StripedLocks
from repro.core import QuITTree


@pytest.fixture
def sanitized():
    """Enable the sanitizer for one test, restoring prior state after."""
    was_enabled = sanitizer.enabled()
    sanitizer.enable()
    sanitizer.reset()
    yield
    sanitizer.take_violations()
    sanitizer.reset()
    if not was_enabled:
        sanitizer.disable()


def kinds():
    return [v.kind for v in sanitizer.violations()]


def test_factory_returns_plain_lock_when_disabled():
    was_enabled = sanitizer.enabled()
    sanitizer.disable()
    try:
        lock = sanitizer.make_lock("t.plain")
        assert not isinstance(lock, sanitizer.SanitizedLock)
    finally:
        if was_enabled:
            sanitizer.enable()


def test_factory_returns_sanitized_lock_when_enabled(sanitized):
    lock = sanitizer.make_lock("t.audited")
    assert isinstance(lock, sanitizer.SanitizedLock)
    with lock:
        assert "t.audited" in sanitizer.held_locks()
    assert "t.audited" not in sanitizer.held_locks()


def test_order_inversion_via_graph(sanitized):
    a = sanitizer.SanitizedLock("t.a")
    b = sanitizer.SanitizedLock("t.b")
    with a:
        with b:
            pass
    assert kinds() == []  # first order observed: no violation yet
    with b:
        with a:
            pass
    assert "order-inversion" in kinds()
    (v,) = sanitizer.take_violations()
    assert "'t.b' -> 't.a'" in v.message
    assert v.other_stack  # carries the earlier opposite-order stack


def test_rank_inversion_against_canonical_order(sanitized):
    outer = sanitizer.SanitizedLock("wal.append")
    inner = sanitizer.SanitizedLock("durable.gate")
    with outer:
        with inner:
            pass
    assert "rank-inversion" in kinds()


def test_canonical_order_is_silent(sanitized):
    gate = sanitizer.SanitizedLock("durable.gate")
    wal = sanitizer.SanitizedLock("wal.append")
    with gate:
        with wal:
            pass
    assert sanitizer.take_violations() == []


def test_self_reacquire(sanitized):
    # Two distinct mutexes sharing one name model the striped-pool
    # convention (all stripes report as one lock) without deadlocking.
    first = sanitizer.SanitizedLock("t.stripe")
    second = sanitizer.SanitizedLock("t.stripe")
    with first:
        with second:
            pass
    assert "self-reacquire" in kinds()


def test_fsync_hazard_under_short_lock(sanitized):
    meta = sanitizer.SanitizedLock("concurrent.meta")
    with meta:
        sanitizer.note_fsync("test.site")
    (v,) = sanitizer.take_violations()
    assert v.kind == "fsync-under-lock"
    assert "concurrent.meta" in v.message


def test_fsync_under_coarse_gate_is_designed(sanitized):
    gate = sanitizer.SanitizedLock("durable.gate")
    with gate:
        sanitizer.note_fsync("test.site")
    assert sanitizer.take_violations() == []


def test_note_fsync_noop_when_disabled():
    was_enabled = sanitizer.enabled()
    sanitizer.disable()
    try:
        before = sanitizer.counters()["fsync_checks"]
        sanitizer.note_fsync("test.site")
        assert sanitizer.counters()["fsync_checks"] == before
    finally:
        if was_enabled:
            sanitizer.enable()


def test_take_violations_drains(sanitized):
    lock = sanitizer.SanitizedLock("t.x")
    with lock:
        with sanitizer.SanitizedLock("t.x"):
            pass
    assert sanitizer.take_violations() != []
    assert sanitizer.violations() == []


def test_rwlock_reports_when_named(sanitized):
    rw = RWLock(name="t.rw")
    with rw.read_locked():
        assert "t.rw" in sanitizer.held_locks()
    with rw.write_locked():
        assert "t.rw" in sanitizer.held_locks()
    assert "t.rw" not in sanitizer.held_locks()
    assert sanitizer.take_violations() == []


def test_striped_locks_share_one_name(sanitized):
    pool = StripedLocks(n_stripes=4, name="t.stripes")
    with pool.lock_for(0):
        assert "t.stripes" in sanitizer.held_locks()
        # Nesting a *different* stripe under the first is exactly the
        # unordered stripe-stripe nesting the shared name exists to
        # catch.
        with pool.lock_for(1):
            pass
    assert "self-reacquire" in [v.kind for v in sanitizer.take_violations()]


def test_concurrent_workload_is_violation_free(sanitized):
    tree = ConcurrentTree(QuITTree())
    errors = []

    def writer(base):
        try:
            for i in range(300):
                tree.insert(base + i, i)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def reader():
        try:
            for i in range(100):
                tree.get(i)
                tree.range_query(0, 50)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(k * 1000,)) for k in range(3)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    counts = sanitizer.counters()
    assert counts["acquisitions"] > 0  # instrumentation really ran
    assert sanitizer.take_violations() == []
    assert tree.check() == []


# ---------------------------------------------------------------------------
# loop-stall watchdog
# ---------------------------------------------------------------------------


def test_loop_stall_reported_with_frame(sanitized):
    import asyncio
    import time

    dog = sanitizer.LoopStallWatchdog(threshold=0.1)

    async def stall():
        dog.install(asyncio.get_running_loop())
        try:
            await asyncio.sleep(0)
            time.sleep(0.3)  # loop-safe: deliberate stall under test
            await asyncio.sleep(0)
        finally:
            dog.uninstall()

    asyncio.run(stall())
    stalls = [v for v in sanitizer.take_violations() if v.kind == "loop-stall"]
    assert stalls, "injected time.sleep on the loop thread was not reported"
    assert dog.stalls_reported >= 1
    v = stalls[0]
    assert "stalled" in v.message
    # The classified frame points back into this test file.
    assert "test_sanitizer.py" in v.message


def test_loop_watchdog_healthy_loop_silent(sanitized):
    import asyncio

    dog = sanitizer.LoopStallWatchdog(threshold=0.1)

    async def healthy():
        dog.install(asyncio.get_running_loop())
        try:
            for _ in range(10):
                await asyncio.sleep(0.02)
        finally:
            dog.uninstall()

    asyncio.run(healthy())
    assert dog.stalls_reported == 0
    assert "loop-stall" not in kinds()


def test_make_loop_watchdog_disabled():
    import asyncio

    was_enabled = sanitizer.enabled()
    sanitizer.disable()
    try:

        async def probe():
            return sanitizer.make_loop_watchdog(asyncio.get_running_loop())

        assert asyncio.run(probe()) is None
    finally:
        if was_enabled:
            sanitizer.enable()


def test_server_arms_watchdog_when_sanitizing(sanitized):
    from repro.net.server import QuitServer

    server = QuitServer(object())

    async def lifecycle():
        await server.start()
        assert server._watchdog is not None
        await server.drain()
        assert server._watchdog is None

    import asyncio

    asyncio.run(lifecycle())
