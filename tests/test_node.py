"""Tests for repro.core.node (leaf and internal node mechanics)."""

import pytest

from repro.core.node import InternalNode, LeafNode


def make_leaf(keys):
    leaf = LeafNode()
    for k in keys:
        leaf.insert_entry(k, k * 10)
    return leaf


class TestLeafNode:
    def test_insert_keeps_sorted(self):
        leaf = make_leaf([5, 1, 3, 2, 4])
        assert leaf.keys == [1, 2, 3, 4, 5]
        assert leaf.values == [10, 20, 30, 40, 50]

    def test_insert_duplicate_upserts(self):
        leaf = make_leaf([1, 2, 3])
        assert leaf.insert_entry(2, 99) is False
        assert leaf.keys == [1, 2, 3]
        assert leaf.values[1] == 99

    def test_append_path_matches_general_path(self):
        ascending = make_leaf(list(range(10)))
        shuffled = make_leaf([7, 3, 9, 1, 0, 8, 2, 5, 4, 6])
        assert ascending.keys == shuffled.keys

    def test_find(self):
        leaf = make_leaf([10, 20, 30])
        assert leaf.find(20) == 1
        assert leaf.find(15) is None
        assert leaf.find(5) is None
        assert leaf.find(35) is None

    def test_min_max(self):
        leaf = make_leaf([4, 2, 9])
        assert leaf.min_key == 2
        assert leaf.max_key == 9

    def test_remove_at(self):
        leaf = make_leaf([1, 2, 3])
        key, value = leaf.remove_at(1)
        assert (key, value) == (2, 20)
        assert leaf.keys == [1, 3]

    def test_position_first_greater(self):
        leaf = make_leaf([10, 20, 30, 40])
        assert leaf.position_first_greater(5) == 0
        assert leaf.position_first_greater(20) == 2
        assert leaf.position_first_greater(25) == 2
        assert leaf.position_first_greater(40) == 4

    def test_split_at_middle(self):
        leaf = make_leaf(list(range(8)))
        right, split_key = leaf.split_at(4)
        assert split_key == 4
        assert leaf.keys == [0, 1, 2, 3]
        assert right.keys == [4, 5, 6, 7]
        assert leaf.next is right and right.prev is leaf

    def test_split_preserves_chain(self):
        a = make_leaf([1, 2, 3, 4])
        c = make_leaf([9])
        a.next, c.prev = c, a
        b, _ = a.split_at(2)
        assert a.next is b and b.next is c
        assert c.prev is b and b.prev is a

    @pytest.mark.parametrize("pos", [0, 8, -1])
    def test_split_rejects_degenerate_positions(self, pos):
        leaf = make_leaf(list(range(8)))
        with pytest.raises(ValueError):
            leaf.split_at(pos)

    def test_items(self):
        leaf = make_leaf([2, 1])
        assert list(leaf.items()) == [(1, 10), (2, 20)]


class TestInternalNode:
    def _node_with_children(self, pivots):
        node = InternalNode()
        node.keys = list(pivots)
        node.children = []
        lo = None
        bounds = [None, *pivots, None]
        for i in range(len(pivots) + 1):
            child = LeafNode()
            start = bounds[i] if bounds[i] is not None else 0
            child.insert_entry(start, start)
            child.parent = node
            node.children.append(child)
        return node

    def test_child_index_for(self):
        node = self._node_with_children([10, 20])
        assert node.child_index_for(5) == 0
        assert node.child_index_for(10) == 1
        assert node.child_index_for(15) == 1
        assert node.child_index_for(20) == 2
        assert node.child_index_for(99) == 2

    def test_index_of_child(self):
        node = self._node_with_children([10, 20, 30])
        for i, child in enumerate(node.children):
            assert node.index_of_child(child) == i

    def test_index_of_child_empty_child_falls_back_to_scan(self):
        node = self._node_with_children([10])
        node.children[1].keys.clear()
        node.children[1].values.clear()
        assert node.index_of_child(node.children[1]) == 1

    def test_index_of_foreign_child_raises(self):
        node = self._node_with_children([10])
        with pytest.raises(ValueError):
            node.index_of_child(LeafNode())

    def test_insert_child(self):
        node = self._node_with_children([10, 30])
        fresh = LeafNode()
        fresh.insert_entry(20, 20)
        node.insert_child(20, fresh)
        assert node.keys == [10, 20, 30]
        assert node.children[2] is fresh
        assert fresh.parent is node

    def test_split_pushes_middle_key_up(self):
        node = self._node_with_children([10, 20, 30, 40])
        right, push_up = node.split()
        assert push_up == 30
        assert node.keys == [10, 20]
        assert right.keys == [40]
        assert len(node.children) == 3
        assert len(right.children) == 2
        assert all(c.parent is right for c in right.children)
        assert all(c.parent is node for c in node.children)
