"""Tests for the quit-workload CLI."""

import numpy as np
import pytest

from repro.bench.workload_cli import main
from repro.sortedness import kl_sortedness


class TestGenerate:
    def test_writes_requested_stream(self, tmp_path, capsys):
        out = tmp_path / "stream.txt"
        code = main([
            "generate", str(out), "--n", "5000", "--k", "0.1",
            "--l", "0.5", "--seed", "3",
        ])
        assert code == 0
        keys = np.loadtxt(out, dtype=np.int64)
        assert sorted(keys.tolist()) == list(range(5000))
        measured = kl_sortedness(keys.tolist())
        assert abs(measured.k_fraction - 0.1) < 0.03
        assert "wrote 5,000 keys" in capsys.readouterr().out

    def test_rejects_bad_spec(self, tmp_path, capsys):
        out = tmp_path / "stream.txt"
        code = main(["generate", str(out), "--n", "100", "--k", "2.0"])
        assert code == 2
        assert "invalid workload spec" in capsys.readouterr().err

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", str(a), "--n", "1000", "--k", "0.2"])
        main(["generate", str(b), "--n", "1000", "--k", "0.2"])
        assert a.read_text() == b.read_text()


class TestMeasure:
    def test_measures_generated_stream(self, tmp_path, capsys):
        out = tmp_path / "stream.txt"
        main(["generate", str(out), "--n", "2000", "--k", "0.05"])
        capsys.readouterr()
        code = main(["measure", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "K (min removals)" in text
        assert "5.00%" in text or "4.9" in text or "5.1" in text

    def test_full_metrics(self, tmp_path, capsys):
        out = tmp_path / "stream.txt"
        main(["generate", str(out), "--n", "500", "--k", "0.5"])
        capsys.readouterr()
        assert main(["measure", str(out), "--full"]) == 0
        text = capsys.readouterr().out
        assert "inversions" in text
        assert "Dis" in text

    def test_missing_file(self, tmp_path, capsys):
        code = main(["measure", str(tmp_path / "nope.txt")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_single_key_stream(self, tmp_path, capsys):
        out = tmp_path / "one.txt"
        out.write_text("42\n")
        assert main(["measure", str(out)]) == 0
        assert "entries:               1" in capsys.readouterr().out
