"""Paper-fidelity pins: work-proportional results checked against the
paper's published numbers at a mid scale (these are deterministic — no
wall-clock involved — so tolerances are tight)."""

import pytest

from repro.analysis import space_reduction
from repro.core import (
    BPlusTree,
    LilBPlusTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
)
from repro.sortedness import generate_keys

CFG = TreeConfig(leaf_capacity=64, internal_capacity=64)
N = 30_000


def ingest(cls, keys):
    tree = cls(CFG)
    for k in keys:
        tree.insert(int(k), None)
    return tree


@pytest.fixture(scope="module")
def trees_by_k():
    out = {}
    for k in (0.0, 0.01, 0.03, 0.05, 0.25, 0.50):
        keys = generate_keys(N, k, 1.0, seed=11)
        out[k] = {
            cls.name: ingest(cls, keys)
            for cls in (BPlusTree, TailBPlusTree, LilBPlusTree, QuITTree)
        }
    return out


class TestTable2SpaceReduction:
    # Paper Table 2: 1.96 / 1.5 / 1.41 / 1.32 / 1.09 / 1.01.
    PAPER = {0.0: 1.96, 0.01: 1.5, 0.03: 1.41, 0.05: 1.32,
             0.25: 1.09, 0.50: 1.01}

    @pytest.mark.parametrize("k", list(PAPER))
    def test_reduction(self, trees_by_k, k):
        ratio = space_reduction(
            trees_by_k[k]["B+-tree"], trees_by_k[k]["QuIT"]
        )
        assert ratio == pytest.approx(self.PAPER[k], abs=0.25)


class TestFig9FastInsertMix:
    # Paper Fig. 9 / Fig. 11b: QuIT's fast-insert fraction per K.
    PAPER_QUIT = {0.0: 100, 0.01: 100, 0.03: 96, 0.05: 92,
                  0.25: 70, 0.50: 46}
    PAPER_LIL = {0.0: 100, 0.01: 99, 0.03: 94, 0.05: 90,
                 0.25: 57, 0.50: 26}

    @pytest.mark.parametrize("k", list(PAPER_QUIT))
    def test_quit(self, trees_by_k, k):
        measured = (
            trees_by_k[k]["QuIT"].stats.fast_insert_fraction * 100
        )
        assert measured == pytest.approx(self.PAPER_QUIT[k], abs=8)

    @pytest.mark.parametrize("k", list(PAPER_LIL))
    def test_lil(self, trees_by_k, k):
        measured = (
            trees_by_k[k]["lil-B+-tree"].stats.fast_insert_fraction * 100
        )
        assert measured == pytest.approx(self.PAPER_LIL[k], abs=8)

    def test_quit_dominates_lil_everywhere(self, trees_by_k):
        for k, trees in trees_by_k.items():
            assert (
                trees["QuIT"].stats.fast_insert_fraction
                >= trees["lil-B+-tree"].stats.fast_insert_fraction - 0.01
            ), k


class TestFig10aOccupancy:
    # Paper Fig. 10a: B+-tree 50-54% at K<=10; QuIT 62-77%.
    def test_btree_near_half_when_sorted(self, trees_by_k):
        occ = trees_by_k[0.0]["B+-tree"].occupancy().avg_occupancy
        assert 0.48 <= occ <= 0.56

    def test_quit_near_full_when_sorted(self, trees_by_k):
        occ = trees_by_k[0.0]["QuIT"].occupancy().avg_occupancy
        assert occ > 0.95

    @pytest.mark.parametrize("k", [0.01, 0.03, 0.05])
    def test_near_sorted_band(self, trees_by_k, k):
        bt = trees_by_k[k]["B+-tree"].occupancy().avg_occupancy
        qt = trees_by_k[k]["QuIT"].occupancy().avg_occupancy
        assert 0.48 <= bt <= 0.56
        assert 0.62 <= qt <= 0.90


class TestTailStaleness:
    def test_tail_dead_beyond_1pct(self, trees_by_k):
        # Paper Fig. 3/9: <1% fast-inserts at K>=1% (scale-shifted cliff
        # still leaves it under 15% here).
        for k in (0.03, 0.05, 0.25, 0.50):
            frac = trees_by_k[k][
                "tail-B+-tree"
            ].stats.fast_insert_fraction
            assert frac < 0.15, k

    def test_tail_perfect_when_sorted(self, trees_by_k):
        assert (
            trees_by_k[0.0]["tail-B+-tree"].stats.fast_insert_fraction
            == 1.0
        )


class TestExtensionalEquality:
    def test_all_variants_store_identical_contents(self, trees_by_k):
        for k, trees in trees_by_k.items():
            reference = None
            for name, tree in trees.items():
                contents = list(tree.keys())
                if reference is None:
                    reference = contents
                else:
                    assert contents == reference, (k, name)
